#include "analyze.h"

#include <algorithm>
#include <regex>
#include <set>
#include <sstream>

#include "analysis-common/scan.h"

namespace redopt::analyze {

namespace {

constexpr const char* kTool = "redopt-analyze";

const std::vector<RuleInfo> kRules = {
    {"A1", "module layering violation: #include climbs the dependency DAG",
     "the module layers (util/rng/runtime/telemetry -> linalg -> core/data -> "
     "filters/redundancy/attacks -> net/dgd/sgd -> chaos/transport -> elastic -> serving -> tools) keep the "
     "determinism authority and the build acyclic; an upward edge couples a foundation "
     "to its consumers"},
    {"A2", "include cycle across files",
     "a transitive #include loop means no file in the cycle can be understood (or compiled) "
     "before the others; breaking it forces the real dependency direction into the open"},
    {"B1", "floating-point accumulation outside the FP-order authority",
     "summation order decides last-ulp bits, and the bit-determinism contract allows exactly "
     "one layer (src/linalg/kernels) to choose it; stray += loops fork the authority — stage "
     "a buffer for kernels::sum/dot or fold through kernels::Sum"},
    {"C1", "parallel lambda writes a by-reference capture without an index-disjoint subscript",
     "parallel_for/parallel_reduce run the lambda concurrently; a plain write to a captured "
     "local is a data race the deterministic single-thread test runs never exhibit"},
    {"D1", "header is not self-contained: referenced symbol's header missing from closure",
     "a header that compiles only because some includer happened to pull the dependency first "
     "breaks as soon as include order changes; every header must include what it references"},
    {"D2", "function definition at namespace scope in a header without inline",
     "two translation units including the header each emit the definition — an ODR violation "
     "the linker may or may not surface; mark it inline or move the body to a .cpp"},
};

// ---------------------------------------------------------------------------
// Reporting with suppression
// ---------------------------------------------------------------------------

struct FileContext {
  const SourceFile& file;
  std::vector<std::string> file_allows;
  std::vector<Finding>* findings;

  explicit FileContext(const SourceFile& f, std::vector<Finding>* out) : file(f), findings(out) {
    for (const analysis::ScannedLine& sl : f.scanned) {
      bool file_scope = false;
      const auto ids = analysis::parse_allows(kTool, sl.comment, &file_scope);
      if (file_scope) file_allows.insert(file_allows.end(), ids.begin(), ids.end());
    }
  }

  bool suppressed(std::size_t line, const char* rule) const {
    if (analysis::allows_rule(file_allows, rule)) return true;
    bool file_scope = false;
    const auto& scanned = file.scanned;
    if (line >= 1 && line <= scanned.size() &&
        analysis::allows_rule(analysis::parse_allows(kTool, scanned[line - 1].comment, &file_scope),
                              rule)) {
      return true;
    }
    if (line >= 2 &&
        analysis::allows_rule(analysis::parse_allows(kTool, scanned[line - 2].comment, &file_scope),
                              rule)) {
      return true;
    }
    return false;
  }

  void report(std::size_t line, const char* rule, std::string message, std::string key) const {
    if (suppressed(line, rule)) return;
    findings->push_back(Finding{file.path, line, rule, std::move(message), std::move(key)});
  }
};

// ---------------------------------------------------------------------------
// Pass A: layering + cycles
// ---------------------------------------------------------------------------

void check_layering(const SourceFile& file, const FileContext& ctx) {
  if (file.module.empty()) return;  // tests/bench/examples are not layered
  for (const IncludeEdge& edge : file.includes) {
    const std::string to = module_of(edge.target);
    if (to.empty()) continue;
    if (edge_allowed(file.module, to)) continue;
    ctx.report(edge.line, "A1",
               "include of " + edge.target + " climbs the module DAG (" + file.module + " -> " +
                   to + "); move the shared piece down a layer or invert the dependency",
               edge.target);
  }
}

void check_cycles(const ProjectModel& model, std::vector<Finding>* findings) {
  // Iterative DFS with an explicit stack; a back-edge into the gray set
  // names a cycle.  Each distinct cycle (as a set of files) is reported
  // once, at the back-edge's #include line.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported_keys;

  struct Frame {
    const SourceFile* file;
    std::size_t next_edge = 0;
  };

  for (const auto& [root, _] : model.files) {
    if (color[root] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{&model.files.at(root)});
    color[root] = 1;
    path.push_back(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_edge >= frame.file->includes.size()) {
        color[frame.file->path] = 2;
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const IncludeEdge& edge = frame.file->includes[frame.next_edge++];
      const int target_color = color[edge.target];
      if (target_color == 1) {
        // Cycle: from edge.target along `path` back to the current file.
        const auto begin = std::find(path.begin(), path.end(), edge.target);
        std::vector<std::string> cycle(begin, path.end());
        std::vector<std::string> sorted = cycle;
        std::sort(sorted.begin(), sorted.end());
        std::string key;
        for (const auto& p : sorted) key += (key.empty() ? "" : " -> ") + p;
        if (reported_keys.insert(key).second) {
          std::string chain;
          for (const auto& p : cycle) chain += p + " -> ";
          chain += edge.target;
          FileContext ctx(*frame.file, findings);
          ctx.report(edge.line, "A2", "include cycle: " + chain, key);
        }
      } else if (target_color == 0) {
        color[edge.target] = 1;
        path.push_back(edge.target);
        stack.push_back(Frame{&model.files.at(edge.target)});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass B: FP-order authority
// ---------------------------------------------------------------------------

/// The FP-order authority: the kernels themselves plus the linalg
/// implementation files whose element loops ARE the reference order the
/// kernels' strict mode reproduces.  Everything else stages a buffer or
/// folds through kernels::Sum.
bool b1_authority(const std::string& path) {
  static const std::set<std::string> kAuthority = {
      "src/linalg/kernels.h", "src/linalg/kernels.cpp",
      // Allowlist: pre-kernel reference loops and decompositions whose
      // pivoting order is itself the documented contract.
      "src/linalg/vector.cpp", "src/linalg/vector.h", "src/linalg/matrix.cpp",
      "src/linalg/decompose.cpp", "src/linalg/svd.cpp"};
  return kAuthority.count(path) > 0;
}

struct Loop {
  std::size_t start = 0;       ///< offset of the for/while keyword
  std::size_t body_begin = 0;  ///< first char of the body
  std::size_t body_end = 0;    ///< one past the last body char
  std::vector<std::string> vars;
};

std::size_t match_forward(const std::string& text, std::size_t open, char open_c, char close_c) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_c) ++depth;
    if (text[i] == close_c && --depth == 0) return i;
  }
  return text.size();
}

std::vector<std::string> loop_vars_of(const std::string& header) {
  std::vector<std::string> vars;
  static const std::regex kIdent(R"([A-Za-z_]\w*)");
  static const std::set<std::string> kTypeish = {"auto",   "const",    "std",  "size_t",
                                                 "int",    "unsigned", "long", "double",
                                                 "float",  "char",     "bool", "signed",
                                                 "int64_t", "uint64_t", "int32_t", "uint32_t"};
  const std::size_t semi = header.find(';');
  if (semi != std::string::npos) {
    // Classic for: every `name =` in the init clause.
    const std::string init = header.substr(0, semi);
    static const std::regex kAssign(R"(([A-Za-z_]\w*)\s*=)");
    for (auto it = std::sregex_iterator(init.begin(), init.end(), kAssign);
         it != std::sregex_iterator(); ++it) {
      vars.push_back((*it)[1].str());
    }
    return vars;
  }
  const std::size_t colon = header.find(':');
  if (colon != std::string::npos && (colon + 1 >= header.size() || header[colon + 1] != ':')) {
    // Range-for: the non-type identifiers before the ':'.
    const std::string decl = header.substr(0, colon);
    for (auto it = std::sregex_iterator(decl.begin(), decl.end(), kIdent);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[0].str();
      if (kTypeish.count(name) == 0) vars.push_back(name);
    }
  }
  return vars;
}

std::vector<Loop> find_loops(const FlatCode& flat) {
  std::vector<Loop> loops;
  static const std::regex kLoop(R"((^|[^\w])(for|while)\s*\()");
  for (auto it = std::sregex_iterator(flat.text.begin(), flat.text.end(), kLoop);
       it != std::sregex_iterator(); ++it) {
    Loop loop;
    loop.start = static_cast<std::size_t>(it->position(2));
    const std::size_t open = loop.start + it->str().size() - it->position(2) + it->position(0) -
                             it->position(0);  // offset of '('
    const std::size_t paren = flat.text.find('(', loop.start);
    if (paren == std::string::npos) continue;
    (void)open;
    const std::size_t close = match_forward(flat.text, paren, '(', ')');
    if (close >= flat.text.size()) continue;
    const std::string header = flat.text.substr(paren + 1, close - paren - 1);
    if ((*it)[2].str() == "for") loop.vars = loop_vars_of(header);
    std::size_t p = close + 1;
    while (p < flat.text.size() && std::isspace(static_cast<unsigned char>(flat.text[p]))) ++p;
    if (p < flat.text.size() && flat.text[p] == '{') {
      loop.body_begin = p + 1;
      loop.body_end = match_forward(flat.text, p, '{', '}');
    } else {
      loop.body_begin = p;
      const std::size_t semi = flat.text.find(';', p);
      loop.body_end = semi == std::string::npos ? flat.text.size() : semi + 1;
    }
    loops.push_back(std::move(loop));
  }
  return loops;
}

bool word_at(const std::string& text, std::size_t pos) {
  return pos == 0 || (!std::isalnum(static_cast<unsigned char>(text[pos - 1])) &&
                      text[pos - 1] != '_');
}

bool mentions_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const std::size_t end = pos + word.size();
    const bool left = word_at(text, pos);
    const bool right = end >= text.size() || (!std::isalnum(static_cast<unsigned char>(text[end])) &&
                                              text[end] != '_');
    if (left && right) return true;
    pos = end;
  }
  return false;
}

void check_fp_authority(const SourceFile& file, const FileContext& ctx) {
  if (file.module.empty() || file.module == "tools") return;
  if (b1_authority(file.path)) return;
  const FlatCode flat = flatten(file.scanned);
  const std::vector<Loop> loops = find_loops(flat);
  if (loops.empty()) return;

  // double/float declarations (name -> offsets, ascending).
  std::map<std::string, std::vector<std::size_t>> fp_decls;
  static const std::regex kFpDecl(R"((^|[^\w])(double|float)\s+([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(flat.text.begin(), flat.text.end(), kFpDecl);
       it != std::sregex_iterator(); ++it) {
    fp_decls[(*it)[3].str()].push_back(static_cast<std::size_t>(it->position(3)));
  }
  if (fp_decls.empty()) return;

  static const std::regex kAccum(R"(([A-Za-z_]\w*)\s*(\+=|\*=))");
  for (auto it = std::sregex_iterator(flat.text.begin(), flat.text.end(), kAccum);
       it != std::sregex_iterator(); ++it) {
    const std::string var = (*it)[1].str();
    const std::size_t off = static_cast<std::size_t>(it->position(1));
    if (!word_at(flat.text, off)) continue;
    const auto decl_it = fp_decls.find(var);
    if (decl_it == fp_decls.end()) continue;

    // Latest declaration before the use.
    std::size_t decl_off = std::string::npos;
    for (std::size_t d : decl_it->second) {
      if (d < off) decl_off = d;
    }
    if (decl_off == std::string::npos) continue;

    // Enclosing loops; skip the loop's own recurrence variables.
    std::vector<const Loop*> enclosing;
    for (const Loop& loop : loops) {
      if (loop.body_begin <= off && off < loop.body_end) enclosing.push_back(&loop);
    }
    if (enclosing.empty()) continue;
    bool is_loop_var = false;
    std::vector<std::string> enclosing_vars;
    for (const Loop* loop : enclosing) {
      for (const std::string& v : loop->vars) {
        enclosing_vars.push_back(v);
        if (v == var) is_loop_var = true;
      }
    }
    if (is_loop_var) continue;

    // The accumulator must be declared OUTSIDE some enclosing loop; take
    // the innermost such loop as the accumulation scope.
    const Loop* scope = nullptr;
    for (const Loop* loop : enclosing) {
      if (loop->start > decl_off && (!scope || loop->start > scope->start)) scope = loop;
    }
    if (!scope) continue;

    // Loop-dependent right-hand side: subscripts, calls, loop variables,
    // or values produced inside the accumulation scope.  A plain scalar
    // recurrence (x *= factor with loop-invariant factor) is exempt.
    const std::size_t rhs_begin = static_cast<std::size_t>(it->position(2)) + 2;
    const std::size_t rhs_end = flat.text.find(';', rhs_begin);
    const std::string rhs = flat.text.substr(
        rhs_begin, rhs_end == std::string::npos ? std::string::npos : rhs_end - rhs_begin);
    bool dependent = rhs.find('[') != std::string::npos || rhs.find('(') != std::string::npos;
    if (!dependent) {
      for (const std::string& v : enclosing_vars) {
        if (mentions_word(rhs, v)) {
          dependent = true;
          break;
        }
      }
    }
    if (!dependent) {
      for (const auto& [name, offsets] : fp_decls) {
        for (std::size_t d : offsets) {
          if (d > scope->start && d < off && mentions_word(rhs, name)) dependent = true;
        }
      }
    }
    if (!dependent) continue;

    ctx.report(flat.line_at(off), "B1",
               "floating-point accumulation on '" + var +
                   "' outside the FP-order authority; stage a buffer for "
                   "linalg::kernels::sum/dot or fold through linalg::kernels::Sum",
               var);
  }
}

// ---------------------------------------------------------------------------
// Pass C: parallel-capture safety
// ---------------------------------------------------------------------------

struct CaptureList {
  bool default_ref = false;
  bool default_val = false;
  std::set<std::string> by_ref;
  std::set<std::string> by_val;
};

CaptureList parse_captures(const std::string& text) {
  CaptureList captures;
  std::vector<std::string> entries;
  std::string entry;
  int depth = 0;
  for (char c : text) {
    if (c == '(' || c == '<' || c == '{' || c == '[') ++depth;
    if (c == ')' || c == '>' || c == '}' || c == ']') --depth;
    if (c == ',' && depth == 0) {
      entries.push_back(entry);
      entry.clear();
    } else {
      entry += c;
    }
  }
  entries.push_back(entry);
  static const std::regex kName(R"([A-Za-z_]\w*)");
  for (std::string& e : entries) {
    e.erase(0, e.find_first_not_of(" \t\n"));
    if (e.empty()) continue;
    if (e == "&") {
      captures.default_ref = true;
    } else if (e == "=") {
      captures.default_val = true;
    } else if (e[0] == '&') {
      std::smatch m;
      if (std::regex_search(e, m, kName) && m[0].str() != "this") {
        captures.by_ref.insert(m[0].str());
      }
    } else {
      std::smatch m;
      if (std::regex_search(e, m, kName) && m[0].str() != "this") {
        captures.by_val.insert(m[0].str());
      }
    }
  }
  return captures;
}

std::set<std::string> parse_params(const std::string& text) {
  std::set<std::string> params;
  std::string entry;
  int depth = 0;
  auto flush = [&] {
    static const std::regex kLast(R"(([A-Za-z_]\w*)\s*$)");
    std::smatch m;
    if (std::regex_search(entry, m, kLast)) params.insert(m[1].str());
    entry.clear();
  };
  for (char c : text) {
    if (c == '(' || c == '<') ++depth;
    if (c == ')' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      flush();
    } else {
      entry += c;
    }
  }
  flush();
  return params;
}

/// Identifiers declared inside a lambda body (type-then-name statements).
std::set<std::string> body_declarations(const std::string& body) {
  std::set<std::string> decls;
  static const std::regex kDecl(
      R"((^|[;{}(])\s*(const\s+)?([A-Za-z_][\w:]*(?:<[^<>;]*>)?)\s*[&*]?\s+([A-Za-z_]\w*)\s*[=;{(])");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kDecl);
       it != std::sregex_iterator(); ++it) {
    static const std::set<std::string> kNotTypes = {"return", "else", "delete", "new", "throw"};
    if (kNotTypes.count((*it)[3].str()) == 0) decls.insert((*it)[4].str());
  }
  // Structured bindings (`const auto [lo, hi] = ...`) declare each name.
  static const std::regex kBinding(R"((^|[^\w])auto\s*[&]?\s*\[([^\]]*)\])");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kBinding);
       it != std::sregex_iterator(); ++it) {
    std::stringstream names((*it)[2].str());
    std::string name;
    while (std::getline(names, name, ',')) {
      const std::size_t b = name.find_first_not_of(" \t");
      const std::size_t e = name.find_last_not_of(" \t");
      if (b != std::string::npos) decls.insert(name.substr(b, e - b + 1));
    }
  }
  // for/range-for loop variables declared in the body count too.
  static const std::regex kLoopVar(R"((for)\s*\(([^;:()]*[&\s])?([A-Za-z_]\w*)\s*[:=])");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kLoopVar);
       it != std::sregex_iterator(); ++it) {
    decls.insert((*it)[3].str());
  }
  return decls;
}

struct Write {
  std::string target;
  std::string index;  ///< subscript/call-argument text, "" for plain writes
  std::size_t offset = 0;
};

/// Walks an access chain (`obj.field`, `ptr->arr[i].field`) back from the
/// member at @p off to its base identifier; a write through the chain
/// mutates the base object, which is what capture safety is about.
std::size_t chain_base(const std::string& body, std::size_t off) {
  std::size_t base = off;
  while (base > 0) {
    std::size_t j = base;
    if (body[j - 1] == '.') {
      --j;
    } else if (j >= 2 && body[j - 2] == '-' && body[j - 1] == '>') {
      j -= 2;
    } else {
      break;
    }
    if (j > 0 && body[j - 1] == ']') {
      int depth = 0;
      while (j > 0) {
        --j;
        if (body[j] == ']') ++depth;
        if (body[j] == '[' && --depth == 0) break;
      }
    }
    std::size_t k = j;
    while (k > 0 && (std::isalnum(static_cast<unsigned char>(body[k - 1])) || body[k - 1] == '_')) {
      --k;
    }
    if (k == j) break;
    base = k;
  }
  return base;
}

std::vector<Write> find_writes(const std::string& body) {
  std::vector<Write> writes;
  auto add = [&](std::string target, std::string index, std::size_t off) {
    const std::size_t base = chain_base(body, off);
    if (base != off) {
      std::size_t end = base;
      while (end < body.size() &&
             (std::isalnum(static_cast<unsigned char>(body[end])) || body[end] == '_')) {
        ++end;
      }
      target = body.substr(base, end - base);
      off = base;
    }
    // `auto [lo, hi] = ...` parses as a subscripted write of `auto`; it is
    // a declaration, not a write.
    if (target == "auto" || target == "this") return;
    writes.push_back(Write{std::move(target), std::move(index), off});
  };
  static const std::regex kPlain(R"(([A-Za-z_]\w*)\s*(\+=|-=|\*=|/=|=)([^=]|$))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kPlain);
       it != std::sregex_iterator(); ++it) {
    add((*it)[1].str(), "", static_cast<std::size_t>(it->position(1)));
  }
  static const std::regex kSubscript(
      R"(([A-Za-z_]\w*)\s*\[([^\[\]]*)\]\s*(\+=|-=|\*=|/=|=)([^=]|$))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kSubscript);
       it != std::sregex_iterator(); ++it) {
    add((*it)[1].str(), (*it)[2].str(), static_cast<std::size_t>(it->position(1)));
  }
  static const std::regex kCallIndex(
      R"(([A-Za-z_]\w*)\s*\(([^()]*)\)\s*(\+=|-=|\*=|/=|=)([^=]|$))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kCallIndex);
       it != std::sregex_iterator(); ++it) {
    add((*it)[1].str(), (*it)[2].str(), static_cast<std::size_t>(it->position(1)));
  }
  static const std::regex kIncDec(R"(([A-Za-z_]\w*)\s*(\+\+|--)|(\+\+|--)\s*([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kIncDec);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].matched ? (*it)[1].str() : (*it)[4].str();
    const std::size_t off =
        static_cast<std::size_t>((*it)[1].matched ? it->position(1) : it->position(4));
    add(name, "", off);
  }
  static const std::regex kMutate(
      R"(([A-Za-z_]\w*)\.(push_back|emplace_back|insert|erase|clear|resize|pop_back|assign|reset)\s*\()");
  for (auto it = std::sregex_iterator(body.begin(), body.end(), kMutate);
       it != std::sregex_iterator(); ++it) {
    add((*it)[1].str(), "", static_cast<std::size_t>(it->position(1)));
  }
  return writes;
}

bool word_in_set(const std::string& text, const std::set<std::string>& words) {
  for (const std::string& w : words) {
    if (mentions_word(text, w)) return true;
  }
  return false;
}

void check_parallel_captures(const SourceFile& file, const FileContext& ctx) {
  if (file.module.empty()) return;  // src/ and tools/ only
  const FlatCode flat = flatten(file.scanned);
  static const std::regex kCall(R"((^|[^\w])(parallel_for|parallel_reduce)\s*\()");
  for (auto it = std::sregex_iterator(flat.text.begin(), flat.text.end(), kCall);
       it != std::sregex_iterator(); ++it) {
    const std::size_t open = flat.text.find('(', static_cast<std::size_t>(it->position(2)));
    if (open == std::string::npos) continue;
    const std::size_t close = match_forward(flat.text, open, '(', ')');
    // Lambdas inside the argument list: a '[' that follows '(', ',' or
    // whitespace-after-those (subscripts follow identifiers or ']'/')').
    for (std::size_t i = open + 1; i < close; ++i) {
      if (flat.text[i] != '[') continue;
      std::size_t prev = i;
      while (prev > open) {
        --prev;
        if (!std::isspace(static_cast<unsigned char>(flat.text[prev]))) break;
      }
      const char p = flat.text[prev];
      if (p != '(' && p != ',' && p != '&' && p != '=') continue;
      const std::size_t cap_close = match_forward(flat.text, i, '[', ']');
      if (cap_close >= flat.text.size()) continue;
      const CaptureList captures =
          parse_captures(flat.text.substr(i + 1, cap_close - i - 1));
      std::size_t cursor = cap_close + 1;
      while (cursor < flat.text.size() &&
             std::isspace(static_cast<unsigned char>(flat.text[cursor]))) {
        ++cursor;
      }
      std::set<std::string> params;
      if (cursor < flat.text.size() && flat.text[cursor] == '(') {
        const std::size_t params_close = match_forward(flat.text, cursor, '(', ')');
        params = parse_params(flat.text.substr(cursor + 1, params_close - cursor - 1));
        cursor = params_close + 1;
      }
      const std::size_t body_open = flat.text.find('{', cursor);
      if (body_open == std::string::npos) continue;
      const std::size_t body_close = match_forward(flat.text, body_open, '{', '}');
      const std::string body = flat.text.substr(body_open + 1, body_close - body_open - 1);
      const std::set<std::string> locals = body_declarations(body);

      i = body_close;  // nested lambdas inside this body are serial callbacks
      for (const Write& write : find_writes(body)) {
        const std::string& v = write.target;
        if (params.count(v) > 0 || locals.count(v) > 0) continue;
        const bool by_ref =
            captures.by_ref.count(v) > 0 || (captures.default_ref && captures.by_val.count(v) == 0);
        if (!by_ref) continue;
        if (!write.index.empty() && (word_in_set(write.index, params) ||
                                     word_in_set(write.index, locals))) {
          continue;  // index-disjoint: each iteration touches its own slot
        }
        const std::size_t line = flat.line_at(body_open + 1 + write.offset);
        ctx.report(line, "C1",
                   "parallel lambda writes by-reference capture '" + v +
                       "' without an index-disjoint subscript; give each iteration its own "
                       "slot or reduce via parallel_reduce",
                   v);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass D: header hygiene+
// ---------------------------------------------------------------------------

bool is_header(const std::string& path) {
  return path.size() >= 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

const std::regex& module_ref_pattern() {
  static const std::regex re(
      R"((^|[^\w:])(util|rng|runtime|telemetry|linalg|core|data|filters|redundancy|attacks|net|dgd|sgd|chaos|transport|elastic|serving)::([A-Za-z_]\w*))");
  return re;
}

void check_self_contained(const ProjectModel& model, const SourceFile& file,
                          const FileContext& ctx) {
  if (!is_header(file.path) || file.module.empty() || file.module == "tools") return;
  const std::set<std::string> closure = model.include_closure(file.path);
  const auto declared_it = model.declared.find(file.path);
  const FlatCode flat = flatten(file.scanned);
  std::set<std::string> seen;
  for (auto it = std::sregex_iterator(flat.text.begin(), flat.text.end(), module_ref_pattern());
       it != std::sregex_iterator(); ++it) {
    const std::string module = (*it)[2].str();
    const std::string name = (*it)[3].str();
    const std::string qualified = module + "::" + name;
    if (!seen.insert(qualified).second) continue;
    const auto mod_it = model.symbols.find(module);
    if (mod_it == model.symbols.end()) continue;
    const auto sym_it = mod_it->second.find(name);
    if (sym_it == mod_it->second.end()) continue;  // unknown symbols stay conservative
    bool reachable = false;
    for (const SymbolDef& def : sym_it->second) {
      if (closure.count(def.file) > 0) {
        reachable = true;
        break;
      }
    }
    if (reachable) continue;
    if (declared_it != model.declared.end() && declared_it->second.count(name) > 0) continue;
    ctx.report(flat.line_at(static_cast<std::size_t>(it->position(3))), "D1",
               "references " + qualified + " but does not (transitively) include " +
                   sym_it->second.front().file,
               qualified);
  }
}

void check_header_definitions(const SourceFile& file, const FileContext& ctx) {
  if (!is_header(file.path) || file.module.empty() || file.module == "tools") return;
  const FlatCode flat = flatten(file.scanned);
  const std::vector<BraceSpan> spans = brace_spans(flat);
  static const std::regex kExempt(
      R"((^|[^\w])(inline|constexpr|consteval|template|static)([^\w]|$))");
  static const std::regex kName(R"(([A-Za-z_~]\w*)\s*\()");
  for (const BraceSpan& span : spans) {
    if (span.kind != BraceKind::kFunction) continue;
    if (!at_namespace_scope(spans, span.open)) continue;
    if (std::regex_search(span.head, kExempt)) continue;
    if (span.head.find('=') != std::string::npos) continue;  // initializers, lambdas
    std::string name = "function";
    for (auto it = std::sregex_iterator(span.head.begin(), span.head.end(), kName);
         it != std::sregex_iterator(); ++it) {
      name = (*it)[1].str();
      break;
    }
    ctx.report(flat.line_at(span.open), "D2",
               "definition of '" + name +
                   "' at namespace scope in a header without inline; two includers violate "
                   "the one-definition rule",
               name);
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> analyze_model(const ProjectModel& model) {
  std::vector<Finding> findings;
  for (const auto& [path, file] : model.files) {
    FileContext ctx(file, &findings);
    check_layering(file, ctx);
    check_fp_authority(file, ctx);
    check_parallel_captures(file, ctx);
    check_self_contained(model, file, ctx);
    check_header_definitions(file, ctx);
  }
  check_cycles(model, &findings);
  analysis::sort_findings(findings);
  return findings;
}

std::vector<Finding> analyze_memory(
    const std::map<std::string, std::vector<std::string>>& sources) {
  return analyze_model(build_model(sources));
}

std::vector<BaselineEntry> parse_baseline(const std::vector<std::string>& lines) {
  std::vector<BaselineEntry> entries;
  for (const std::string& line : lines) {
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::vector<std::string> fields;
    std::string field;
    std::stringstream ss(line);
    while (std::getline(ss, field, '\t')) fields.push_back(field);
    if (fields.size() < 3) continue;
    BaselineEntry entry;
    entry.rule = fields[0];
    entry.file = fields[1];
    entry.key = fields[2];
    if (fields.size() > 3) entry.justification = fields[3];
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.rule << "\t" << f.file << "\t" << f.key << "\t# TODO: justify or fix\n";
  }
  return os.str();
}

std::vector<Finding> apply_baseline(const std::vector<Finding>& findings,
                                    const std::vector<BaselineEntry>& baseline,
                                    std::vector<BaselineEntry>* stale) {
  std::vector<bool> used(baseline.size(), false);
  std::vector<Finding> fresh;
  for (const Finding& f : findings) {
    bool matched = false;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (baseline[i].rule == f.rule && baseline[i].file == f.file && baseline[i].key == f.key) {
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) fresh.push_back(f);
  }
  if (stale) {
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      if (!used[i]) stale->push_back(baseline[i]);
    }
  }
  return fresh;
}

}  // namespace redopt::analyze
