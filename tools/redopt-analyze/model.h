// The project model redopt-analyze builds before any pass runs.
//
// Three layers, all derived from the comment/string-stripped code views
// the shared scanner produces:
//
//   * per-TU token stream: raw lines + code/comment views (ScannedLine);
//   * the full quoted-#include graph, resolved the way the build does
//     (src-relative first, then relative to the including file's
//     directory for the tools' local headers);
//   * a lightweight symbol index: type / alias / function names defined
//     in each src/ module's headers, so pass D can ask "which header
//     defines linalg::Matrix?" without a real compiler.
//
// The model is built from an in-memory {path -> lines} map so the
// fixture tests can assemble fake trees; the CLI fills the map from
// disk via the shared walker.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analysis-common/scan.h"

namespace redopt::analyze {

/// One #include edge, kept with its source line for reporting.
struct IncludeEdge {
  std::size_t line = 0;     ///< 1-based line of the #include
  std::string target;       ///< resolved repo-relative path (model files only)
};

/// One scanned translation unit (header or .cpp).
struct SourceFile {
  std::string path;    ///< repo-relative generic path
  std::string module;  ///< "linalg" for src/linalg/..., "tools" under tools/, else ""
  std::vector<std::string> raw;
  std::vector<analysis::ScannedLine> scanned;
  std::vector<IncludeEdge> includes;  ///< resolved edges into the model
};

/// Where a symbol is defined: the header path and the defining line.
struct SymbolDef {
  std::string file;
  std::size_t line = 0;
};

/// The assembled model.
struct ProjectModel {
  std::map<std::string, SourceFile> files;  ///< path -> scanned file

  /// module -> symbol name -> every header declaring it (definitions,
  /// re-exporting using-declarations, forward declarations).  Indexed
  /// from src/ headers only (names at namespace scope); the defining
  /// module is taken from the header's path.  A referencing header is
  /// self-contained if ANY of these is in its include closure.
  std::map<std::string, std::map<std::string, std::vector<SymbolDef>>> symbols;

  /// header -> names it declares (definitions AND forward declarations),
  /// so a header that forward-declares a type it only uses by reference
  /// is self-contained without including the definition.
  std::map<std::string, std::set<std::string>> declared;

  const SourceFile* find(const std::string& path) const;

  /// Transitive include closure of @p path, including @p path itself.
  std::set<std::string> include_closure(const std::string& path) const;
};

/// All code views of a file joined with '\n', with a char-offset ->
/// 1-based line map so passes can parse across line boundaries (loop
/// bodies, lambda captures) and still report precise locations.
struct FlatCode {
  std::string text;
  std::vector<std::size_t> line;  ///< line.size() == text.size()

  std::size_t line_at(std::size_t offset) const {
    return offset < line.size() ? line[offset] : (line.empty() ? 1 : line.back());
  }
};

FlatCode flatten(const std::vector<analysis::ScannedLine>& scanned);

/// What a brace pair encloses, classified from the statement head
/// preceding the '{'.
enum class BraceKind { kNamespace, kType, kFunction, kOther };

/// One matched (or unterminated) brace pair in a FlatCode.
struct BraceSpan {
  BraceKind kind = BraceKind::kOther;
  std::size_t open = 0;   ///< offset of '{'
  std::size_t close = 0;  ///< offset of '}' (text.size() if unterminated)
  std::string head;       ///< statement text preceding the '{'
};

/// Matches every brace pair in @p code, innermost spans listed after the
/// enclosing ones (open-offset order).
std::vector<BraceSpan> brace_spans(const FlatCode& code);

/// True iff every brace span containing @p offset is a namespace (i.e.
/// the offset sits at namespace scope).
bool at_namespace_scope(const std::vector<BraceSpan>& spans, std::size_t offset);

/// Builds the model: scans every file, resolves includes, indexes symbols.
ProjectModel build_model(const std::map<std::string, std::vector<std::string>>& sources);

/// Module name for layering: "util" for src/util/foo.h, "tools" for any
/// tools/ path, "" for everything else (tests, bench, examples).
std::string module_of(const std::string& path);

/// Layer rank of a module in the dependency DAG (docs: CONTRIBUTING.md);
/// higher ranks may include lower ranks, never the reverse.  -1 for
/// unknown modules.
int layer_rank(const std::string& module);

/// True iff an #include edge from @p from_module into @p to_module is
/// legal: same module, strictly downward in rank, one of the explicit
/// same-rank allowances (data->core, net->dgd, sgd->dgd,
/// transport->chaos), or from tools/ (which may depend on anything).
bool edge_allowed(const std::string& from_module, const std::string& to_module);

}  // namespace redopt::analyze
