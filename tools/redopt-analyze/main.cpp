// CLI driver for redopt-analyze.
//
//   redopt-analyze [--root <dir>] [--list-rules] [--json]
//                  [--baseline <file> | --no-baseline]
//                  [--write-baseline <file>] [paths...]
//
// Paths default to src tools — the layered code the project model
// covers.  The committed baseline (tools/redopt-analyze/baseline.txt,
// resolved under --root) names accepted findings by stable key; any
// finding not in the baseline exits nonzero.  --write-baseline renders
// the current findings in baseline format to seed or refresh the file.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "analysis-common/finding.h"
#include "analysis-common/scan.h"
#include "analysis-common/walker.h"
#include "analyze.h"

namespace fs = std::filesystem;

namespace {

int list_rules() {
  for (const auto& rule : redopt::analyze::rules()) {
    std::cout << rule.id << "  " << rule.summary << "\n      why: " << rule.rationale << "\n";
  }
  std::cout << "\nsuppress with `// redopt-analyze: allow(<rule>[,<rule>...])` on the offending\n"
               "line or the line above, or `// redopt-analyze: allow-file(<rule>)` for a file;\n"
               "accepted findings live in tools/redopt-analyze/baseline.txt (rule, file, stable\n"
               "key, tab-separated, with a trailing `# justification`).\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::vector<std::string> targets;
  std::string baseline_path = "tools/redopt-analyze/baseline.txt";
  std::string write_baseline_path;
  bool use_baseline = true;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") return list_rules();
    if (arg == "--json") {
      json = true;
      continue;
    }
    if (arg == "--no-baseline") {
      use_baseline = false;
      continue;
    }
    if (arg == "--root" || arg == "--baseline" || arg == "--write-baseline") {
      if (i + 1 >= argc) {
        std::cerr << "redopt-analyze: " << arg << " needs an argument\n";
        return 2;
      }
      const std::string value = argv[++i];
      if (arg == "--root") {
        root = value;
      } else if (arg == "--baseline") {
        baseline_path = value;
      } else {
        write_baseline_path = value;
      }
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: redopt-analyze [--root <dir>] [--list-rules] [--json]\n"
                   "                      [--baseline <file> | --no-baseline]\n"
                   "                      [--write-baseline <file>] [paths...]\n";
      return 0;
    }
    targets.push_back(arg);
  }
  if (targets.empty()) targets = {"src", "tools"};

  std::vector<std::string> files;
  for (const std::string& t : targets) {
    redopt::analysis::collect_sources(root, t, "redopt-analyze", &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::map<std::string, std::vector<std::string>> sources;
  for (const std::string& rel : files) {
    sources.emplace(rel, redopt::analysis::read_lines((root / rel).string()));
  }

  std::vector<redopt::analyze::Finding> findings = redopt::analyze::analyze_memory(sources);

  if (!write_baseline_path.empty()) {
    std::ofstream out(write_baseline_path);
    out << "# redopt-analyze baseline: accepted findings, one per line as\n"
           "# RULE<TAB>file<TAB>key<TAB># justification.  Keys are stable\n"
           "# discriminators (no line numbers).  Keep this list short and\n"
           "# every entry justified — fixing beats baselining.\n";
    out << redopt::analyze::render_baseline(findings);
    std::cout << "redopt-analyze: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to " << write_baseline_path << "\n";
    return 0;
  }

  std::vector<redopt::analyze::BaselineEntry> baseline;
  if (use_baseline) {
    const fs::path resolved =
        fs::path(baseline_path).is_absolute() ? fs::path(baseline_path) : root / baseline_path;
    if (fs::exists(resolved)) {
      baseline =
          redopt::analyze::parse_baseline(redopt::analysis::read_lines(resolved.string()));
    }
  }
  std::vector<redopt::analyze::BaselineEntry> stale;
  const std::vector<redopt::analyze::Finding> fresh =
      redopt::analyze::apply_baseline(findings, baseline, &stale);

  if (json) {
    std::cout << redopt::analysis::findings_json(fresh);
  } else {
    for (const auto& f : fresh) std::cout << redopt::analysis::format_finding(f) << "\n";
  }
  for (const auto& entry : stale) {
    std::cerr << "redopt-analyze: warning: stale baseline entry (fixed? prune it): " << entry.rule
              << " " << entry.file << " " << entry.key << "\n";
  }
  if (!fresh.empty()) {
    if (!json) {
      std::cout << "redopt-analyze: " << fresh.size() << " finding(s) in " << files.size()
                << " file(s)\n";
    }
    return 1;
  }
  if (!json) {
    std::cout << "redopt-analyze: clean (" << files.size() << " files"
              << (baseline.empty() ? "" : ", " + std::to_string(baseline.size() - stale.size()) +
                                              " baselined")
              << ")\n";
  }
  return 0;
}
