// R-F3 — distributed learning (substitution for the paper's MNIST/SVM
// experiment; see DESIGN.md).
//
// Synthetic two-class Gaussian mixture, n = 10 agents, f = 2 Byzantine,
// d = 10 features, logistic and smoothed-hinge losses.  Reports test
// accuracy and honest loss for: fault-free DGD, unfiltered DGD, DGD+CGE,
// DGD+CWTM, under gradient-reverse and LIE faults, at two heterogeneity
// levels (the knob playing the role of inter-agent data correlation).
#include "common.h"

#include "data/classification.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "seed", "loss", "csv"}));
  const bench::Harness harness(cli, "R-F3");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 1500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const std::string loss = cli.get_string("loss", "logistic");

  bench::banner("R-F3", "distributed learning on synthetic mixtures (" + loss + " loss)");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "learning",
                              {"heterogeneity", "attack", "series", "accuracy", "loss"});

  for (double heterogeneity : {0.0, 1.0}) {
    data::ClassificationConfig cfg_data;
    cfg_data.n = 10;
    cfg_data.f = 2;
    cfg_data.d = 10;
    cfg_data.samples_per_agent = 50;
    cfg_data.separation = 1.5;
    cfg_data.heterogeneity = heterogeneity;
    cfg_data.loss = loss;
    rng::Rng rng(seed);
    const auto inst = data::make_classification(cfg_data, rng);
    const std::vector<std::size_t> byzantine = {0, 1};
    const auto honest = dgd::honest_ids(10, byzantine);

    std::cout << "\n--- heterogeneity " << heterogeneity << " ---\n";
    util::TablePrinter table({"attack", "series", "test accuracy", "honest loss"});

    auto report = [&](const std::string& attack_name, const std::string& series,
                      const dgd::TrainResult& r) {
      const double acc = data::test_accuracy(inst, r.estimate);
      table.add_row({attack_name, series, util::TablePrinter::num(acc, 4),
                     util::TablePrinter::num(r.final_loss, 4)});
      if (csv) {
        csv->write_row(std::vector<std::string>{std::to_string(heterogeneity), attack_name,
                                                series, std::to_string(acc),
                                                std::to_string(r.final_loss)});
      }
    };

    // Fault-free reference: the 8 honest agents only.
    {
      core::MultiAgentProblem fault_free;
      fault_free.f = 0;
      for (std::size_t id : honest) fault_free.costs.push_back(inst.problem.costs[id]);
      auto cfg = bench::make_config(8, 0, "mean", iterations, 10, seed);
      report("none", "fault-free", dgd::train(fault_free, {}, nullptr, cfg));
    }

    for (const std::string attack_name : {"gradient_reverse", "lie"}) {
      const auto attack = attacks::make_attack(attack_name);
      for (const std::string filter : {"mean", "cge", "cwtm"}) {
        auto cfg = bench::make_config(10, 2, filter, iterations, 10, seed);
        const auto r = dgd::train(inst.problem, byzantine, attack.get(), cfg);
        report(attack_name, filter == "mean" ? "no-filter" : filter, r);
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nShape check (paper Sec. 5 discussion): filtered runs reach accuracy\n"
               "comparable to fault-free; the unfiltered run degrades under attack;\n"
               "higher heterogeneity (weaker data correlation) costs some accuracy.\n";
  return 0;
}
