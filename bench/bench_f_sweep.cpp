// R-T2 — fault-count sweep.
//
// Orthonormal-block regression with n = 15, d = 4: for each actual fault
// count f_actual = 0 .. 4, builds an instance with fault budget f_actual,
// reports alpha = 1 - 3 f / n (exact for this family), and the final error
// of DGD+CGE and DGD+CWTM under gradient-reverse faults.  Shape: the error
// stays small while alpha > 0 (f < n/3 = 5) and degrades as f grows.
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "d", "noise", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-T2");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 15));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 4));
  const double noise = cli.get_double("noise", 0.05);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));

  bench::banner("R-T2", "error versus fault count f (orthonormal blocks, n=" +
                            std::to_string(n) + ", d=" + std::to_string(d) + ")");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "f_sweep",
                              {"f", "alpha", "epsilon", "cge_dist", "cwtm_dist"});

  util::TablePrinter table({"f", "alpha", "eps(2f)", "CGE dist", "CWTM dist"});
  Vector x_star(d, 1.0);
  const std::size_t f_max = (n - 1) / 3 + 1;  // one step past the CGE regime
  for (std::size_t f = 0; f <= f_max; ++f) {
    rng::Rng rng(seed);
    const auto inst = data::make_orthonormal_regression(n, d, f, noise, x_star, rng);
    const double alpha = core::cge_alpha(n, f, 2.0, 2.0);  // mu = gamma = 2 by construction
    const double eps =
        f == 0 ? 0.0 : redundancy::measure_redundancy(inst.problem.costs, f).epsilon;

    std::vector<std::size_t> byzantine;
    for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
    const auto honest = dgd::honest_ids(n, byzantine);
    const Vector x_h = data::block_regression_argmin(inst, honest);
    const auto attack = attacks::make_attack("gradient_reverse");

    double cge_dist = 0.0, cwtm_dist = 0.0;
    {
      auto cfg = bench::make_config(n, f, "cge", iterations, d, seed);
      cge_dist = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h).final_distance;
    }
    {
      auto cfg = bench::make_config(n, f, "cwtm", iterations, d, seed);
      cwtm_dist = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h).final_distance;
    }
    table.add_row({std::to_string(f), util::TablePrinter::num(alpha, 3),
                   util::TablePrinter::num(eps, 4), util::TablePrinter::num(cge_dist, 4),
                   util::TablePrinter::num(cwtm_dist, 4)});
    if (csv) {
      csv->write_row(std::vector<double>{static_cast<double>(f), alpha, eps, cge_dist,
                                         cwtm_dist});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: errors stay O(eps) while alpha > 0 (f < n/3) and grow\n"
               "with f; smaller f means a smaller resilience constant D (Theorem 4).\n";
  return 0;
}
