// R-A11 — asynchrony tolerance: stale honest gradients.
//
// Sweeps the straggler probability and maximum staleness in the
// stale-gradient model (Byzantine agents always fast — the worst case) and
// reports the final error of DGD+CGE under gradient-reverse faults, plus a
// fault-free column isolating the pure-staleness effect.  Shape: bounded
// staleness costs a transient but not the limit (diminishing steps absorb
// it); the Byzantine resilience is essentially unaffected — robust
// aggregation composes with asynchrony.
#include "common.h"

#include "dgd/async_trainer.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A11");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));
  const double noise = cli.get_double("noise", 0.03);

  bench::banner("R-A11", "stale-gradient asynchrony: error vs straggler rate");
  const std::size_t n = 9, f = 2, d = 3;
  rng::Rng rng(seed);
  const auto inst = data::make_orthonormal_regression(n, d, f, noise, Vector(d, 1.0), rng);
  const std::vector<std::size_t> byzantine = {0, 1};
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const auto attack = attacks::make_attack("gradient_reverse");

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "async",
                              {"straggler_p", "max_staleness", "transient_50", "fault_free", "cge"});
  util::TablePrinter table({"straggler p", "max staleness", "CGE dist @ t=50",
                            "fault-free final", "CGE+reverse final"});

  struct Case {
    double p;
    std::size_t s;
  };
  for (const Case& c : {Case{0.0, 1}, {0.2, 2}, {0.5, 4}, {0.8, 8}, {0.95, 16}}) {
    dgd::AsyncConfig cfg;
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    cfg.base.filter = filters::make_filter("cge", fp);
    cfg.base.schedule = std::make_shared<dgd::HarmonicSchedule>(0.3);
    cfg.base.projection =
        std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
    cfg.base.iterations = iterations;
    cfg.base.seed = seed;
    cfg.base.trace_stride = 0;
    cfg.straggler_probability = c.p;
    cfg.max_staleness = c.s;
    cfg.base.trace_stride = 25;  // capture the transient at t = 50

    const auto fault_free = dgd::train_async(inst.problem, {}, nullptr, cfg, x_h);
    const auto attacked = dgd::train_async(inst.problem, byzantine, attack.get(), cfg, x_h);
    const double transient = attacked.trace.distance[2];  // t = 50
    table.add_row({util::TablePrinter::num(c.p, 3), std::to_string(c.s),
                   util::TablePrinter::num(transient, 4),
                   util::TablePrinter::num(fault_free.final_distance, 4),
                   util::TablePrinter::num(attacked.final_distance, 4)});
    if (csv) {
      csv->write_row(std::vector<double>{c.p, static_cast<double>(c.s), transient,
                                         fault_free.final_distance,
                                         attacked.final_distance});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: staleness costs only a transient (dist at t = 50 grows\n"
               "with the straggler rate) — the asymptotic error is unchanged because\n"
               "diminishing steps absorb bounded staleness, and CGE's Byzantine\n"
               "resilience composes with asynchrony (attacked tracks fault-free).\n";
  return 0;
}
