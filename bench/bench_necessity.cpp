// R-T5 — the necessity construction (Theorem 1's proof, executable).
//
// Builds the two indistinguishable scenarios from the proof for a range of
// redundancy-violation gaps: three scalar quadratic costs whose subsets'
// minima are `gap` apart.  Any deterministic algorithm (here: the
// exhaustive exact algorithm, the strongest one available) receives
// identical inputs in both scenarios, so its worst-case error across the
// two honest-set interpretations is at least gap/2 — matching the lower
// bound, and demonstrating why (2f, eps)-redundancy is necessary for
// (f, eps)-resilience.
#include "common.h"

#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"csv"}));
  const bench::Harness harness(cli, "R-T5");
  bench::banner("R-T5", "necessity: worst-case error >= gap/2 without redundancy");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "necessity",
                              {"gap", "measured_eps", "worst_error", "lower_bound"});

  util::TablePrinter table(
      {"gap", "measured eps(2f)", "worst-case error", "lower bound gap/2"});
  for (double gap : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    // Costs: centers 0, -gap, +gap (scalar squared distances).
    auto q0 = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{0.0}));
    auto q1 = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{-gap}));
    auto q2 = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{gap}));
    const std::vector<core::CostPtr> received = {q0, q1, q2};

    const double eps = redundancy::measure_redundancy(received, 1).epsilon;

    // Scenario (i): honest = {0, 1}; scenario (ii): honest = {0, 2}.
    const Vector x_i = core::argmin_point(core::aggregate_subset(received, {0, 1}));
    const Vector x_ii = core::argmin_point(core::aggregate_subset(received, {0, 2}));
    const Vector output = core::run_exact_algorithm(received, 1).output;
    const double worst =
        std::max(linalg::distance(output, x_i), linalg::distance(output, x_ii));
    const double lower = linalg::distance(x_i, x_ii) / 2.0;

    table.add_row({util::TablePrinter::num(gap, 3), util::TablePrinter::num(eps, 4),
                   util::TablePrinter::num(worst, 4), util::TablePrinter::num(lower, 4)});
    if (csv) csv->write_row(std::vector<double>{gap, eps, worst, lower});
  }
  table.print(std::cout);
  std::cout << "\nShape check: worst-case error >= gap/2 for every gap — no\n"
               "deterministic algorithm can be (f, eps)-resilient for eps < gap/2\n"
               "when (2f, eps)-redundancy fails by that gap (Theorem 1).\n";
  return 0;
}
