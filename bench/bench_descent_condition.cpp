// R-A8 — Theorem 3's descent condition, measured.
//
// For each filter, probes phi(x) = <x - x_H, GradFilter(gradients at x)>
// on spheres around x_H under inner-product-manipulation faults (c = 4;
// orthonormal-block instance, alpha > 0).  Theorem 3 says DGD converges to within D* of x_H
// as soon as min phi > 0 outside radius D*; the bench reports min phi per
// radius and the empirical D* per filter, next to Theorem 4's D*eps for
// CGE.  Plain averaging never turns positive — the descent-condition view
// of why it fails.
#include "common.h"

#include <cmath>
#include <limits>

#include "dgd/descent_probe.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "f", "d", "noise", "seed", "csv"}));
  const bench::Harness harness(cli, "R-A8");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 9));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 3));
  const double noise = cli.get_double("noise", 0.05);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));

  bench::banner("R-A8", "Theorem 3's descent condition phi(x) measured per filter");
  rng::Rng rng(seed);
  const auto inst = data::make_orthonormal_regression(n, d, f, noise, Vector(d, 1.0), rng);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, f).epsilon;
  const double alpha = core::cge_alpha(n, f, 2.0, 2.0);
  const double d_theory = 4.0 * 2.0 * static_cast<double>(f) / (alpha * 2.0) * eps;
  std::cout << "eps = " << eps << "  alpha = " << alpha
            << "  Theorem-4 radius D*eps = " << d_theory << "\n\n";

  attacks::AttackParams attack_params;
  attack_params.c = 4.0;  // strong inner-product manipulation
  const auto attack = attacks::make_attack("ipm", attack_params);
  dgd::DescentProbeConfig probe;
  probe.radii = {0.01, 0.03, 0.1, 0.3, 1.0, 3.0};
  probe.samples_per_radius = 128;
  probe.seed = seed;

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "descent_condition",
                              {"filter", "radius", "min_phi", "mean_phi"});

  std::vector<std::string> header = {"radius"};
  const std::vector<std::string> filter_list = {"cge", "cwtm", "geomed", "mean"};
  for (const auto& name : filter_list) header.push_back("min phi (" + name + ")");
  util::TablePrinter table(header);

  std::vector<dgd::DescentProbeResult> results;
  for (const auto& name : filter_list) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    const auto filter = filters::make_filter(name, fp);
    results.push_back(dgd::probe_descent_condition(inst.problem, byzantine, attack.get(),
                                                   *filter, x_h, probe));
    if (csv) {
      for (const auto& shell : results.back().shells) {
        csv->write_row(std::vector<std::string>{name, std::to_string(shell.radius),
                                                std::to_string(shell.min_phi),
                                                std::to_string(shell.mean_phi)});
      }
    }
  }

  for (std::size_t k = 0; k < probe.radii.size(); ++k) {
    std::vector<std::string> row = {util::TablePrinter::num(probe.radii[k], 3)};
    for (const auto& result : results) {
      row.push_back(util::TablePrinter::num(result.shells[k].min_phi, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nempirical D* per filter:";
  for (std::size_t i = 0; i < filter_list.size(); ++i) {
    const double d_star = results[i].empirical_d_star;
    std::cout << "  " << filter_list[i] << "="
              << (std::isinf(d_star) ? std::string("inf")
                                     : util::TablePrinter::num(d_star, 3));
  }
  std::cout << "\n\nShape check: robust filters' min phi turns positive at a small\n"
               "radius (well inside Theorem 4's D*eps for CGE), guaranteeing\n"
               "convergence into that ball; the plain mean's phi is NEGATIVE at\n"
               "every radius — the descent-condition view of why unfiltered DGD\n"
               "is steered away by coordinated faults.\n";
  return 0;
}
