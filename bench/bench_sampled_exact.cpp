// R-P3 — making the sufficiency construction practical: Monte-Carlo subset
// sampling versus full enumeration.
//
// The exhaustive algorithm of Theorem 2 is exponential in n (bench_exact_perf);
// the sampled variant scores a bounded number of random subsets instead.
// This bench (a) compares its output against the exhaustive algorithm
// where both can run, and (b) demonstrates it on instance sizes where
// enumeration is hopeless, reporting wall-clock and accuracy versus the
// sampling budget.  (The worst-case 2*eps guarantee is forfeited — this is
// an engineering heuristic; see core/exact_algorithm.h.)
#include "common.h"

#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "util/stopwatch.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Vector;

namespace {

/// Near-redundant quadratic instance with f adversarial costs installed.
std::vector<core::CostPtr> make_instance(std::size_t n, std::size_t f, std::size_t d,
                                         double spread, std::uint64_t seed,
                                         Vector* honest_mean_out) {
  rng::Rng rng(seed);
  std::vector<core::CostPtr> costs;
  Vector mean(d);
  for (std::size_t i = 0; i < n; ++i) {
    Vector center(d);
    for (auto& c : center) c = 1.0 + rng.gaussian(0.0, spread);
    if (i >= f) mean += center;  // honest agents are f..n-1
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  mean /= static_cast<double>(n - f);
  // Agents 0..f-1 are Byzantine: adversarial pull toward a far point.
  for (std::size_t b = 0; b < f; ++b) {
    costs[b] = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector(d, 30.0)));
  }
  *honest_mean_out = mean;
  return costs;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"seed", "csv"}));
  const bench::Harness harness(cli, "R-P3");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 19));

  bench::banner("R-P3", "sampled versus exhaustive sufficiency construction");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "sampled_exact",
                              {"n", "f", "mode", "samples", "error", "ms"});

  util::TablePrinter table({"n", "f", "mode", "subsets scored", "error vs honest argmin",
                            "time (ms)"});

  // (a) Head-to-head where enumeration is feasible.
  for (auto [n, f] : {std::pair<std::size_t, std::size_t>{10, 2}, {12, 3}}) {
    Vector honest_mean;
    const auto costs = make_instance(n, f, 3, 0.02, seed, &honest_mean);

    util::Stopwatch watch;
    const auto exhaustive = core::run_exact_algorithm(costs, f);
    const double exhaustive_ms = watch.elapsed_ms();
    table.add_row({std::to_string(n), std::to_string(f), "exhaustive",
                   std::to_string(exhaustive.subsets_evaluated),
                   util::TablePrinter::num(linalg::distance(exhaustive.output, honest_mean), 4),
                   util::TablePrinter::num(exhaustive_ms, 4)});

    for (std::size_t budget : {16u, 64u}) {
      core::SampledExactOptions sampling;
      sampling.outer_samples = budget;
      sampling.inner_samples = budget;
      sampling.seed = seed;
      watch.reset();
      const auto sampled = core::run_sampled_exact_algorithm(costs, f, sampling);
      const double sampled_ms = watch.elapsed_ms();
      table.add_row({std::to_string(n), std::to_string(f),
                     "sampled(" + std::to_string(budget) + ")",
                     std::to_string(sampled.subsets_evaluated),
                     util::TablePrinter::num(linalg::distance(sampled.output, honest_mean), 4),
                     util::TablePrinter::num(sampled_ms, 4)});
      if (csv) {
        csv->write_row(std::vector<std::string>{
            std::to_string(n), std::to_string(f), "sampled", std::to_string(budget),
            std::to_string(linalg::distance(sampled.output, honest_mean)),
            std::to_string(sampled_ms)});
      }
    }
  }

  // (b) Beyond enumeration: n = 30, f = 6 would need C(30, 6) ~ 6e5 outer
  // subsets each with huge inner counts.  Uniform sampling FAILS here by
  // construction — with exactly f faulty agents only ONE outer subset is
  // fault-free, and a random (n - f)-subset carries ~f(n-f)/n faulty
  // members — while the guided mode (rank agents by argmin centrality)
  // recovers the honest subset in milliseconds.
  {
    const std::size_t n = 30, f = 6;
    Vector honest_mean;
    const auto costs = make_instance(n, f, 3, 0.02, seed, &honest_mean);
    for (bool guided : {false, true}) {
      core::SampledExactOptions sampling;
      sampling.outer_samples = 128;
      sampling.inner_samples = 128;
      sampling.seed = seed;
      sampling.guided = guided;
      util::Stopwatch watch;
      const auto sampled = core::run_sampled_exact_algorithm(costs, f, sampling);
      table.add_row({std::to_string(n), std::to_string(f),
                     guided ? "sampled(128)+guided" : "sampled(128) uniform",
                     std::to_string(sampled.subsets_evaluated),
                     util::TablePrinter::num(linalg::distance(sampled.output, honest_mean), 4),
                     util::TablePrinter::num(watch.elapsed_ms(), 4)});
    }
    std::cout << "(exhaustive at n=30, f=6 would score C(30,24) = "
              << util::binomial(30, 24) << " outer subsets — not attempted)\n\n";
  }

  table.print(std::cout);
  std::cout << "\nShape check: at small n the sampled variant matches the exhaustive\n"
               "output once the budget covers the subset space.  At scale, UNIFORM\n"
               "sampling fails structurally (nearly every subset is contaminated;\n"
               "the single fault-free subset is a needle in C(n, f) straws) — the\n"
               "exhaustive ranking is doing real work, which is the quantitative\n"
               "content of the paper's impracticality remark.  Guided sampling\n"
               "(argmin-centrality agent ranking) restores accuracy in milliseconds,\n"
               "at the price of Theorem 2's worst-case guarantee.\n";
  return 0;
}
