// R-P4 — strong scaling of the runtime-wired hot paths.
//
// Runs the four paths that fan out over runtime::parallel_for /
// parallel_reduce (DGD training, Byzantine SGD, the exhaustive exact
// algorithm, resilience certification) at increasing thread counts,
// reports wall time and speedup, and *checks* the determinism contract:
// every path must produce bit-identical output at every thread count.
// On a single-core host the sweep still runs (oversubscribed) and the
// bit-identity check is the part that matters.
#include "common.h"

#include <algorithm>

#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "redundancy/resilience.h"
#include "rng/rng.h"
#include "sgd/empirical_cost.h"
#include "sgd/sgd_trainer.h"
#include "util/error.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<core::CostPtr> quadratic_costs(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<core::CostPtr> costs;
  costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector center(rng.gaussian_vector(d));
    center *= 0.01;  // nearly redundant instance
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  return costs;
}

core::MultiAgentProblem empirical_problem(std::size_t n, std::size_t f, std::size_t d,
                                          std::size_t samples, std::uint64_t seed) {
  rng::Rng rng(seed);
  core::MultiAgentProblem problem;
  problem.f = f;
  for (std::size_t i = 0; i < n; ++i) {
    Matrix x(samples, d);
    Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      double pred = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        x(j, k) = rng.gaussian();
        pred += x(j, k) * (k % 2 == 0 ? 1.0 : -1.0);
      }
      y[j] = pred + rng.gaussian(0.0, 0.05);
    }
    problem.costs.push_back(std::make_shared<sgd::EmpiricalCost>(
        std::move(x), std::move(y), sgd::Loss::kSquare, 0.0));
  }
  problem.validate();
  return problem;
}

bool identical(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// One wired path: a closure producing a flat vector of observables whose
/// bit pattern must not depend on the thread count.
struct Path {
  std::string name;
  std::function<Vector()> run;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      bench::with_runtime_flags(
                          {"n", "f", "d", "samples", "iterations", "seed", "max-threads", "csv"}));
  const bench::Harness harness(cli, "R-P4");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 4));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 40));
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const auto max_threads = static_cast<std::size_t>(cli.get_int("max-threads", 8));

  bench::banner("R-P4", "parallel runtime: strong scaling and bit-identity per path");

  // Thread counts to sweep: {1, 2, 4, 8} clamped by --max-threads; an
  // explicit --threads t runs exactly {1, t}.
  std::vector<std::size_t> counts;
  if (const std::int64_t t = cli.get_int("threads", 0); t > 1) {
    counts = {1, static_cast<std::size_t>(t)};
  } else {
    for (std::size_t c = 1; c <= std::max<std::size_t>(1, max_threads); c *= 2) counts.push_back(c);
  }

  // The workloads: sized so the per-item work (agent gradients, subset
  // scores, placement sweeps) dominates the fork/join overhead.
  const auto quad = quadratic_costs(n, d, seed);
  core::MultiAgentProblem dgd_problem;
  dgd_problem.costs = quad;
  dgd_problem.f = f;
  dgd_problem.validate();
  const auto sgd_problem = empirical_problem(n, f, d, samples, seed);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto attack = attacks::make_attack("gradient_reverse");

  // Resilience certification is exponential in its n; keep it small and
  // independent of the sweep's --n so the bench stays runnable.
  const auto res_costs = quadratic_costs(6, 2, seed + 1);
  const std::vector<core::CostPtr> adversarial = {std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{5.0, -5.0}))};

  std::vector<Path> paths;
  paths.push_back({"dgd/train", [&] {
                     const auto cfg = bench::make_config(n, f, "cge", iterations, d, seed);
                     return dgd::train(dgd_problem, byzantine, attack.get(), cfg).estimate;
                   }});
  paths.push_back({"sgd/train_sgd", [&] {
                     sgd::SgdConfig cfg;
                     cfg.base = bench::make_config(n, f, "cge", iterations, d, seed);
                     cfg.batch_size = 4;
                     return sgd::train_sgd(sgd_problem, byzantine, attack.get(), cfg).estimate;
                   }});
  paths.push_back({"core/exact_algorithm", [&] {
                     const auto r = core::run_exact_algorithm(quad, f);
                     Vector obs = r.output;
                     obs.data().push_back(r.chosen_score);
                     return obs;
                   }});
  paths.push_back({"redundancy/resilience", [&] {
                     const auto report = redundancy::measure_resilience(
                         res_costs, 1,
                         [](const std::vector<core::CostPtr>& received, std::size_t budget) {
                           return core::run_exact_algorithm(received, budget).output;
                         },
                         adversarial);
                     return Vector{report.epsilon, static_cast<double>(report.scenarios_run)};
                   }});

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "parallel_scaling",
                              {"path", "threads", "seconds", "speedup"});
  util::TablePrinter table({"path", "threads", "seconds", "speedup", "identical"});

  bool all_identical = true;
  for (const auto& path : paths) {
    Vector baseline;
    double base_seconds = 0.0;
    for (std::size_t threads : counts) {
      runtime::set_threads(threads);
      const util::Stopwatch watch;
      const Vector observed = path.run();
      const double seconds = watch.elapsed_seconds();
      const bool same = threads == counts.front() || identical(observed, baseline);
      if (threads == counts.front()) {
        baseline = observed;
        base_seconds = seconds;
      }
      all_identical = all_identical && same;
      table.add_row({path.name, std::to_string(threads), util::TablePrinter::num(seconds, 4),
                     util::TablePrinter::num(base_seconds / seconds, 2), same ? "yes" : "NO"});
      bench::json_summary("R-P4/" + path.name, threads,
                          {{"n", std::to_string(n)}, {"f", std::to_string(f)}},
                          seconds);
      if (csv) {
        csv->write_row({path.name, std::to_string(threads), std::to_string(seconds),
                        std::to_string(base_seconds / seconds)});
      }
    }
  }
  runtime::set_threads(1);
  table.print(std::cout);
  REDOPT_REQUIRE(all_identical, "a wired path produced thread-count-dependent output");
  std::cout << "\nEvery path produced bit-identical output at every thread count.\n"
               "Speedups are meaningful only on a multi-core host.\n";
  return 0;
}
