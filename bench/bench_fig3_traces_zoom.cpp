// R-F2 — early-phase convergence traces (paper Figure 3 shape).
//
// Same executions as R-F1, magnified to the first 80 iterations with a
// dense print stride, showing the transient where the unfiltered run and
// the filtered runs separate.
#include "common.h"

using namespace redopt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"noise", "seed", "csv"}));
  const bench::Harness harness(cli, "R-F2");
  const double noise = cli.get_double("noise", 0.03);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::size_t iterations = 80;

  bench::banner("R-F2", "zoomed traces, iterations 0..80");
  const bench::PaperExperiment exp(noise, seed);

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "fig3",
                              {"attack", "series", "iteration", "loss", "distance"});

  for (const std::string attack_name : {"gradient_reverse", "random"}) {
    std::cout << "\n--- fault type: " << attack_name << " ---\n";
    const auto attack = attacks::make_attack(attack_name);
    util::TablePrinter table({"iter", "no-filter dist", "cge dist", "cwtm dist"});

    std::vector<std::pair<std::string, dgd::Trace>> series;
    for (const std::string filter : {"sum", "cge", "cwtm"}) {
      auto cfg = bench::make_config(6, 1, filter, iterations, 2, seed);
      cfg.x0 = exp.x0();
      cfg.trace_stride = 1;
      auto r = dgd::train(exp.instance.problem, {0}, attack.get(), cfg, exp.x_h);
      series.emplace_back(filter == "sum" ? "no-filter" : filter, std::move(r.trace));
    }

    for (std::size_t t = 0; t <= iterations; t += 5) {
      std::vector<std::string> row = {std::to_string(t)};
      for (const auto& [label, trace] : series)
        row.push_back(util::TablePrinter::num(trace.distance[t], 4));
      table.add_row(std::move(row));
    }
    table.print(std::cout);

    if (csv) {
      for (const auto& [label, trace] : series) {
        for (std::size_t k = 0; k < trace.iteration.size(); ++k) {
          csv->write_row(std::vector<std::string>{attack_name, label,
                                                  std::to_string(trace.iteration[k]),
                                                  std::to_string(trace.loss[k]),
                                                  std::to_string(trace.distance[k])});
        }
      }
    }
  }
  std::cout << "\nShape check (paper Fig. 3): the filters separate from the\n"
               "unfiltered run within the first tens of iterations.\n";
  return 0;
}
