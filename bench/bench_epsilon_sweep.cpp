// R-T3 — redundancy relaxation sweep.
//
// Orthonormal-block regression (n = 10, f = 2, d = 3) with observation
// noise sigma swept over a decade: for each sigma, measures the tight
// (2f, eps)-redundancy constant, the Theorem-4 bound D*eps (alpha = 1 -
// 3f/n = 0.4, D = 4 mu f / (alpha gamma) = 4*2*2/(0.4*2) = 20), and the
// achieved error of DGD+CGE under zero faults (muted agents survive norm
// elimination, which makes the eps-dependence visible) and under
// gradient-reverse.  Shape: eps grows linearly in sigma and the achieved
// error tracks it, staying below the bound.
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "d", "f", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-T3");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 3));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 4000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  bench::banner("R-T3", "measured eps and achieved error versus observation noise");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "epsilon_sweep",
                              {"sigma", "epsilon", "bound", "zero_dist", "reverse_dist"});

  const double mu = 2.0, gamma = 2.0;  // exact for orthonormal blocks
  const double alpha = core::cge_alpha(n, f, mu, gamma);
  const double D = 4.0 * mu * static_cast<double>(f) / (alpha * gamma);
  std::cout << "n=" << n << " f=" << f << " d=" << d << "  alpha=" << alpha << "  D=" << D
            << "\n\n";

  util::TablePrinter table({"sigma", "eps(2f)", "bound D*eps", "CGE+zero", "CGE+reverse"});
  Vector x_star(d, 1.0);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);

  for (double sigma : {0.0, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    rng::Rng rng(seed);
    const auto inst = data::make_orthonormal_regression(n, d, f, sigma, x_star, rng);
    const double eps = redundancy::measure_redundancy(inst.problem.costs, f).epsilon;
    const auto honest = dgd::honest_ids(n, byzantine);
    const Vector x_h = data::block_regression_argmin(inst, honest);

    double dists[2];
    int k = 0;
    for (const std::string attack_name : {"zero", "gradient_reverse"}) {
      const auto attack = attacks::make_attack(attack_name);
      auto cfg = bench::make_config(n, f, "cge", iterations, d, seed);
      dists[k++] =
          dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h).final_distance;
    }
    table.add_row({util::TablePrinter::num(sigma, 3), util::TablePrinter::num(eps, 4),
                   util::TablePrinter::num(D * eps, 4), util::TablePrinter::num(dists[0], 4),
                   util::TablePrinter::num(dists[1], 4)});
    if (csv) csv->write_row(std::vector<double>{sigma, eps, D * eps, dists[0], dists[1]});
  }
  table.print(std::cout);
  std::cout << "\nShape check: eps scales ~linearly with sigma; achieved errors track\n"
               "eps and stay below the Theorem-4 bound D*eps.\n";
  return 0;
}
