// Shared setup for the bench harnesses: the paper-shaped regression
// experiment (n = 6, f = 1, d = 2) and config builders.
//
// Every harness binary prints (a) a banner naming the experiment it
// regenerates (DESIGN.md R-* id), (b) the table rows / series, and, when
// --csv is passed, (c) a CSV file under bench_out/ for plotting.
#pragma once

#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "runtime/runtime.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace redopt::bench {

/// Appends the flags every harness binary accepts uniformly (--threads).
inline std::vector<std::string> with_runtime_flags(std::vector<std::string> flags) {
  flags.emplace_back("threads");
  return flags;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

/// Prints the machine-readable single-line summary every harness emits
/// alongside its human-readable table:
///
///   BENCH_JSON {"bench":"R-T4","threads":1,"params":{...},"wall_s":0.42}
///
/// The BENCH_JSON prefix makes the line greppable, so perf trajectories
/// can be collected across runs into BENCH_*.json files.
inline void json_summary(const std::string& name, std::size_t threads,
                         const std::map<std::string, std::string>& params,
                         double wall_seconds) {
  std::ostringstream os;
  os << "BENCH_JSON {\"bench\":\"" << json_escape(name) << "\",\"threads\":" << threads
     << ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : params) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(key) << "\":\"" << json_escape(value) << "\"";
  }
  os << "},\"wall_s\":" << wall_seconds << "}";
  std::cout << os.str() << "\n";
}

/// Per-binary harness bookkeeping: applies --threads (REDOPT_THREADS env
/// fallback) to the runtime at construction and prints the BENCH_JSON
/// summary — with every flag the user passed as params — at destruction.
class Harness {
 public:
  Harness(const util::Cli& cli, std::string name)
      : name_(std::move(name)), params_(cli.items()) {
    const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
    if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));
  }
  ~Harness() { json_summary(name_, runtime::threads(), params_, watch_.elapsed_seconds()); }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

 private:
  std::string name_;
  std::map<std::string, std::string> params_;
  util::Stopwatch watch_;
};

/// Step-schedule coefficient matched to the filter's output scale: filters
/// that *sum* ~n gradients (cge, sum) take a smaller coefficient than
/// filters that average.
inline double schedule_coefficient(const std::string& filter) {
  return (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
}

/// Standard trainer configuration used across the harnesses.
inline dgd::TrainerConfig make_config(std::size_t n, std::size_t f, const std::string& filter,
                                      std::size_t iterations, std::size_t d,
                                      std::uint64_t seed = 1) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(schedule_coefficient(filter));
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  cfg.iterations = iterations;
  cfg.seed = seed;
  cfg.trace_stride = 0;
  return cfg;
}

/// The paper-shaped experiment instance (Section 5): n = 6 agents, f = 1,
/// d = 2, x* = (1, 1), unit-norm observation rows, Gaussian observation
/// noise.  Agent 0 is the Byzantine agent in all executions.
struct PaperExperiment {
  data::RegressionInstance instance;
  linalg::Vector x_h;        ///< honest aggregate minimum (agents 1..5)
  double epsilon;            ///< measured (2f, eps)-redundancy constant
  data::RegressionConstants constants;  ///< mu, gamma over the honest agents

  explicit PaperExperiment(double noise_sigma = 0.03, std::uint64_t seed = 42)
      : instance([&] {
          rng::Rng rng(seed);
          return data::make_regression(data::paper_matrix(), linalg::Vector{1.0, 1.0},
                                       noise_sigma, 1, rng);
        }()),
        x_h(data::regression_argmin(instance, {1, 2, 3, 4, 5})),
        epsilon(redundancy::measure_redundancy(instance.problem.costs, 1).epsilon),
        constants(data::regression_constants(instance, {1, 2, 3, 4, 5})) {}

  /// The paper's published initial estimate.
  linalg::Vector x0() const { return linalg::Vector{-0.0085, -0.5643}; }
};

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "==============================================================\n"
            << id << " — " << what << "\n"
            << "==============================================================\n";
}

/// Opens bench_out/<name>.csv when requested (creates the directory).
inline std::unique_ptr<util::CsvWriter> maybe_csv(bool enabled, const std::string& name,
                                                  const std::vector<std::string>& header) {
  if (!enabled) return nullptr;
  std::filesystem::create_directories("bench_out");
  auto writer = std::make_unique<util::CsvWriter>("bench_out/" + name + ".csv", header);
  std::cout << "(writing bench_out/" << name << ".csv)\n";
  return writer;
}

}  // namespace redopt::bench
