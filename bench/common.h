// Shared setup for the bench harnesses: the paper-shaped regression
// experiment (n = 6, f = 1, d = 2) and config builders.
//
// Every harness binary prints (a) a banner naming the experiment it
// regenerates (DESIGN.md R-* id), (b) the table rows / series, and, when
// --csv is passed, (c) a CSV file under bench_out/ for plotting.
#pragma once

#include <filesystem>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/table.h"

namespace redopt::bench {

/// Step-schedule coefficient matched to the filter's output scale: filters
/// that *sum* ~n gradients (cge, sum) take a smaller coefficient than
/// filters that average.
inline double schedule_coefficient(const std::string& filter) {
  return (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
}

/// Standard trainer configuration used across the harnesses.
inline dgd::TrainerConfig make_config(std::size_t n, std::size_t f, const std::string& filter,
                                      std::size_t iterations, std::size_t d,
                                      std::uint64_t seed = 1) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(schedule_coefficient(filter));
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  cfg.iterations = iterations;
  cfg.seed = seed;
  cfg.trace_stride = 0;
  return cfg;
}

/// The paper-shaped experiment instance (Section 5): n = 6 agents, f = 1,
/// d = 2, x* = (1, 1), unit-norm observation rows, Gaussian observation
/// noise.  Agent 0 is the Byzantine agent in all executions.
struct PaperExperiment {
  data::RegressionInstance instance;
  linalg::Vector x_h;        ///< honest aggregate minimum (agents 1..5)
  double epsilon;            ///< measured (2f, eps)-redundancy constant
  data::RegressionConstants constants;  ///< mu, gamma over the honest agents

  explicit PaperExperiment(double noise_sigma = 0.03, std::uint64_t seed = 42)
      : instance([&] {
          rng::Rng rng(seed);
          return data::make_regression(data::paper_matrix(), linalg::Vector{1.0, 1.0},
                                       noise_sigma, 1, rng);
        }()),
        x_h(data::regression_argmin(instance, {1, 2, 3, 4, 5})),
        epsilon(redundancy::measure_redundancy(instance.problem.costs, 1).epsilon),
        constants(data::regression_constants(instance, {1, 2, 3, 4, 5})) {}

  /// The paper's published initial estimate.
  linalg::Vector x0() const { return linalg::Vector{-0.0085, -0.5643}; }
};

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "==============================================================\n"
            << id << " — " << what << "\n"
            << "==============================================================\n";
}

/// Opens bench_out/<name>.csv when requested (creates the directory).
inline std::unique_ptr<util::CsvWriter> maybe_csv(bool enabled, const std::string& name,
                                                  const std::vector<std::string>& header) {
  if (!enabled) return nullptr;
  std::filesystem::create_directories("bench_out");
  auto writer = std::make_unique<util::CsvWriter>("bench_out/" + name + ".csv", header);
  std::cout << "(writing bench_out/" << name << ".csv)\n";
  return writer;
}

}  // namespace redopt::bench
