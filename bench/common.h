// Shared setup for the bench harnesses: the paper-shaped regression
// experiment (n = 6, f = 1, d = 2) and config builders.
//
// Every harness binary prints (a) a banner naming the experiment it
// regenerates (DESIGN.md R-* id), (b) the table rows / series, and, when
// --csv is passed, (c) a CSV file under bench_out/ for plotting.
#pragma once

#include <filesystem>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace redopt::bench {

// The JSON helpers moved to util/json.h; keep the old names visible for
// bench code written against this header.
using util::json_escape;
using util::json_summary;

/// Appends the flags every harness binary accepts uniformly:
/// --threads, --telemetry <path> (JSONL run manifest), --dump-metrics
/// (Prometheus text exposition on stdout at exit).
inline std::vector<std::string> with_runtime_flags(std::vector<std::string> flags) {
  flags.emplace_back("threads");
  flags.emplace_back("telemetry");
  flags.emplace_back("dump-metrics");
  return flags;
}

/// Per-binary harness bookkeeping: applies --threads (REDOPT_THREADS env
/// fallback) to the runtime at construction, switches telemetry on when
/// --telemetry/--dump-metrics is passed, and prints the BENCH_JSON summary
/// — with every flag the user passed as params — at destruction.
///
/// With --telemetry <path>, the harness writes a JSONL run manifest: a
/// "run.start" event (bench name + flags; the thread count goes in the nd
/// section so manifests stay byte-identical across REDOPT_THREADS values),
/// the bench's own event stream, the final metric snapshot, and "run.end".
/// scripts/check_determinism.sh gates on exactly this property: it diffs
/// nd-stripped manifests across REDOPT_THREADS in {1, 2, 8}.
class Harness {
 public:
  Harness(const util::Cli& cli, std::string name)
      : name_(std::move(name)), params_(cli.items()) {
    const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
    if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));

    dump_metrics_ = cli.get_bool("dump-metrics", false);
    const std::string telemetry_path = cli.get_string("telemetry", "");
    if (dump_metrics_ || !telemetry_path.empty()) telemetry::set_enabled(true);
    if (!telemetry_path.empty()) {
      sink_ = std::make_shared<telemetry::JsonlSink>(telemetry_path);
      telemetry::add_sink(sink_);
      telemetry::Event start("run.start");
      start.with("bench", name_);
      for (const auto& [key, value] : params_) start.with("flag." + key, value);
      start.with_nd("threads", static_cast<std::uint64_t>(runtime::threads()));
      telemetry::emit(start);
    }
  }

  ~Harness() {
    const double wall_seconds = watch_.elapsed_seconds();
    if (sink_) {
      telemetry::emit_metrics_snapshot(telemetry::registry().snapshot());
      telemetry::emit(telemetry::Event("run.end").with_nd("wall_s", wall_seconds));
      telemetry::remove_sink(sink_.get());
    }
    if (dump_metrics_) std::cout << telemetry::render_prometheus(telemetry::registry().snapshot());
    json_summary(name_, runtime::threads(), params_, wall_seconds);
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

 private:
  std::string name_;
  std::map<std::string, std::string> params_;
  util::Stopwatch watch_;
  std::shared_ptr<telemetry::JsonlSink> sink_;
  bool dump_metrics_ = false;
};

/// Step-schedule coefficient matched to the filter's output scale: filters
/// that *sum* ~n gradients (cge, sum) take a smaller coefficient than
/// filters that average.
inline double schedule_coefficient(const std::string& filter) {
  return (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
}

/// Standard trainer configuration used across the harnesses.
inline dgd::TrainerConfig make_config(std::size_t n, std::size_t f, const std::string& filter,
                                      std::size_t iterations, std::size_t d,
                                      std::uint64_t seed = 1) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(schedule_coefficient(filter));
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  cfg.iterations = iterations;
  cfg.seed = seed;
  cfg.trace_stride = 0;
  // Sweeps run many configurations; keeping every iterate would cost
  // O(T * d) per run for data nothing reads.
  cfg.trace_estimates = false;
  return cfg;
}

/// The paper-shaped experiment instance (Section 5): n = 6 agents, f = 1,
/// d = 2, x* = (1, 1), unit-norm observation rows, Gaussian observation
/// noise.  Agent 0 is the Byzantine agent in all executions.
struct PaperExperiment {
  data::RegressionInstance instance;
  linalg::Vector x_h;        ///< honest aggregate minimum (agents 1..5)
  double epsilon;            ///< measured (2f, eps)-redundancy constant
  data::RegressionConstants constants;  ///< mu, gamma over the honest agents

  explicit PaperExperiment(double noise_sigma = 0.03, std::uint64_t seed = 42)
      : instance([&] {
          rng::Rng rng(seed);
          return data::make_regression(data::paper_matrix(), linalg::Vector{1.0, 1.0},
                                       noise_sigma, 1, rng);
        }()),
        x_h(data::regression_argmin(instance, {1, 2, 3, 4, 5})),
        epsilon(redundancy::measure_redundancy(instance.problem.costs, 1).epsilon),
        constants(data::regression_constants(instance, {1, 2, 3, 4, 5})) {}

  /// The paper's published initial estimate.
  linalg::Vector x0() const { return linalg::Vector{-0.0085, -0.5643}; }
};

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "==============================================================\n"
            << id << " — " << what << "\n"
            << "==============================================================\n";
}

/// Opens bench_out/<name>.csv when requested (creates the directory).
inline std::unique_ptr<util::CsvWriter> maybe_csv(bool enabled, const std::string& name,
                                                  const std::vector<std::string>& header) {
  if (!enabled) return nullptr;
  std::filesystem::create_directories("bench_out");
  auto writer = std::make_unique<util::CsvWriter>("bench_out/" + name + ".csv", header);
  std::cout << "(writing bench_out/" << name << ".csv)\n";
  return writer;
}

}  // namespace redopt::bench
