// R-E1 — elastic session throughput and serving-path latency
// (google-benchmark).
//
// Two questions, one binary:
//
//   * rounds/sec under churn — the full elastic coordinator loop
//     (membership epochs, f re-derivation, filter rebuilds, freshest-
//     reply dedup, per-round snapshot publish) per profile, on the
//     in-process oracle and behind the inproc transport backend.  The
//     rounds_per_second counter is the R-E1 headline number.
//
//   * query p99 under churn — reader threads hammer the EstimateService
//     while a session trains and publishes; the exported p50/p99
//     latencies bound what a concurrent client pays for a consistent
//     snapshot mid-run.  (Latency samples are timing, not arithmetic —
//     expect noise; the perf gate holds only the ratio to baseline.)
//
// Membership counters ride along per entry (joins, leaves,
// absent_agent_rounds) so a schedule change that silently alters the
// workload shows up next to its timing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "chaos/scenario.h"
#include "elastic/membership.h"
#include "elastic/serving.h"
#include "elastic/session.h"
#include "perf_common.h"
#include "transport/session.h"

using namespace redopt;

namespace {

constexpr std::uint64_t kBenchSeed = 97;

chaos::Scenario profile_scenario(elastic::ChurnProfile profile, bool streaming) {
  return streaming ? elastic::make_streaming_churn_scenario(profile, kBenchSeed)
                   : elastic::make_churn_scenario(profile, kBenchSeed);
}

void export_membership(benchmark::State& state, const elastic::ElasticSession& session,
                       double rounds) {
  state.counters["rounds_per_second"] =
      benchmark::Counter(rounds, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["joins"] = static_cast<double>(session.joins);
  state.counters["leaves"] = static_cast<double>(session.leaves);
  state.counters["absent_agent_rounds"] = static_cast<double>(session.absent_agent_rounds);
}

void run_oracle(benchmark::State& state, elastic::ChurnProfile profile, bool streaming) {
  const chaos::Scenario scenario = profile_scenario(profile, streaming);
  elastic::ElasticSession session;
  for (auto _ : state) {
    session = elastic::run_elastic(scenario);
    benchmark::DoNotOptimize(session.result.final_distance);
  }
  export_membership(state, session, static_cast<double>(scenario.rounds));
}

void oracle_join_heavy(benchmark::State& state) {
  run_oracle(state, elastic::ChurnProfile::kJoinHeavy, false);
}
void oracle_leave_heavy(benchmark::State& state) {
  run_oracle(state, elastic::ChurnProfile::kLeaveHeavy, false);
}
void oracle_streaming(benchmark::State& state) {
  run_oracle(state, elastic::ChurnProfile::kJoinHeavy, true);
}

void inproc_join_heavy(benchmark::State& state) {
  const chaos::Scenario scenario = profile_scenario(elastic::ChurnProfile::kJoinHeavy, false);
  transport::SessionOptions options;  // inproc star
  elastic::ElasticSession session;
  for (auto _ : state) {
    session = elastic::run_elastic_transport(scenario, options);
    benchmark::DoNotOptimize(session.result.final_distance);
  }
  export_membership(state, session, static_cast<double>(scenario.rounds));
}

/// Serving-path latency: readers time query() while the session trains
/// and publishes.  Reported per entry: p50/p99 over all reader samples.
void serving_query_latency(benchmark::State& state) {
  const auto readers = static_cast<std::size_t>(state.range(0));
  const chaos::Scenario scenario = profile_scenario(elastic::ChurnProfile::kLeaveHeavy, false);

  std::vector<double> samples;
  std::uint64_t queries = 0;
  for (auto _ : state) {
    elastic::EstimateService service;
    elastic::ElasticOptions options;
    options.service = &service;

    std::atomic<bool> done{false};
    std::vector<std::vector<double>> lanes(readers);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < readers; ++r) {
      threads.emplace_back([&done, &service, &lane = lanes[r]] {
        do {
          const auto begin = std::chrono::steady_clock::now();
          const elastic::EstimateService::Snapshot snap = service.query();
          const auto end = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(snap.version);
          lane.push_back(std::chrono::duration<double, std::nano>(end - begin).count());
        } while (!done.load(std::memory_order_acquire));
      });
    }

    const elastic::ElasticSession session = elastic::run_elastic(scenario, options);
    done.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    benchmark::DoNotOptimize(session.result.final_distance);

    for (std::vector<double>& lane : lanes) {
      samples.insert(samples.end(), lane.begin(), lane.end());
    }
    queries = service.queries_served();
  }

  std::sort(samples.begin(), samples.end());
  auto percentile = [&samples](double p) {
    if (samples.empty()) return 0.0;
    const auto at = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
    return samples[at];
  };
  state.counters["query_p50_ns"] = percentile(0.50);
  state.counters["query_p99_ns"] = percentile(0.99);
  state.counters["queries_served"] = static_cast<double>(queries);
}

BENCHMARK(oracle_join_heavy)->Name("elastic/oracle/join_heavy");
BENCHMARK(oracle_leave_heavy)->Name("elastic/oracle/leave_heavy");
BENCHMARK(oracle_streaming)->Name("elastic/oracle/streaming");
BENCHMARK(inproc_join_heavy)->Name("elastic/inproc/join_heavy");
BENCHMARK(serving_query_latency)->Name("elastic/serving/query")->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return redopt::bench::run_perf_bench(argc, argv); }
