// R-A2 — dimension sweep for the CWTM condition.
//
// Theorem 5 guarantees CWTM only when the gradient-dissimilarity bound
// lambda < gamma / (mu sqrt(d)) holds: the guarantee window shrinks with
// the problem dimension.  This bench sweeps d on orthonormal-block
// regression (where gamma / mu = 1, so the threshold is 1/sqrt(d)),
// reports the threshold, and measures the achieved errors of CWTM and CGE
// (whose guarantee is dimension-free) under gradient-reverse faults.
#include "common.h"

#include <cmath>

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "f", "iterations", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A2");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const double noise = cli.get_double("noise", 0.05);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 21));

  bench::banner("R-A2", "CWTM versus dimension (lambda threshold 1/sqrt(d))");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "dimension_sweep",
                              {"d", "lambda_threshold", "cwtm_dist", "cge_dist"});

  util::TablePrinter table({"d", "lambda threshold", "CWTM dist", "CGE dist"});
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);

  for (std::size_t d : {1u, 2u, 5u, 10u, 20u, 50u}) {
    rng::Rng rng(seed);
    Vector x_star(d, 1.0);
    const auto inst = data::make_orthonormal_regression(n, d, f, noise, x_star, rng);
    const auto honest = dgd::honest_ids(n, byzantine);
    const Vector x_h = data::block_regression_argmin(inst, honest);
    const auto attack = attacks::make_attack("gradient_reverse");

    const auto cwtm =
        dgd::train(inst.problem, byzantine, attack.get(),
                   bench::make_config(n, f, "cwtm", iterations, d, seed), x_h);
    const auto cge = dgd::train(inst.problem, byzantine, attack.get(),
                                bench::make_config(n, f, "cge", iterations, d, seed), x_h);
    const double threshold = 1.0 / std::sqrt(static_cast<double>(d));
    table.add_row({std::to_string(d), util::TablePrinter::num(threshold, 3),
                   util::TablePrinter::num(cwtm.final_distance, 4),
                   util::TablePrinter::num(cge.final_distance, 4)});
    if (csv) {
      csv->write_row(std::vector<double>{static_cast<double>(d), threshold,
                                         cwtm.final_distance, cge.final_distance});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: CGE's error is flat in d; CWTM's guarantee window\n"
               "(lambda < 1/sqrt(d)) narrows, and its error degrades relative to CGE\n"
               "as the dimension grows.\n";
  return 0;
}
