// R-T4 — the exhaustive exact algorithm (Theorem 2's construction).
//
// Runs the full-information subset-ranking algorithm on (a) an exactly
// 2f-redundant regression instance (exact recovery expected despite an
// adversarial cost) and (b) noisy instances (output within 2*eps of x_H).
// Reports the chosen subset, the score r_S, and the error, for every
// placement of the Byzantine agent.
#include "common.h"

#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Vector;

namespace {

std::string subset_string(const std::vector<std::size_t>& s) {
  std::string out = "{";
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(s[i]);
  }
  return out + "}";
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"seed", "csv"}));
  const bench::Harness harness(cli, "R-T4");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));

  bench::banner("R-T4", "exhaustive exact algorithm: recovery and 2*eps bound");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "exact_algorithm",
                              {"noise", "byzantine", "dist", "two_eps", "within"});

  for (double noise : {0.0, 0.05}) {
    const bench::PaperExperiment exp(noise, seed);
    std::cout << "\nnoise sigma = " << noise << "   eps = " << exp.epsilon << "\n";
    util::TablePrinter table({"byzantine agent", "chosen set S", "r_S", "dist(x_H, out)",
                              "<= 2 eps?"});
    // The Byzantine agent submits a cost pulling far away.
    const auto bad = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{25.0, -25.0}));
    for (std::size_t byz = 0; byz < 6; ++byz) {
      auto received = exp.instance.problem.costs;
      received[byz] = bad;
      const auto result = core::run_exact_algorithm(received, 1);
      const auto honest = util::complement(6, {byz});
      const Vector x_h = data::regression_argmin(exp.instance, honest);
      const double dist = linalg::distance(result.output, x_h);
      const bool within = dist <= 2.0 * exp.epsilon + 1e-9;
      table.add_row({std::to_string(byz), subset_string(result.chosen_set),
                     util::TablePrinter::num(result.chosen_score, 4),
                     util::TablePrinter::num(dist, 4), within ? "yes" : "no"});
      if (csv) {
        csv->write_row(std::vector<double>{noise, static_cast<double>(byz), dist,
                                           2.0 * exp.epsilon, within ? 1.0 : 0.0});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nShape check: with exact redundancy (noise 0) the output is x_H\n"
               "itself; with noise it stays within 2*eps (Theorem 2), and the\n"
               "chosen subset excludes the Byzantine agent.\n";
  return 0;
}
