// R-P6 — transport message complexity (google-benchmark).
//
// Cost of one full scenario session per backend x reduction topology,
// with the deterministic traffic counters (frames delivered, bytes on
// wire, gather depth) exported per entry.  The topologies trade
// coordinator fan-in against relay bytes: star ships every gradient one
// hop at fan-in n, the chain pays O(n) hops per frame at fan-in 1, the
// binary tree sits between — same delivered frame multiset on all three
// (relays forward verbatim; the Byzantine-robust filters need every
// individual gradient), so bytes_per_round isolates pure relay overhead.
//
// The socket entry forks a coordinator + n agent processes per iteration,
// so its real_ns measures process orchestration, not arithmetic — that is
// the point: it bounds what multi-process deployment costs over the
// in-process backend for an identical (bit-identical, the transport tests
// enforce) execution.
#include <benchmark/benchmark.h>

#include "chaos/scenario.h"
#include "perf_common.h"
#include "transport/session.h"
#include "util/error.h"

using namespace redopt;

namespace {

chaos::Scenario bench_scenario(std::size_t n) {
  chaos::Scenario s;
  s.name = "bench-transport";
  s.seed = 97;
  s.problem = "mean";
  s.filter = "cge";
  s.n = n;
  s.f = 1;
  s.d = 4;
  s.rounds = 30;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 1;
  byz.attack = "gradient_reverse";
  s.faults = {byz};
  s.channel.duplicate_probability = 0.2;
  s.channel.max_delay = 2;
  return s;
}

void run_session(benchmark::State& state, transport::BackendKind backend,
                 transport::Topology topology) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const chaos::Scenario scenario = bench_scenario(n);
  transport::SessionOptions options;
  options.backend = backend;
  options.topology = topology;

  transport::TransportStats stats;
  for (auto _ : state) {
    const transport::ScenarioSession session =
        transport::run_scenario_transport(scenario, options);
    stats = session.transport;
    benchmark::DoNotOptimize(session.result.final_distance);
  }
  const double rounds = static_cast<double>(scenario.rounds);
  state.counters["frames_per_round"] = static_cast<double>(stats.frames_delivered) / rounds;
  state.counters["bytes_per_round"] = static_cast<double>(stats.bytes_on_wire) / rounds;
  state.counters["reduce_depth"] = static_cast<double>(stats.reduce_rounds) / rounds;
}

void inproc_star(benchmark::State& state) {
  run_session(state, transport::BackendKind::kInproc, transport::Topology::kStar);
}
void inproc_chain(benchmark::State& state) {
  run_session(state, transport::BackendKind::kInproc, transport::Topology::kChain);
}
void inproc_tree(benchmark::State& state) {
  run_session(state, transport::BackendKind::kInproc, transport::Topology::kTree);
}
void socket_star(benchmark::State& state) {
  run_session(state, transport::BackendKind::kSocket, transport::Topology::kStar);
}

BENCHMARK(inproc_star)->Name("transport/inproc/star")->Arg(8)->Arg(16);
BENCHMARK(inproc_chain)->Name("transport/inproc/chain")->Arg(8)->Arg(16);
BENCHMARK(inproc_tree)->Name("transport/inproc/tree")->Arg(8)->Arg(16);
BENCHMARK(socket_star)->Name("transport/socket/star")->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return redopt::bench::run_perf_bench(argc, argv); }
