// R-A3 — step-size schedule ablation.
//
// Theorem 3 asks for diminishing steps (sum eta_t = inf, sum eta_t^2 <
// inf).  This ablation shows the practical face of that requirement:
// diminishing schedules (harmonic, sqrt-decay) tolerate an aggressive
// coefficient — a few early unstable steps are clamped by the projection
// set W and the shrinking step then converges — while a *constant* step
// with the same coefficient sits above the 2/L stability threshold forever
// and never converges.  A hand-tuned small constant step converges too,
// but requires knowing L; the diminishing schedule does not.
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A3");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double noise = cli.get_double("noise", 0.1);

  bench::banner("R-A3", "step-size schedules: aggressive coefficients (DGD+CGE)");
  const bench::PaperExperiment exp(noise, seed);
  attacks::AttackParams params;
  params.sigma = 0.1;  // small random fault that survives norm elimination
  const auto attack = attacks::make_attack("random", params);
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "schedule_ablation",
                              {"schedule", "coefficient", "dist", "loss"});

  util::TablePrinter table({"schedule", "coefficient", "dist(x_H, x_out)", "final loss"});
  struct Case {
    std::string name;
    double coefficient;
  };
  for (const Case& c : {Case{"harmonic", 0.5}, Case{"sqrt", 0.5}, Case{"constant", 0.5},
                        Case{"constant", 0.05}}) {
    auto cfg = bench::make_config(6, 1, "cge", iterations, 2, seed);
    cfg.schedule = dgd::make_schedule(c.name, c.coefficient);
    cfg.x0 = exp.x0();
    const auto r = dgd::train(exp.instance.problem, {0}, attack.get(), cfg, exp.x_h);
    table.add_row({c.name, util::TablePrinter::num(c.coefficient, 3),
                   util::TablePrinter::num(r.final_distance, 4),
                   util::TablePrinter::num(r.final_loss, 5)});
    if (csv) {
      csv->write_row(std::vector<std::string>{c.name, std::to_string(c.coefficient),
                                              std::to_string(r.final_distance),
                                              std::to_string(r.final_loss)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: harmonic and sqrt converge at coefficient 0.5; the\n"
               "constant schedule at the same coefficient sits above the stability\n"
               "threshold and never converges (it needs hand-tuning, e.g. 0.05).\n";
  return 0;
}
