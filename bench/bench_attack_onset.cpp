// R-A10 — sleeper agents: mid-run attack onset.
//
// A Byzantine agent behaves honestly for the first T iterations and then
// switches to inner-product manipulation.  Detection-based defenses that
// classify agents once would be locked in by the honest prefix; the
// paper's per-iteration robust aggregation carries no such state, so the
// filtered run absorbs the onset with at most a transient.  The bench
// prints the distance trace around the onset for filtered and unfiltered
// runs.
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "onset", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A10");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 400));
  const auto onset = static_cast<std::size_t>(cli.get_int("onset", 150));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 13));
  const double noise = cli.get_double("noise", 0.03);

  bench::banner("R-A10", "sleeper agent: attack onset at iteration " + std::to_string(onset));
  rng::Rng rng(seed);
  const std::size_t n = 9, f = 2, d = 3;
  const auto inst = data::make_orthonormal_regression(n, d, f, noise, Vector(d, 1.0), rng);
  const std::vector<std::size_t> byzantine = {0, 1};
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);

  attacks::AttackParams params;
  params.switch_inner = "ipm";
  params.switch_at = onset;
  params.c = 4.0;
  const auto attack = attacks::make_attack("switch", params);

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "attack_onset",
                              {"series", "iteration", "distance"});

  std::vector<std::pair<std::string, dgd::Trace>> series;
  for (const std::string filter : {"mean", "cge", "cwtm"}) {
    auto cfg = bench::make_config(n, f, filter, iterations, d, seed);
    // Constant steps keep the adversary's leverage alive at the onset (a
    // diminishing schedule would mask the switch behind a ~1/T step).
    cfg.schedule = std::make_shared<dgd::ConstantSchedule>(
        (filter == "cge" || filter == "sum") ? 0.02 : 0.1);
    cfg.trace_stride = 1;
    auto result = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);
    series.emplace_back(filter == "mean" ? "no-filter" : filter, std::move(result.trace));
  }

  util::TablePrinter table({"iter", "no-filter dist", "cge dist", "cwtm dist"});
  for (std::size_t t = 0; t <= iterations; t += 25) {
    std::vector<std::string> row = {std::to_string(t) + (t == onset ? " <-onset" : "")};
    for (const auto& [label, trace] : series)
      row.push_back(util::TablePrinter::num(trace.distance[t], 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  if (csv) {
    for (const auto& [label, trace] : series) {
      for (std::size_t k = 0; k < trace.iteration.size(); ++k) {
        csv->write_row(std::vector<std::string>{label, std::to_string(trace.iteration[k]),
                                                std::to_string(trace.distance[k])});
      }
    }
  }

  std::cout << "\nShape check: all runs converge during the honest prefix; at the\n"
               "onset the unfiltered run is steered away and stays off; the robust\n"
               "filters absorb the switch with at most a transient — per-iteration\n"
               "aggregation needs no identity tracking to survive sleeper agents.\n";
  return 0;
}
