// Shared main() for the google-benchmark perf binaries (R-P1, R-P2).
//
// google-benchmark owns the command line, so the uniform --threads knob is
// stripped here (REDOPT_THREADS env as fallback) and applied to the
// runtime before benchmark::Initialize sees the remaining flags.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "util/cli.h"

namespace redopt::bench {

/// Runs the registered benchmarks after consuming --threads N /
/// --threads=N (flag wins over the REDOPT_THREADS environment variable).
inline int run_perf_bench(int argc, char** argv) {
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  std::vector<const char*> threads_flag;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i > 0 && arg == "--threads" && i + 1 < argc) {
      threads_flag = {"bench", argv[i], argv[i + 1]};
      ++i;
    } else if (i > 0 && arg.rfind("--threads=", 0) == 0) {
      threads_flag = {"bench", argv[i]};
    } else {
      rest.push_back(argv[i]);
    }
  }
  const util::Cli cli(static_cast<int>(threads_flag.size()), threads_flag.data(), {"threads"});
  const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
  if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace redopt::bench
