// Shared main() for the google-benchmark perf binaries (R-P1, R-P2, R-P5).
//
// google-benchmark owns the command line, so the uniform --threads knob is
// stripped here (REDOPT_THREADS env as fallback) and applied to the
// runtime before benchmark::Initialize sees the remaining flags.
//
// Besides the normal console table, every perf binary prints one
// machine-readable BENCH_JSON line per benchmark entry, e.g.
//
//   BENCH_JSON {"bench":"bench_filter_perf","name":"filter/cge/32/10",
//               "real_ns":123.4,"cpu_ns":120.1,"iterations":100000}
//
// These are the lines scripts/collect_bench.sh gathers into BENCH_*.json
// files and tools/perf-report compares across runs (see
// docs/PERFORMANCE.md for the record/compare workflow).
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "util/cli.h"
#include "util/json.h"

namespace redopt::bench {

/// Console reporter that also captures one summary record per benchmark
/// entry; the records are printed as BENCH_JSON lines after the run so
/// they never interleave with the console table.
class BenchJsonReporter final : public benchmark::ConsoleReporter {
 public:
  explicit BenchJsonReporter(std::string bench_name) : bench_name_(std::move(bench_name)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations == 0) continue;
      const double iters = static_cast<double>(run.iterations);
      std::string line = "{\"bench\":\"" + util::json_escape(bench_name_) + "\",\"name\":\"" +
                         util::json_escape(run.benchmark_name()) + "\",\"real_ns\":" +
                         util::json_number(run.real_accumulated_time / iters * 1e9) +
                         ",\"cpu_ns\":" + util::json_number(run.cpu_accumulated_time / iters * 1e9) +
                         ",\"iterations\":" + std::to_string(run.iterations);
      for (const auto& [key, counter] : run.counters) {
        line += ",\"counter." + util::json_escape(key) + "\":" + util::json_number(counter.value);
      }
      line += "}";
      lines_.push_back(std::move(line));
    }
  }

  /// Emits the collected BENCH_JSON lines (call after the run completes).
  /// The leading newline terminates any console-reporter colour-reset
  /// escape still pending on the current line, so every BENCH_JSON record
  /// starts at column 0 (collect_bench.sh anchors on ^BENCH_JSON).
  void print_bench_json(std::ostream& os) const {
    os << "\n";
    for (const auto& line : lines_) os << "BENCH_JSON " << line << "\n";
  }

 private:
  std::string bench_name_;
  std::vector<std::string> lines_;
};

/// Basename of argv[0] — the canonical bench name in BENCH_JSON records.
inline std::string bench_binary_name(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name;
}

/// Runs the registered benchmarks after consuming --threads N /
/// --threads=N (flag wins over the REDOPT_THREADS environment variable).
inline int run_perf_bench(int argc, char** argv) {
  std::vector<char*> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  std::vector<const char*> threads_flag;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i > 0 && arg == "--threads" && i + 1 < argc) {
      threads_flag = {"bench", argv[i], argv[i + 1]};
      ++i;
    } else if (i > 0 && arg.rfind("--threads=", 0) == 0) {
      threads_flag = {"bench", argv[i]};
    } else {
      rest.push_back(argv[i]);
    }
  }
  const util::Cli cli(static_cast<int>(threads_flag.size()), threads_flag.data(), {"threads"});
  const std::int64_t threads = cli.get_int_env("threads", "REDOPT_THREADS", 0);
  if (threads > 0) runtime::set_threads(static_cast<std::size_t>(threads));

  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  BenchJsonReporter reporter(bench_binary_name(argc > 0 ? argv[0] : nullptr));
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  reporter.print_bench_json(std::cout);
  return 0;
}

}  // namespace redopt::bench
