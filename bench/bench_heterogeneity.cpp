// R-A7 — data heterogeneity versus fault-tolerance (the paper's
// distributed-learning discussion, quantified).
//
// The paper: "our results characterize the relationship between the
// correlation amongst different agents' data (i.e., degree of redundancy)
// and the fault-tolerance achieved."  This bench sweeps the per-agent
// distribution-shift parameter of the synthetic classification task and
// reports, per level: a gradient-dissimilarity proxy for the redundancy
// gap, and the test accuracy of fault-free / unfiltered / CGE / CWTM runs
// under little-is-enough (LIE) faults.
#include "common.h"

#include "data/classification.h"

using namespace redopt;
using linalg::Vector;

namespace {

/// Mean pairwise distance of honest agents' gradients at a reference
/// point (the fault-free optimum) — a cheap proxy for the redundancy gap
/// of the learning instance: at the honest optimum the gradients of
/// identically-distributed agents nearly cancel, while heterogeneous
/// agents pull in different directions.
double gradient_dissimilarity(const core::MultiAgentProblem& problem,
                              const std::vector<std::size_t>& honest, const Vector& at) {
  std::vector<Vector> gs;
  gs.reserve(honest.size());
  for (std::size_t id : honest) gs.push_back(problem.costs[id]->gradient(at));
  double acc = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < gs.size(); ++i) {
    for (std::size_t j = i + 1; j < gs.size(); ++j) {
      acc += linalg::distance(gs[i], gs[j]);
      ++pairs;
    }
  }
  return acc / static_cast<double>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-A7");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 1500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 9));

  bench::banner("R-A7", "data heterogeneity (redundancy) versus achieved accuracy");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "heterogeneity",
                              {"heterogeneity", "dissimilarity", "fault_free", "no_filter",
                               "cge", "cwtm"});

  util::TablePrinter table({"heterogeneity", "grad dissimilarity", "fault-free acc",
                            "no-filter acc", "CGE acc", "CWTM acc"});
  const std::vector<std::size_t> byzantine = {0, 1};
  attacks::AttackParams attack_params;
  attack_params.z = 1.5;
  const auto attack = attacks::make_attack("lie", attack_params);

  for (double h : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    data::ClassificationConfig cfg_data;
    cfg_data.n = 10;
    cfg_data.f = 2;
    cfg_data.d = 8;
    cfg_data.samples_per_agent = 40;
    cfg_data.separation = 1.5;
    cfg_data.heterogeneity = h;
    rng::Rng rng(seed);
    const auto inst = data::make_classification(cfg_data, rng);
    const auto honest = dgd::honest_ids(10, byzantine);

    double fault_free_acc = 0.0;
    Vector fault_free_estimate(8);
    {
      core::MultiAgentProblem clean;
      clean.f = 0;
      for (std::size_t id : honest) clean.costs.push_back(inst.problem.costs[id]);
      auto cfg = bench::make_config(8, 0, "mean", iterations, 8, seed);
      fault_free_estimate = dgd::train(clean, {}, nullptr, cfg).estimate;
      fault_free_acc = data::test_accuracy(inst, fault_free_estimate);
    }
    const double dissimilarity =
        gradient_dissimilarity(inst.problem, honest, fault_free_estimate);
    double accs[3];
    int k = 0;
    for (const std::string filter : {"mean", "cge", "cwtm"}) {
      auto cfg = bench::make_config(10, 2, filter, iterations, 8, seed);
      const auto r = dgd::train(inst.problem, byzantine, attack.get(), cfg);
      accs[k++] = data::test_accuracy(inst, r.estimate);
    }
    table.add_row({util::TablePrinter::num(h, 3), util::TablePrinter::num(dissimilarity, 4),
                   util::TablePrinter::num(fault_free_acc, 4),
                   util::TablePrinter::num(accs[0], 4), util::TablePrinter::num(accs[1], 4),
                   util::TablePrinter::num(accs[2], 4)});
    if (csv) {
      csv->write_row(
          std::vector<double>{h, dissimilarity, fault_free_acc, accs[0], accs[1], accs[2]});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: gradient dissimilarity grows with heterogeneity; the\n"
               "filtered runs track the fault-free accuracy, with the gap widening\n"
               "as the agents' data decorrelate (redundancy weakens).\n";
  return 0;
}
