// R-P2 — cost growth of the exhaustive exact algorithm (google-benchmark).
//
// The constructive algorithm of Theorem 2 enumerates all C(n, f) subsets
// of size n - f and, inside each, all C(n - f, f) subsets of size n - 2f:
// the run time explodes combinatorially in n and f.  This bench measures
// it directly — the quantitative version of the paper's remark that the
// construction "is not a very practical algorithm".
#include <benchmark/benchmark.h>

#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "perf_common.h"
#include "rng/rng.h"

using namespace redopt;
using linalg::Vector;

namespace {

std::vector<core::CostPtr> make_costs(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<core::CostPtr> costs;
  costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector center(rng.gaussian_vector(d));
    center *= 0.01;  // nearly redundant instance
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  return costs;
}

void exact_algorithm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  const auto costs = make_costs(n, 2, 7);
  std::size_t subsets = 0;
  for (auto _ : state) {
    const auto result = core::run_exact_algorithm(costs, f);
    subsets = result.subsets_evaluated;
    benchmark::DoNotOptimize(result.output);
  }
  state.counters["subsets"] = static_cast<double>(subsets);
}

BENCHMARK(exact_algorithm)
    ->Args({5, 1})
    ->Args({7, 1})
    ->Args({9, 1})
    ->Args({11, 1})
    ->Args({7, 2})
    ->Args({9, 2})
    ->Args({11, 2})
    ->Args({9, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return bench::run_perf_bench(argc, argv); }
