// R-A9 — robust mean estimation as fault-tolerant optimization
// (the paper's robust-statistics connection, Section 2.3 shape).
//
// Honest agents hold Q_i(x) = ||x - x_i||^2 for samples x_i ~ N(mu, s^2 I);
// the honest aggregate minimizes at the honest sample mean.  The bench
// sweeps the contamination fraction f/n and reports the estimation error
// of the distributed estimators (DGD with mean / CGE / CWTM / geomed
// aggregation, large-norm adversarial samples) against two references:
// the honest sample mean (what fault-tolerance can recover) and the true
// distribution mean (statistical error floor).  Shape: robust aggregation
// tracks the honest mean up to f/n -> 1/2-ish; plain averaging is hijacked
// by a single contaminated sample.
#include "common.h"

#include "data/mean_estimation.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "d", "sigma", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-A9");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 15));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 4));
  const double sigma = cli.get_double("sigma", 0.5);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 2500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 12));

  bench::banner("R-A9", "robust mean estimation: error versus contamination f/n");
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "robust_mean",
                              {"f", "statistical_floor", "mean", "cge", "cwtm", "geomed"});

  Vector mu(d);
  for (std::size_t k = 0; k < d; ++k) mu[k] = static_cast<double>(k) - 1.0;

  util::TablePrinter table({"f", "f/n", "stat floor", "mean", "CGE", "CWTM", "geomed"});
  const auto attack = attacks::make_attack("large_norm");

  for (std::size_t f : {0u, 1u, 3u, 5u, 7u}) {
    if (2 * f >= n) break;
    rng::Rng rng(seed);  // same samples for every f
    const auto inst = data::make_mean_estimation(mu, sigma, n, f, rng);
    std::vector<std::size_t> byzantine;
    for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
    const auto honest = dgd::honest_ids(n, byzantine);
    const Vector honest_mean = data::honest_sample_mean(inst, honest);
    const double statistical_floor = linalg::distance(honest_mean, mu);

    std::vector<std::string> row = {std::to_string(f),
                                    util::TablePrinter::num(static_cast<double>(f) / n, 2),
                                    util::TablePrinter::num(statistical_floor, 3)};
    std::vector<double> csv_row = {static_cast<double>(f), statistical_floor};
    for (const std::string filter : {"mean", "cge", "cwtm", "geomed"}) {
      filters::FilterParams fp;
      fp.n = n;
      fp.f = f;
      dgd::TrainerConfig cfg;
      cfg.filter = filters::make_filter(filter, fp);
      const double coeff = (filter == "cge" || filter == "sum") ? 0.1 : 1.0;
      cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
      cfg.projection =
          std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 20.0));
      cfg.iterations = iterations;
      cfg.seed = seed;
      cfg.trace_stride = 0;
      const auto result =
          dgd::train(inst.problem, byzantine, attack.get(), cfg, honest_mean);
      row.push_back(util::TablePrinter::num(result.final_distance, 3));
      csv_row.push_back(result.final_distance);
    }
    table.add_row(std::move(row));
    if (csv) csv->write_row(csv_row);
  }
  table.print(std::cout);
  std::cout << "\nShape check: robust aggregation recovers the honest sample mean\n"
               "(error << statistical floor) at every contamination level f < n/2;\n"
               "plain averaging is hijacked by the very first adversarial sample.\n"
               "The agents never shared their raw samples — only gradients.\n";
  return 0;
}
