// R-CH1 — chaos scenario sweep: generated fault-injection scenarios
// (Byzantine attacks, crash/recover, stragglers, lossy links) run through
// the chaos executor, reporting property-check outcomes per regime.
//
// The telemetry manifest (--telemetry run.jsonl) records one event per
// scenario with only deterministic fields, so
// scripts/check_determinism.sh bench_chaos gates the whole chaos pipeline
// (generator, executor, filters, runtime) on thread-count independence.
#include "common.h"

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"

using namespace redopt;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv,
                      bench::with_runtime_flags({"iterations", "seed", "csv", "stride"}));
  const bench::Harness harness(cli, "R-CH1");
  const auto count = static_cast<std::size_t>(cli.get_int("iterations", 120));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto print_stride = static_cast<std::size_t>(cli.get_int("stride", 20));

  bench::banner("R-CH1", "chaos scenario sweep, " + std::to_string(count) + " scenarios");

  auto csv = bench::maybe_csv(
      cli.get_bool("csv", false), "chaos",
      {"scenario", "regime", "ok", "initial_distance", "final_distance", "byzantine_replies",
       "crashed_absences", "stale_replies", "dropped_replies"});

  chaos::Generator generator(chaos::GeneratorSpec{}, seed);
  std::size_t guaranteed = 0, guaranteed_ok = 0;
  std::size_t degraded = 0, degraded_ok = 0;
  double worst_guaranteed = 0.0;

  for (std::size_t k = 0; k < count; ++k) {
    const chaos::Scenario scenario = generator.next();
    const chaos::ScenarioResult result = chaos::run_scenario(scenario);
    const chaos::PropertyReport report = chaos::check_properties(scenario, result);
    const bool is_guaranteed = scenario.guaranteed();

    if (is_guaranteed) {
      ++guaranteed;
      if (report.ok) ++guaranteed_ok;
      worst_guaranteed = std::max(worst_guaranteed, result.final_distance);
    } else {
      ++degraded;
      if (report.ok) ++degraded_ok;
    }

    telemetry::emit(telemetry::Event("chaos.scenario")
                        .with("name", scenario.name)
                        .with("guaranteed", is_guaranteed)
                        .with("ok", report.ok)
                        .with("initial_distance", result.initial_distance)
                        .with("final_distance", result.final_distance)
                        .with("byzantine_replies", result.byzantine_replies)
                        .with("crashed_absences", result.crashed_absences)
                        .with("stale_replies", result.stale_replies)
                        .with("dropped_replies", result.dropped_replies)
                        .with("duplicated_replies", result.duplicated_replies));

    if (csv) {
      csv->write_row(std::vector<std::string>{
          scenario.name, is_guaranteed ? "guaranteed" : "degraded", report.ok ? "1" : "0",
          util::json_number(result.initial_distance), util::json_number(result.final_distance),
          std::to_string(result.byzantine_replies), std::to_string(result.crashed_absences),
          std::to_string(result.stale_replies), std::to_string(result.dropped_replies)});
    }
    if (print_stride > 0 && k % print_stride == 0) {
      std::cout << scenario.name << (is_guaranteed ? "  [guaranteed]" : "  [degraded]")
                << "  " << result.initial_distance << " -> " << result.final_distance
                << (report.ok ? "" : "  VIOLATION: " + report.summary()) << "\n";
    }
  }

  std::cout << "\nguaranteed regime: " << guaranteed_ok << "/" << guaranteed
            << " ok (worst final distance " << worst_guaranteed << ")\n"
            << "degraded regime:   " << degraded_ok << "/" << degraded << " ok\n";
  return (guaranteed_ok == guaranteed && degraded_ok == degraded) ? 0 : 1;
}
