// R-P5 — dense-kernel throughput (google-benchmark).
//
// Microbenchmarks for the src/linalg kernels every hot path funnels
// through: the reductions (dot, norm_squared, distance_squared), the
// element-wise updates (axpy), the matrix products (matvec,
// matvec_transposed, gemm_add), and the batched least-squares gradient
// path built on them.  Dimensions d in {2, 64, 1024} cover the paper's
// small exact-algorithm problems, the DGD experiment family, and the
// vectorization-bound regime.  Compare a default build against
// -DREDOPT_FAST_KERNELS=ON to see what the reordered reductions buy
// (docs/PERFORMANCE.md, "Determinism vs. speed").
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/batch_gradient.h"
#include "core/least_squares_cost.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "perf_common.h"
#include "rng/rng.h"

using namespace redopt;
using linalg::Vector;

namespace {

std::vector<double> make_values(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  return rng.gaussian_vector(n);
}

void bm_dot(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto a = make_values(d, 1);
  const auto b = make_values(d, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::dot(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}

void bm_norm_squared(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto a = make_values(d, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::norm_squared(a.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}

void bm_distance_squared(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto a = make_values(d, 4);
  const auto b = make_values(d, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::kernels::distance_squared(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}

void bm_axpy(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  auto y = make_values(d, 6);
  const auto x = make_values(d, 7);
  for (auto _ : state) {
    linalg::kernels::axpy(y.data(), 1e-9, x.data(), d);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d));
}

// rows x d row-major times d-vector; rows fixed at 64 so d carries the
// sweep like everywhere else.
void bm_matvec(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = 64;
  const auto a = make_values(rows * d, 8);
  const auto x = make_values(d, 9);
  std::vector<double> out(rows);
  for (auto _ : state) {
    linalg::kernels::matvec(a.data(), rows, d, x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * d));
}

void bm_matvec_transposed(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = 64;
  const auto a = make_values(rows * d, 10);
  const auto x = make_values(rows, 11);
  std::vector<double> out(d);
  for (auto _ : state) {
    linalg::kernels::matvec_transposed(a.data(), rows, d, x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rows * d));
}

// d x d times d x d — the gram-style product the argmin paths pay.
void bm_gemm(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const auto a = make_values(d * d, 12);
  const auto b = make_values(d * d, 13);
  std::vector<double> c(d * d);
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0);
    linalg::kernels::gemm_add(a.data(), b.data(), c.data(), d, d, d);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * d * d));
}

// All-agents gradient evaluation through the batched least-squares path —
// the trainers' per-round fan-out workload (n = 32 agents, 8 rows each).
void bm_batch_gradient(benchmark::State& state) {
  const auto d = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 32;
  const std::size_t rows = 8;
  rng::Rng rng(14);
  std::vector<core::CostPtr> costs;
  costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Matrix a(rows, d);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = rng.gaussian_vector(d);
      for (std::size_t c = 0; c < d; ++c) a(r, c) = row[c];
    }
    const Vector b(rng.gaussian_vector(rows));
    costs.push_back(std::make_shared<core::LeastSquaresCost>(a, b));
  }
  auto evaluator = core::BatchGradientEvaluator::try_create(costs);
  const Vector x(make_values(d, 15));
  std::vector<Vector> out;
  for (auto _ : state) {
    evaluator->evaluate_all(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * rows * d));
}

void register_all() {
  struct Named {
    const char* name;
    void (*fn)(benchmark::State&);
  };
  for (const Named& b : {Named{"kernel/dot", bm_dot},
                         Named{"kernel/norm_squared", bm_norm_squared},
                         Named{"kernel/distance_squared", bm_distance_squared},
                         Named{"kernel/axpy", bm_axpy},
                         Named{"kernel/matvec", bm_matvec},
                         Named{"kernel/matvec_transposed", bm_matvec_transposed},
                         Named{"kernel/gemm", bm_gemm},
                         Named{"kernel/batch_gradient", bm_batch_gradient}}) {
    benchmark::RegisterBenchmark(b.name, b.fn)->Arg(2)->Arg(64)->Arg(1024);
  }
}

const bool registered = (register_all(), true);

}  // namespace

int main(int argc, char** argv) { return bench::run_perf_bench(argc, argv); }
