// R-A5 — stochastic gradients: batch size and momentum (extension, after
// the authors' companion CGE-SGD work, reference [21] of the follow-up).
//
// Data-holding agents reply with mini-batch gradients; the bench sweeps
// the batch size (sampling-noise level) and server-side momentum for
// DGD+CGE under the LIE attack — the attack that hides inside the honest
// spread, where sampling noise helps the adversary most.  Shape: error
// shrinks as batches grow (the (2f, eps)-redundancy of the *sampled*
// costs tightens), and momentum recovers part of the small-batch loss.
#include "common.h"

#include "sgd/empirical_cost.h"
#include "sgd/sgd_trainer.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;

namespace {

core::MultiAgentProblem make_problem(std::size_t n, std::size_t f, std::size_t d,
                                     std::size_t samples, const Vector& w_star, double noise,
                                     rng::Rng& rng) {
  core::MultiAgentProblem problem;
  problem.f = f;
  for (std::size_t i = 0; i < n; ++i) {
    Matrix x(samples, d);
    Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      double pred = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        x(j, k) = rng.gaussian();
        pred += x(j, k) * w_star[k];
      }
      y[j] = pred + rng.gaussian(0.0, noise);
    }
    problem.costs.push_back(std::make_shared<sgd::EmpiricalCost>(
        std::move(x), std::move(y), sgd::Loss::kSquare, 0.0));
  }
  problem.validate();
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "f", "d", "samples", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-A5");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 10));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 4));
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 40));
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 6));

  bench::banner("R-A5", "Byzantine SGD: batch size and momentum (CGE, LIE attack)");
  rng::Rng rng(seed);
  Vector w_star(d);
  for (std::size_t k = 0; k < d; ++k) w_star[k] = k % 2 == 0 ? 1.0 : -1.0;
  const auto problem = make_problem(n, f, d, samples, w_star, 0.05, rng);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto attack = attacks::make_attack("lie");

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "sgd",
                              {"batch", "momentum", "dist", "loss"});
  util::TablePrinter table({"batch size", "momentum", "dist(w*, w_out)", "honest loss"});

  for (std::size_t batch : {1u, 4u, 16u, 40u}) {
    for (double momentum : {0.0, 0.9}) {
      sgd::SgdConfig cfg;
      filters::FilterParams fp;
      fp.n = n;
      fp.f = f;
      cfg.base.filter = filters::make_filter("cge", fp);
      cfg.base.schedule = std::make_shared<dgd::HarmonicSchedule>(momentum > 0.0 ? 0.02 : 0.1);
      cfg.base.projection =
          std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
      cfg.base.iterations = iterations;
      cfg.base.seed = seed;
      cfg.base.trace_stride = 0;
      cfg.batch_size = batch;
      cfg.momentum = momentum;
      const auto r = sgd::train_sgd(problem, byzantine, attack.get(), cfg, w_star);
      table.add_row({std::to_string(batch), util::TablePrinter::num(momentum, 2),
                     util::TablePrinter::num(r.final_distance, 4),
                     util::TablePrinter::num(r.final_loss, 5)});
      if (csv) {
        csv->write_row(std::vector<double>{static_cast<double>(batch), momentum,
                                           r.final_distance, r.final_loss});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: error shrinks with the batch size (sampling noise is\n"
               "adversary-exploitable scatter); momentum narrows the small-batch gap.\n";
  return 0;
}
