// R-A6 — redundancy by design: replication-factor sweep.
//
// m shards assigned cyclically to n agents with replication factor r; the
// bench reports, per r: whether the (n - 2f)-coverage property holds
// (guaranteed for r >= 2f + 1), the measured (2f, eps)-redundancy under
// observation noise, and the final error of DGD+CGE under
// gradient-reverse faults.  Shape: eps and the achieved error shrink
// monotonically as r grows — the storage/accuracy dial the paper's
// "redundancy can be realized by design" remark implies.
#include "common.h"

#include "data/design.h"
#include "data/replicated_regression.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"m", "n", "d", "f", "noise", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-A6");
  const auto m = static_cast<std::size_t>(cli.get_int("m", 9));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 9));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 2));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const double noise = cli.get_double("noise", 0.05);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));

  bench::banner("R-A6", "redundancy by design: replication factor r sweep (n=" +
                            std::to_string(n) + ", f=" + std::to_string(f) + ")");
  std::cout << "coverage threshold: r >= 2f + 1 = " << 2 * f + 1 << "\n\n";
  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "replication",
                              {"r", "covered", "epsilon", "cge_dist"});

  util::TablePrinter table({"r", "storage/agent", "covers (n-2f)-subsets", "eps(2f)",
                            "CGE dist"});
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto attack = attacks::make_attack("gradient_reverse");

  for (std::size_t r = 1; r <= n; r += (r < 2 * f + 1 ? 2 : (n - r > 2 ? 2 : 1))) {
    rng::Rng rng(seed);  // same shards/noise for every r
    const auto inst =
        data::make_replicated_regression(m, d, n, f, r, noise, Vector(d, 1.0), rng);
    const bool covered = data::covers_all_shards(inst.design, f);
    const double eps = redundancy::measure_redundancy(inst.problem.costs, f).epsilon;

    const auto honest = dgd::honest_ids(n, byzantine);
    const Vector x_h = data::replicated_regression_argmin(inst, honest);
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    dgd::TrainerConfig cfg;
    cfg.filter = filters::make_filter("cge", fp);
    cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.2);
    cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
    cfg.iterations = iterations;
    cfg.seed = seed;
    cfg.trace_stride = 0;
    const auto result = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);

    table.add_row({std::to_string(r),
                   util::TablePrinter::num(static_cast<double>(m) * r / n, 3),
                   covered ? "yes" : "no", util::TablePrinter::num(eps, 4),
                   util::TablePrinter::num(result.final_distance, 4)});
    if (csv) {
      csv->write_row(std::vector<double>{static_cast<double>(r), covered ? 1.0 : 0.0, eps,
                                         result.final_distance});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: eps (and the achieved error) shrink as the replication\n"
               "factor grows; coverage flips to 'yes' exactly at r = 2f + 1; full\n"
               "replication reaches exact redundancy even under noise.\n";
  return 0;
}
