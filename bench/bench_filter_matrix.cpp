// R-A1 — filter x attack ablation matrix.
//
// Orthonormal-block regression (n = 12, f = 2, d = 5): final error
// dist(x_H, x_out) for every applicable registered gradient-filter against
// every registered attack.  The paper evaluates CGE and CWTM; this matrix
// positions them against the classical baselines (Krum, geometric median,
// Bulyan, coordinate-wise median, norm clipping, plain mean).
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"n", "d", "f", "iterations", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A1");
  const auto n = static_cast<std::size_t>(cli.get_int("n", 12));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 5));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const double noise = cli.get_double("noise", 0.02);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 1500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 17));

  bench::banner("R-A1", "final error for every filter x attack (n=" + std::to_string(n) +
                            ", f=" + std::to_string(f) + ", d=" + std::to_string(d) + ")");

  rng::Rng rng(seed);
  Vector x_star(d, 1.0);
  const auto inst = data::make_orthonormal_regression(n, d, f, noise, x_star, rng);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, f).epsilon;
  std::cout << "measured eps = " << eps << "\n\n";

  const auto filter_list = filters::applicable_filter_names(n, f);
  const auto attack_list = attacks::attack_names();

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "filter_matrix",
                              {"filter", "attack", "dist"});

  std::vector<std::string> header = {"filter \\ attack"};
  for (const auto& a : attack_list) header.push_back(a);
  util::TablePrinter table(header);

  for (const auto& filter : filter_list) {
    std::vector<std::string> row = {filter};
    for (const auto& attack_name : attack_list) {
      const auto attack = attacks::make_attack(attack_name);
      filters::FilterParams fp;
      fp.n = n;
      fp.f = f;
      fp.multikrum_m = n - f - 2;
      fp.clip_tau = 5.0;
      dgd::TrainerConfig cfg;
      cfg.filter = filters::make_filter(filter, fp);
      cfg.schedule =
          std::make_shared<dgd::HarmonicSchedule>(bench::schedule_coefficient(filter));
      cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
      cfg.iterations = iterations;
      cfg.seed = seed;
      cfg.trace_stride = 0;
      // The dropout attack triggers agent elimination (paper step S1);
      // rebuild the same filter for the reduced (n, f).
      cfg.filter_factory = [filter](std::size_t n_active, std::size_t f_active) {
        filters::FilterParams fp2;
        fp2.n = n_active;
        fp2.f = f_active;
        fp2.multikrum_m = n_active > f_active + 2 ? n_active - f_active - 2 : 1;
        fp2.clip_tau = 5.0;
        return filters::FilterPtr(filters::make_filter(filter, fp2));
      };
      const auto r = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);
      row.push_back(util::TablePrinter::num(r.final_distance, 3));
      if (csv) {
        csv->write_row(
            std::vector<std::string>{filter, attack_name, std::to_string(r.final_distance)});
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nShape check: every robust filter holds every attack to O(eps) error;\n"
               "mean/sum blow up under random and large-norm faults; dropout rows\n"
               "exercise the S1 elimination path (agent removed, run is fault-free\n"
               "afterwards); krum pays a flat single-gradient-selection penalty.\n";
  return 0;
}
