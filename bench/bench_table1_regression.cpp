// R-T1 — the main results table (paper Table 1 shape).
//
// Distributed linear regression, n = 6, f = 1, d = 2, agent 0 Byzantine.
// For each gradient-filter x fault-type cell, reports the algorithm's
// output x_out and the approximation error dist(x_H, x_out); also reports
// the fault-free baseline and the unfiltered (plain DGD) run.  The row to
// compare against the paper: robust filters land within the measured
// redundancy epsilon of x_H, the unfiltered run does not.
#include "common.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"noise", "iterations", "seed", "csv"}));
  const bench::Harness harness(cli, "R-T1");
  const double noise = cli.get_double("noise", 0.03);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 2000));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

  bench::banner("R-T1", "regression outputs and errors per filter x fault type");
  const bench::PaperExperiment exp(noise, seed);
  std::cout << "n=6 f=1 d=2 x*=(1,1) noise_sigma=" << noise << "\n"
            << "x_H = " << exp.x_h.to_string(5) << "   measured (2f,eps)-redundancy eps = "
            << exp.epsilon << "\n"
            << "mu = " << exp.constants.mu << "  gamma = " << exp.constants.gamma
            << "  alpha = " << core::cge_alpha(6, 1, exp.constants.mu, exp.constants.gamma)
            << "\n\n";

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "table1",
                              {"filter", "attack", "x_out_0", "x_out_1", "dist", "within_eps"});

  util::TablePrinter table({"filter", "attack", "x_out", "dist(x_H, x_out)", "< eps?"});
  const std::vector<std::string> filter_names = {"cge", "cwtm", "mean", "sum"};
  const std::vector<std::string> attack_names = {"gradient_reverse", "random"};

  for (const auto& filter : filter_names) {
    for (const auto& attack_name : attack_names) {
      const auto attack = attacks::make_attack(attack_name);
      auto cfg = bench::make_config(6, 1, filter, iterations, 2, seed);
      cfg.x0 = exp.x0();
      const auto result = dgd::train(exp.instance.problem, {0}, attack.get(), cfg, exp.x_h);
      const bool within = result.final_distance < exp.epsilon;
      table.add_row({filter, attack_name, result.estimate.to_string(5),
                     util::TablePrinter::num(result.final_distance, 4),
                     within ? "yes" : "no"});
      if (csv) {
        csv->write_row(std::vector<std::string>{
            filter, attack_name, std::to_string(result.estimate[0]),
            std::to_string(result.estimate[1]), std::to_string(result.final_distance),
            within ? "1" : "0"});
      }
    }
  }

  // Fault-free baseline: agent 0 omitted, plain DGD over the 5 honest.
  {
    core::MultiAgentProblem fault_free;
    fault_free.f = 0;
    for (std::size_t i = 1; i < 6; ++i) fault_free.costs.push_back(exp.instance.problem.costs[i]);
    auto cfg = bench::make_config(5, 0, "sum", iterations, 2, seed);
    cfg.x0 = exp.x0();
    const auto result = dgd::train(fault_free, {}, nullptr, cfg, exp.x_h);
    table.add_row({"(fault-free)", "none", result.estimate.to_string(5),
                   util::TablePrinter::num(result.final_distance, 4),
                   result.final_distance < exp.epsilon ? "yes" : "no"});
  }

  table.print(std::cout);
  std::cout << "\nShape check (paper): CGE and CWTM land within eps of x_H under both\n"
               "fault types; plain averaging does not (random attack drags it away).\n";
  return 0;
}
