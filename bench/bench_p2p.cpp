// R-A4 — peer-to-peer simulation via Byzantine broadcast (Figure 1b).
//
// Runs the same DGD execution (n = 7, f = 2, gradient-reverse) three ways:
// in-process trainer, message-passing server protocol, and peer-to-peer
// with OM(f) Byzantine broadcast (with and without equivocation).  Reports
// the outputs (identical for consistent attacks), whether the honest
// agents stayed in lockstep, and the message complexity — the O(n^f)
// price of removing the trusted server.
#include "common.h"

#include "net/p2p.h"
#include "net/server_protocol.h"

using namespace redopt;
using linalg::Vector;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"iterations", "seed", "noise", "csv"}));
  const bench::Harness harness(cli, "R-A4");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 120));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  const double noise = cli.get_double("noise", 0.02);

  bench::banner("R-A4", "server-based versus peer-to-peer (OM(f)) execution");
  const std::size_t n = 7, f = 2, d = 2;
  rng::Rng rng(seed);
  const auto inst = data::make_orthonormal_regression(n, d, f, noise, Vector{1.0, 1.0}, rng);
  const std::vector<std::size_t> byzantine = {1, 4};
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const auto attack = attacks::make_attack("gradient_reverse");
  auto cfg = bench::make_config(n, f, "cge", iterations, d, seed);

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "p2p",
                              {"mode", "dist", "messages", "agreement"});
  util::TablePrinter table({"mode", "dist(x_H, x_out)", "messages", "honest agreement"});

  const auto fast = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);
  table.add_row({"in-process", util::TablePrinter::num(fast.final_distance, 5), "-", "-"});

  const auto server = net::run_server_protocol(inst.problem, byzantine, attack.get(), cfg, x_h);
  table.add_row({"server-based", util::TablePrinter::num(server.train.final_distance, 5),
                 std::to_string(server.stats.messages_delivered), "-"});

  const auto p2p = net::run_p2p_protocol(inst.problem, byzantine, attack.get(), cfg, x_h);
  table.add_row({"p2p OM(f)", util::TablePrinter::num(p2p.train.final_distance, 5),
                 std::to_string(p2p.messages), p2p.honest_agreement ? "yes" : "NO"});

  const auto p2p_eq =
      net::run_p2p_protocol(inst.problem, byzantine, attack.get(), cfg, x_h, true);
  table.add_row({"p2p + equivocation",
                 util::TablePrinter::num(p2p_eq.train.final_distance, 5),
                 std::to_string(p2p_eq.messages), p2p_eq.honest_agreement ? "yes" : "NO"});

  table.print(std::cout);
  if (csv) {
    csv->write_row(std::vector<std::string>{"in-process", std::to_string(fast.final_distance),
                                            "0", "1"});
    csv->write_row(std::vector<std::string>{
        "server", std::to_string(server.train.final_distance),
        std::to_string(server.stats.messages_delivered), "1"});
    csv->write_row(std::vector<std::string>{"p2p", std::to_string(p2p.train.final_distance),
                                            std::to_string(p2p.messages),
                                            p2p.honest_agreement ? "1" : "0"});
    csv->write_row(std::vector<std::string>{
        "p2p_equivocate", std::to_string(p2p_eq.train.final_distance),
        std::to_string(p2p_eq.messages), p2p_eq.honest_agreement ? "1" : "0"});
  }
  std::cout << "\nShape check: all modes agree on the output for consistent attacks;\n"
               "honest agents stay in lockstep even under equivocation; the p2p\n"
               "message count is ~n^2 larger per iteration (OM(2) fan-out).\n";
  return 0;
}
