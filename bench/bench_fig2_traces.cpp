// R-F1 — convergence traces (paper Figure 2 shape).
//
// Loss sum_{i in H} Q_i(x^t) and distance ||x^t - x_H|| versus iteration
// t in [0, 500] for: fault-free DGD, DGD without a filter (agent 0
// Byzantine), DGD+CGE, DGD+CWTM; under (a) gradient-reverse and (b)
// random faults.  Prints a downsampled series; --csv dumps every point.
#include "common.h"

using namespace redopt;
using linalg::Vector;

namespace {

struct Series {
  std::string label;
  dgd::Trace trace;
  double final_distance;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv, bench::with_runtime_flags({"noise", "iterations", "seed", "csv", "stride"}));
  const bench::Harness harness(cli, "R-F1");
  const double noise = cli.get_double("noise", 0.03);
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 500));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const auto print_stride = static_cast<std::size_t>(cli.get_int("stride", 50));

  bench::banner("R-F1", "loss and distance traces, iterations 0.." +
                            std::to_string(iterations));
  const bench::PaperExperiment exp(noise, seed);
  std::cout << "x_H = " << exp.x_h.to_string(5) << "  eps = " << exp.epsilon << "\n";

  auto csv = bench::maybe_csv(cli.get_bool("csv", false), "fig2",
                              {"attack", "series", "iteration", "loss", "distance"});

  for (const std::string attack_name : {"gradient_reverse", "random"}) {
    std::cout << "\n--- fault type: " << attack_name << " ---\n";
    const auto attack = attacks::make_attack(attack_name);

    std::vector<Series> series;
    // Fault-free: agent 0 omitted.
    {
      core::MultiAgentProblem fault_free;
      fault_free.f = 0;
      for (std::size_t i = 1; i < 6; ++i)
        fault_free.costs.push_back(exp.instance.problem.costs[i]);
      auto cfg = bench::make_config(5, 0, "sum", iterations, 2, seed);
      cfg.x0 = exp.x0();
      cfg.trace_stride = 1;
      auto r = dgd::train(fault_free, {}, nullptr, cfg, exp.x_h);
      series.push_back({"fault-free", std::move(r.trace), r.final_distance});
    }
    for (const std::string filter : {"sum", "cge", "cwtm"}) {
      auto cfg = bench::make_config(6, 1, filter, iterations, 2, seed);
      cfg.x0 = exp.x0();
      cfg.trace_stride = 1;
      auto r = dgd::train(exp.instance.problem, {0}, attack.get(), cfg, exp.x_h);
      const std::string label = filter == "sum" ? "no-filter" : filter;
      series.push_back({label, std::move(r.trace), r.final_distance});
    }

    util::TablePrinter table({"iter", "fault-free loss", "no-filter loss", "cge loss",
                              "cwtm loss", "fault-free dist", "no-filter dist", "cge dist",
                              "cwtm dist"});
    for (std::size_t t = 0; t <= iterations; t += print_stride) {
      std::vector<std::string> row = {std::to_string(t)};
      for (const auto& s : series) row.push_back(util::TablePrinter::num(s.trace.loss[t], 4));
      for (const auto& s : series)
        row.push_back(util::TablePrinter::num(s.trace.distance[t], 4));
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    std::cout << "final distances:";
    for (const auto& s : series)
      std::cout << "  " << s.label << "=" << util::TablePrinter::num(s.final_distance, 4);
    std::cout << "\n";

    if (csv) {
      for (const auto& s : series) {
        for (std::size_t k = 0; k < s.trace.iteration.size(); ++k) {
          csv->write_row(std::vector<std::string>{
              attack_name, s.label, std::to_string(s.trace.iteration[k]),
              std::to_string(s.trace.loss[k]), std::to_string(s.trace.distance[k])});
        }
      }
    }
  }

  std::cout << "\nShape check (paper Fig. 2): filtered runs track the fault-free\n"
               "curve; the unfiltered run stalls at a higher loss / distance.\n";
  return 0;
}
