// R-S1 — serving throughput and time-to-result under multi-client load
// (google-benchmark).
//
// Two questions, one binary:
//
//   * jobs/sec through the scheduler — the in-process core: admission,
//     cross-job gradient stacking, round-robin slices, checkpoint
//     serialization after every slice (the daemon's persistence cost
//     without the filesystem).  The jobs_per_second counter is the R-S1
//     headline number.
//
//   * time-to-result over the wire — a live daemon on a Unix-domain
//     socket, client threads submitting a batch of jobs and polling to
//     completion exactly like scripts/check_serving.sh does.  Reported
//     per entry: p50/p99 submit-to-result latency over all jobs.
//     (Latency samples are timing, not arithmetic — expect noise; the
//     perf gate holds only the ratio to baseline.)
//
// Per-entry ride-alongs (rounds_total, jobs) pin the workload, so a
// scenario change that silently alters the work shows up next to its
// timing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "chaos/scenario.h"
#include "perf_common.h"
#include "serving/client.h"
#include "serving/daemon.h"
#include "serving/job.h"
#include "serving/scheduler.h"
#include "util/json.h"

using namespace redopt;

namespace {

constexpr std::uint64_t kBenchSeed = 131;

/// One synthetic training job: a faulty regression scenario that takes
/// the full runner path (Byzantine window, straggler history, lossy
/// channel) so the benchmark prices real slices, not the no-fault fast
/// path.
serving::JobSpec bench_job(const std::string& id, std::uint64_t seed) {
  chaos::Scenario s;
  s.name = "bench-serving";
  s.seed = kBenchSeed + seed;
  s.problem = "regression";
  s.filter = "cge";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.rounds = 60;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 1;
  byz.from = 5;
  byz.attack = "random";
  byz.attack_param = 50.0;
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 5;
  straggler.from = 2;
  straggler.staleness = 3;
  s.faults = {byz, straggler};
  s.channel.drop_probability = 0.05;
  s.channel.duplicate_probability = 0.05;
  s.channel.max_delay = 2;

  serving::JobSpec spec;
  spec.job_id = id;
  spec.scenario = s;
  return spec;
}

/// Scheduler-only throughput: K concurrent jobs through admission,
/// stacking, slicing and per-slice checkpoint serialization.
void scheduler_jobs_per_second(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t jobs_done = 0;
  std::uint64_t rounds_total = 0;
  for (auto _ : state) {
    serving::SchedulerOptions options;
    options.max_jobs = batch;
    options.slice_rounds = 16;
    serving::Scheduler scheduler(options);
    for (std::size_t k = 0; k < batch; ++k) {
      const std::string reason =
          scheduler.submit(bench_job("job-" + std::to_string(k), k));
      if (!reason.empty()) state.SkipWithError(reason.c_str());
    }
    std::string checkpoint_bytes;
    while (!scheduler.idle()) {
      scheduler.step([&checkpoint_bytes](const serving::JobCheckpoint& ck, bool) {
        // Price what the daemon persists after every slice.
        checkpoint_bytes = ck.to_json();
      });
    }
    benchmark::DoNotOptimize(checkpoint_bytes.data());
    jobs_done += batch;
    rounds_total += batch * 60;
  }
  state.counters["jobs_per_second"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
  state.counters["jobs"] = static_cast<double>(batch);
  state.counters["rounds_total"] = static_cast<double>(rounds_total);
}

/// Full wire path: a daemon thread serving a Unix-domain socket, client
/// threads submitting a job batch and polling each job to its result.
void daemon_time_to_result(benchmark::State& state) {
  namespace fs = std::filesystem;
  const auto clients = static_cast<std::size_t>(state.range(0));
  const std::size_t jobs_per_client = 4;
  const std::string root =
      (fs::temp_directory_path() / "redopt_bench_serving").string();

  std::vector<double> samples;
  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    fs::remove_all(root);
    fs::create_directories(root);
    serving::DaemonOptions options;
    options.socket_path = root + "/bench.sock";
    options.state_dir = root + "/state";
    options.scheduler.max_jobs = clients * jobs_per_client;
    options.scheduler.slice_rounds = 16;
    serving::Daemon daemon(options);
    std::thread server([&daemon] { daemon.serve(); });

    std::vector<std::vector<double>> lanes(clients);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&options, c, &lane = lanes[c]] {
        serving::Client client(options.socket_path);
        for (std::size_t k = 0; k < jobs_per_client; ++k) {
          const std::string id =
              "c" + std::to_string(c) + "-j" + std::to_string(k);
          const auto begin = std::chrono::steady_clock::now();
          client.submit(bench_job(id, c * jobs_per_client + k));
          while (true) {
            const util::JsonValue status = util::json_parse(client.status(id));
            if (status.at("ok").as_bool() &&
                status.at("state").as_string() == "done") {
              break;
            }
          }
          const std::string result = client.result(id);
          const auto end = std::chrono::steady_clock::now();
          benchmark::DoNotOptimize(result.data());
          lane.push_back(
              std::chrono::duration<double, std::milli>(end - begin).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    serving::Client(options.socket_path).shutdown_daemon();
    server.join();
    for (const std::vector<double>& lane : lanes) {
      samples.insert(samples.end(), lane.begin(), lane.end());
    }
    jobs_done += clients * jobs_per_client;
  }
  fs::remove_all(root);

  std::sort(samples.begin(), samples.end());
  auto percentile = [&samples](double p) {
    if (samples.empty()) return 0.0;
    const auto at =
        static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
    return samples[at];
  };
  state.counters["jobs_per_second"] = benchmark::Counter(
      static_cast<double>(jobs_done), benchmark::Counter::kIsRate);
  state.counters["ttr_p50_ms"] = percentile(0.50);
  state.counters["ttr_p99_ms"] = percentile(0.99);
}

BENCHMARK(scheduler_jobs_per_second)
    ->Name("serving/scheduler/jobs")
    ->Arg(1)
    ->Arg(4)
    ->Arg(8);
BENCHMARK(daemon_time_to_result)
    ->Name("serving/daemon/ttr")
    ->Arg(1)
    ->Arg(2)
    // Real time, not CPU: the daemon thread does the work while the
    // client threads wait, so rate counters must divide by wall clock.
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) { return redopt::bench::run_perf_bench(argc, argv); }
