// R-P1 — gradient-filter throughput (google-benchmark).
//
// Cost of one GradFilter application versus the number of agents n and the
// dimension d.  Characterizes *this* implementation (the paper reports no
// wall-clock numbers): mean/cge/cwtm are near-linear scans; krum/bulyan
// pay O(n^2 d) pairwise distances; geomed pays Weiszfeld iterations.
#include <benchmark/benchmark.h>

#include "filters/registry.h"
#include "perf_common.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

std::vector<Vector> make_gradients(std::size_t n, std::size_t d) {
  rng::Rng rng(12345);
  std::vector<Vector> gs;
  gs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) gs.push_back(Vector(rng.gaussian_vector(d)));
  return gs;
}

void run_filter(benchmark::State& state, const std::string& name) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto d = static_cast<std::size_t>(state.range(1));
  filters::FilterParams params;
  params.n = n;
  params.f = (n - 3) / 4;  // largest budget Bulyan's n >= 4f + 3 admits
  params.multikrum_m = 2;
  std::unique_ptr<filters::GradientFilter> filter;
  try {
    filter = filters::make_filter(name, params);
  } catch (const PreconditionError&) {
    state.SkipWithError("filter not applicable at this (n, f)");
    return;
  }
  const auto gradients = make_gradients(n, d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter->apply(gradients));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * d));
}

void register_all() {
  // This benchmark library version takes const char* names; keep the
  // qualified names alive for the program's lifetime.
  static std::vector<std::string> names;
  names.reserve(7);
  for (const char* name : {"mean", "cge", "cwtm", "cwmed", "krum", "geomed", "bulyan"}) {
    names.push_back(std::string("filter/") + name);
    auto* bench = benchmark::RegisterBenchmark(
        names.back().c_str(), [name](benchmark::State& s) { run_filter(s, name); });
    bench->Args({8, 10})->Args({32, 10})->Args({128, 10})->Args({32, 100})->Args({32, 1000});
  }
}

const bool registered = (register_all(), true);

}  // namespace

int main(int argc, char** argv) { return bench::run_perf_bench(argc, argv); }
