// Tests for the stale-gradient asynchronous trainer.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/async_trainer.h"
#include "filters/registry.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

dgd::AsyncConfig async_config(const std::string& filter, std::size_t iterations,
                              double straggler_probability, std::size_t max_staleness) {
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::AsyncConfig cfg;
  cfg.base.filter = filters::make_filter(filter, fp);
  cfg.base.schedule = std::make_shared<dgd::HarmonicSchedule>(
      (filter == "cge" || filter == "sum") ? 0.5 : 2.0);
  cfg.base.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.base.iterations = iterations;
  cfg.base.trace_stride = 0;
  cfg.straggler_probability = straggler_probability;
  cfg.max_staleness = max_staleness;
  return cfg;
}

}  // namespace

TEST(AsyncTrainer, ZeroStragglersMatchesSynchronousTrainer) {
  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const auto attack = attacks::make_attack("random");
  const auto cfg = async_config("cwtm", 100, 0.0, 1);
  const auto async = dgd::train_async(inst.problem, {2}, attack.get(), cfg);
  dgd::TrainerConfig sync_cfg = cfg.base;
  const auto sync = dgd::train(inst.problem, {2}, attack.get(), sync_cfg);
  EXPECT_EQ(async.estimate, sync.estimate);  // bit-identical replay
}

TEST(AsyncTrainer, ConvergesUnderModerateStaleness) {
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result = dgd::train_async(inst.problem, {0}, attack.get(),
                                       async_config("cge", 3000, 0.3, 3), x_h);
  EXPECT_LT(result.final_distance, 0.02);
}

TEST(AsyncTrainer, HeavyStalenessSlowsConvergence) {
  // Property: at a fixed (small) iteration budget, heavier staleness leaves
  // the run further from the optimum (diminishing steps eventually absorb
  // any bounded staleness, so this is a transient-phase comparison).
  rng::Rng rng(3);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const Vector x_all{1.0, 1.0};
  auto error_at = [&](double probability, std::size_t staleness) {
    auto cfg = async_config("cge", 40, probability, staleness);
    return dgd::train_async(inst.problem, {}, nullptr, cfg, x_all).final_distance;
  };
  const double fresh = error_at(0.0, 1);
  const double stale = error_at(0.9, 8);
  EXPECT_LT(fresh, stale);
}

TEST(AsyncTrainer, DeterministicGivenSeed) {
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("lie");
  const auto cfg = async_config("cwtm", 150, 0.4, 4);
  const auto r1 = dgd::train_async(inst.problem, {5}, attack.get(), cfg);
  const auto r2 = dgd::train_async(inst.problem, {5}, attack.get(), cfg);
  EXPECT_EQ(r1.estimate, r2.estimate);
}

TEST(AsyncTrainer, ValidatesConfiguration) {
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = async_config("cge", 10, 1.5, 2);
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = async_config("cge", 10, 0.5, 2);
  cfg.max_staleness = 0;
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = async_config("cge", 10, 0.5, 2);
  cfg.base.filter = nullptr;
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
}

TEST(AsyncTrainer, CrashAndRecoverStillConverges) {
  // An honest agent freezes mid-training (the server keeps seeing its
  // last-sent gradient) and later recovers; with faulty <= f the run must
  // still reach the honest optimum.
  rng::Rng rng(6);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto honest = dgd::honest_ids(6, {});
  const Vector x_h = data::regression_argmin(inst, honest);
  auto cfg = async_config("cge", 3000, 0.0, 1);
  cfg.crashes = {{4, 50, 400}};
  const auto result = dgd::train_async(inst.problem, {}, nullptr, cfg, x_h);
  EXPECT_LT(result.final_distance, 0.02);
}

TEST(AsyncTrainer, CrashWithByzantineAgentWithinBudgetConverges) {
  // A crashed-then-recovered agent plus one Byzantine agent: the crash is
  // transient (not a standing fault), so redundancy still covers f = 1.
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const Vector x_h = data::regression_argmin(inst, dgd::honest_ids(6, {2}));
  const auto attack = attacks::make_attack("gradient_reverse");
  auto cfg = async_config("cge", 3000, 0.0, 1);
  cfg.crashes = {{1, 100, 300}};
  const auto result = dgd::train_async(inst.problem, {2}, attack.get(), cfg, x_h);
  EXPECT_LT(result.final_distance, 0.05);
}

TEST(AsyncTrainer, EmptyCrashListMatchesBaseline) {
  rng::Rng rng(8);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("lie");
  const auto cfg = async_config("cwtm", 120, 0.3, 3);
  auto with_empty = cfg;
  with_empty.crashes = {};
  const auto a = dgd::train_async(inst.problem, {5}, attack.get(), cfg);
  const auto b = dgd::train_async(inst.problem, {5}, attack.get(), with_empty);
  EXPECT_EQ(a.estimate, b.estimate);  // bit-identical
}

TEST(AsyncTrainer, EveryReplyStaleStillConverges) {
  // Bounded-staleness worst case: every honest reply is stale every round.
  // Diminishing steps absorb any bounded delay, so the run still converges
  // when the faulty count stays within f.
  rng::Rng rng(9);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const Vector x_h = data::regression_argmin(inst, dgd::honest_ids(6, {2}));
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result = dgd::train_async(inst.problem, {2}, attack.get(),
                                       async_config("cge", 4000, 1.0, 4), x_h);
  EXPECT_LT(result.final_distance, 0.05);
}

TEST(AsyncTrainer, ValidatesCrashWindows) {
  rng::Rng rng(10);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = async_config("cge", 50, 0.0, 2);
  cfg.crashes = {{9, 5, 10}};  // unknown agent
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = async_config("cge", 50, 0.0, 2);
  cfg.crashes = {{1, 0, 10}};  // begin must be >= 1 (needs a last-sent gradient)
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = async_config("cge", 50, 0.0, 2);
  cfg.crashes = {{1, 10, 10}};  // empty window
  EXPECT_THROW(dgd::train_async(inst.problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = async_config("cge", 50, 0.0, 2);
  cfg.crashes = {{2, 5, 10}};  // Byzantine agents cannot also crash
  const auto attack = attacks::make_attack("zero");
  EXPECT_THROW(dgd::train_async(inst.problem, {2}, attack.get(), cfg),
               redopt::PreconditionError);
}
