// Tests for redundancy-by-design (shard replication) and empirical
// (f, eps)-resilience certification.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/design.h"
#include "data/regression.h"
#include "data/replicated_regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "redundancy/resilience.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

// ---------------------------------------------------------------- Layouts

TEST(ReplicationDesign, CyclicLayoutStructure) {
  const auto design = data::cyclic_replication(5, 4, 2);
  EXPECT_EQ(design.shard_holders.size(), 5u);
  EXPECT_EQ(design.agent_shards.size(), 4u);
  // Shard 3 held by agents 3 and 0 (cyclic wrap).
  EXPECT_EQ(design.shard_holders[3], (std::vector<std::size_t>{0, 3}));
  // Every shard has exactly r holders.
  for (const auto& holders : design.shard_holders) EXPECT_EQ(holders.size(), 2u);
  // Shard/agent views are consistent.
  for (std::size_t j = 0; j < 5; ++j) {
    for (std::size_t a : design.shard_holders[j]) {
      const auto& shards = design.agent_shards[a];
      EXPECT_NE(std::find(shards.begin(), shards.end(), j), shards.end());
    }
  }
}

TEST(ReplicationDesign, ValidatesArguments) {
  EXPECT_THROW(data::cyclic_replication(0, 4, 2), redopt::PreconditionError);
  EXPECT_THROW(data::cyclic_replication(5, 4, 5), redopt::PreconditionError);
  EXPECT_THROW(data::cyclic_replication(5, 4, 0), redopt::PreconditionError);
}

TEST(ReplicationDesign, CoverageThresholdIsTwoFPlusOne) {
  // n = 7, f = 2: coverage needs r >= 2f + 1 = 5.
  const std::size_t n = 7, f = 2;
  EXPECT_FALSE(data::covers_all_shards(data::cyclic_replication(7, n, 4), f));
  EXPECT_TRUE(data::covers_all_shards(data::cyclic_replication(7, n, 5), f));
}

TEST(ReplicationDesign, MaxCoveredFMatchesFormula) {
  // Cyclic layout with m = n shards: r >= 2f + 1 <=> f <= (r - 1) / 2.
  for (std::size_t r : {1u, 3u, 5u}) {
    const auto design = data::cyclic_replication(9, 9, r);
    EXPECT_EQ(data::max_covered_f(design), (r - 1) / 2) << "r=" << r;
  }
}

TEST(ReplicationDesign, FullReplicationCoversEverything) {
  const auto design = data::cyclic_replication(4, 5, 5);
  EXPECT_TRUE(data::covers_all_shards(design, 2));
  EXPECT_EQ(data::max_covered_f(design), 2u);  // capped by n > 2f
}

// ---------------------------------------------------------------- Replicated regression

TEST(ReplicatedRegression, NoiselessWithEnoughReplicationIsExactlyRedundant) {
  rng::Rng rng(1);
  // n = 7, f = 2, r = 2f + 1 = 5.
  const auto inst =
      data::make_replicated_regression(7, 2, 7, 2, 5, 0.0, Vector{1.0, -1.0}, rng);
  const auto report = redundancy::measure_redundancy(inst.problem.costs, 2);
  EXPECT_NEAR(report.epsilon, 0.0, 1e-7);
}

TEST(ReplicatedRegression, MoreReplicationTightensEpsilonUnderNoise) {
  // With noiseless consistent shards every aggregate minimizes at x*
  // regardless of r (the shared minimum hides the layout), so the value of
  // replication shows under observation noise: higher r means admissible
  // subsets share more shards, so their minimizers disagree less.  The
  // same seed fixes the shard rows and noise across r, isolating the
  // layout's effect.
  auto epsilon_at = [](std::size_t r) {
    rng::Rng rng(2);
    const auto inst =
        data::make_replicated_regression(7, 2, 7, 2, r, 0.05, Vector{1.0, -1.0}, rng);
    return redundancy::measure_redundancy(inst.problem.costs, 2).epsilon;
  };
  const double eps_r1 = epsilon_at(1);
  const double eps_r3 = epsilon_at(3);
  const double eps_r5 = epsilon_at(5);
  const double eps_r7 = epsilon_at(7);
  EXPECT_GT(eps_r1, eps_r5);
  EXPECT_GT(eps_r3, eps_r7);
  // Full replication: all agents share one dataset -> exact redundancy
  // even with noise.
  EXPECT_NEAR(eps_r7, 0.0, 1e-9);
}

TEST(ReplicatedRegression, NoiseScalesEpsilon) {
  rng::Rng rng1(3), rng2(3);
  const auto small =
      data::make_replicated_regression(8, 2, 8, 2, 5, 0.01, Vector{1.0, 1.0}, rng1);
  const auto large =
      data::make_replicated_regression(8, 2, 8, 2, 5, 0.1, Vector{1.0, 1.0}, rng2);
  const double eps_small = redundancy::measure_redundancy(small.problem.costs, 2).epsilon;
  const double eps_large = redundancy::measure_redundancy(large.problem.costs, 2).epsilon;
  EXPECT_NEAR(eps_large / eps_small, 10.0, 1e-6);  // same noise shape, scaled
}

TEST(ReplicatedRegression, ArgminRecoversTruthNoiseless) {
  rng::Rng rng(4);
  const auto inst =
      data::make_replicated_regression(9, 3, 8, 2, 5, 0.0, Vector{1.0, 2.0, 3.0}, rng);
  const Vector x_h = data::replicated_regression_argmin(inst, {0, 2, 3, 5, 6, 7});
  EXPECT_NEAR(linalg::distance(x_h, Vector{1.0, 2.0, 3.0}), 0.0, 1e-9);
}

TEST(ReplicatedRegression, DgdCgeRecoversUnderAttack) {
  rng::Rng rng(5);
  const auto inst =
      data::make_replicated_regression(9, 2, 9, 2, 5, 0.0, Vector{1.0, -1.0}, rng);
  const std::vector<std::size_t> byzantine = {1, 6};
  const auto honest = dgd::honest_ids(9, byzantine);
  const Vector x_h = data::replicated_regression_argmin(inst, honest);
  const auto attack = attacks::make_attack("gradient_reverse");
  filters::FilterParams fp;
  fp.n = 9;
  fp.f = 2;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.2);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 3000;
  cfg.trace_stride = 0;
  const auto result = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);
  EXPECT_LT(result.final_distance, 0.02);
}

// ---------------------------------------------------------------- Resilience certification

namespace {

redundancy::AlgorithmFn exact_algorithm_fn() {
  return [](const std::vector<core::CostPtr>& received, std::size_t f) {
    return core::run_exact_algorithm(received, f).output;
  };
}

std::vector<core::CostPtr> adversarial_pulls(std::size_t d) {
  std::vector<core::CostPtr> bad;
  bad.push_back(std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector(d, 10.0))));
  bad.push_back(std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector(d, -10.0))));
  return bad;
}

}  // namespace

TEST(ResilienceCertification, ExactAlgorithmWithinTwoEpsilon) {
  rng::Rng rng(6);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.04, 1, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  const auto report = redundancy::measure_resilience(inst.problem.costs, 1,
                                                     exact_algorithm_fn(),
                                                     adversarial_pulls(2));
  // Theorem 2's guarantee, certified over every scenario the sweep covers.
  EXPECT_LE(report.epsilon, 2.0 * eps + 1e-9);
  // 6 byzantine placements x 2 adversarial costs + 1 fault-free scenario.
  EXPECT_EQ(report.scenarios_run, 13u);
}

TEST(ResilienceCertification, ExactAlgorithmExactUnderExactRedundancy) {
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto report = redundancy::measure_resilience(inst.problem.costs, 1,
                                                     exact_algorithm_fn(),
                                                     adversarial_pulls(2));
  EXPECT_NEAR(report.epsilon, 0.0, 1e-7);
}

TEST(ResilienceCertification, NaiveAveragingFailsCertification) {
  // Algorithm under test: minimize the average of ALL received costs.
  const redundancy::AlgorithmFn naive = [](const std::vector<core::CostPtr>& received,
                                           std::size_t) {
    return core::argmin_point(core::AggregateCost(received));
  };
  rng::Rng rng(8);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  const auto naive_report =
      redundancy::measure_resilience(inst.problem.costs, 1, naive, adversarial_pulls(2));
  const auto exact_report = redundancy::measure_resilience(
      inst.problem.costs, 1, exact_algorithm_fn(), adversarial_pulls(2));
  EXPECT_GT(naive_report.epsilon, 10.0 * eps);  // dragged by the adversarial cost
  EXPECT_GT(naive_report.epsilon, 10.0 * exact_report.epsilon);
  EXPECT_FALSE(naive_report.worst_byzantine.empty());
}

TEST(ResilienceCertification, ValidatesArguments) {
  rng::Rng rng(9);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  EXPECT_THROW(redundancy::measure_resilience(inst.problem.costs, 1, nullptr,
                                              adversarial_pulls(2)),
               redopt::PreconditionError);
  EXPECT_THROW(
      redundancy::measure_resilience(inst.problem.costs, 1, exact_algorithm_fn(), {}),
      redopt::PreconditionError);
  EXPECT_THROW(redundancy::measure_resilience(inst.problem.costs, 3, exact_algorithm_fn(),
                                              adversarial_pulls(2)),
               redopt::PreconditionError);
}
