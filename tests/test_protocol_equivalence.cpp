// Cross-implementation tests: the message-passing server protocol and the
// peer-to-peer (Byzantine-broadcast) protocol must reproduce the in-process
// trainer's executions.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "net/p2p.h"
#include "net/server_protocol.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

dgd::TrainerConfig make_config(std::size_t n, std::size_t f, const std::string& filter,
                               std::size_t iterations) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = iterations;
  return cfg;
}

}  // namespace

TEST(ServerProtocol, BitIdenticalToInProcessTrainerFaultFree) {
  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto cfg = make_config(6, 1, "cge", 150);
  const auto fast = dgd::train(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  const auto net = net::run_server_protocol(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  ASSERT_EQ(fast.trace.estimates.size(), net.train.trace.estimates.size());
  for (std::size_t i = 0; i < fast.trace.estimates.size(); ++i) {
    EXPECT_EQ(fast.trace.estimates[i], net.train.trace.estimates[i]) << "iterate " << i;
  }
  EXPECT_EQ(fast.estimate, net.train.estimate);
}

TEST(ServerProtocol, BitIdenticalUnderRandomizedAttack) {
  // The randomized attack draws from per-agent forked streams; both
  // implementations must consume them identically.
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const auto attack = attacks::make_attack("random");
  auto cfg = make_config(6, 1, "cwtm", 120);
  cfg.seed = 77;
  const auto fast = dgd::train(inst.problem, {3}, attack.get(), cfg);
  const auto net = net::run_server_protocol(inst.problem, {3}, attack.get(), cfg);
  EXPECT_EQ(fast.estimate, net.train.estimate);
}

TEST(ServerProtocol, NetworkTrafficAccounting) {
  rng::Rng rng(3);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto cfg = make_config(6, 1, "cge", 10);
  const auto net = net::run_server_protocol(inst.problem, {}, nullptr, cfg);
  // Per iteration: 6 broadcast deliveries (estimate) + 6 gradient replies.
  // One extra broadcast round at the start and the final update round's
  // broadcast is emitted but not delivered within the run window.
  EXPECT_GE(net.stats.messages_delivered, 10u * 12u);
  EXPECT_GT(net.stats.scalars_transferred, 0u);
}

TEST(ServerProtocol, DropoutEliminationMatchesInProcessTrainer) {
  // A Byzantine agent that goes silent mid-run: both implementations must
  // eliminate it at the same iteration (paper step S1) and produce
  // bit-identical iterates afterwards.
  rng::Rng rng(9);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  attacks::AttackParams params;
  params.drop_after = 7;
  const auto attack = attacks::make_attack("dropout", params);
  auto cfg = make_config(6, 1, "cge", 60);
  cfg.filter_factory = [](std::size_t n, std::size_t f) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    return filters::FilterPtr(filters::make_filter("cge", fp));
  };
  const auto fast = dgd::train(inst.problem, {2}, attack.get(), cfg);
  const auto net = net::run_server_protocol(inst.problem, {2}, attack.get(), cfg);
  EXPECT_EQ(fast.eliminated_agents, (std::vector<std::size_t>{2}));
  EXPECT_EQ(net.train.eliminated_agents, fast.eliminated_agents);
  EXPECT_EQ(fast.estimate, net.train.estimate);
}

TEST(P2p, MatchesServerBasedExecutionUnderConsistentAttack) {
  // With a deterministic attack and no equivocation, the p2p simulation
  // decides exactly the values the server would have received, so the
  // honest estimates coincide with the in-process trainer's.
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = make_config(6, 1, "cge", 60);
  const auto fast = dgd::train(inst.problem, {2}, attack.get(), cfg);
  const auto p2p = net::run_p2p_protocol(inst.problem, {2}, attack.get(), cfg);
  EXPECT_TRUE(p2p.honest_agreement);
  EXPECT_EQ(fast.estimate, p2p.train.estimate);
  EXPECT_GT(p2p.messages, 0u);
}

TEST(P2p, HonestAgreementSurvivesEquivocation) {
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = make_config(6, 1, "cge", 30);
  const auto p2p =
      net::run_p2p_protocol(inst.problem, {1}, attack.get(), cfg, std::nullopt, true);
  EXPECT_TRUE(p2p.honest_agreement);
}

TEST(P2p, MessageProtocolModeMatchesFunctionalMode) {
  // The two OM implementations are decision-equivalent, so the full p2p
  // DGD run must be bit-identical whichever one carries the broadcasts.
  rng::Rng rng(10);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = make_config(6, 1, "cge", 25);
  const auto functional =
      net::run_p2p_protocol(inst.problem, {4}, attack.get(), cfg, std::nullopt, false, false);
  const auto protocol =
      net::run_p2p_protocol(inst.problem, {4}, attack.get(), cfg, std::nullopt, false, true);
  EXPECT_EQ(functional.train.estimate, protocol.train.estimate);
  EXPECT_TRUE(protocol.honest_agreement);
  EXPECT_EQ(functional.messages, protocol.messages);
}

TEST(P2p, RequiresNGreaterThanThreeF) {
  rng::Rng rng(6);
  // n = 6 with f = 2 violates n > 3f.
  const auto a = data::redundant_matrix(6, 2, 2, rng);
  const auto inst = data::make_regression(a, Vector{1.0, 1.0}, 0.0, 2, rng);
  const auto attack = attacks::make_attack("zero");
  const auto cfg = make_config(6, 2, "cge", 5);
  EXPECT_THROW(net::run_p2p_protocol(inst.problem, {0, 1}, attack.get(), cfg),
               redopt::PreconditionError);
}

/// Sweep: the message-passing server protocol must be bit-identical to the
/// in-process trainer for EVERY registered filter (not just cge/cwtm).
class ServerEquivalenceSweep : public testing::TestWithParam<std::string> {};

TEST_P(ServerEquivalenceSweep, BitIdenticalAcrossImplementations) {
  rng::Rng rng(31);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const auto attack = attacks::make_attack("lie");
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  fp.multikrum_m = 2;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(GetParam(), fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(
      (GetParam() == "cge" || GetParam() == "sum") ? 0.3 : 1.0);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 40;
  cfg.trace_stride = 0;
  const auto fast = dgd::train(inst.problem, {1}, attack.get(), cfg);
  const auto net = net::run_server_protocol(inst.problem, {1}, attack.get(), cfg);
  EXPECT_EQ(fast.estimate, net.train.estimate) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFilters, ServerEquivalenceSweep,
                         testing::ValuesIn(filters::applicable_filter_names(6, 1)),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(P2p, FaultFreeConvergesLikeTrainer) {
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = make_config(6, 1, "cge", 400);
  const auto p2p = net::run_p2p_protocol(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  EXPECT_LT(p2p.train.final_distance, 0.05);
}
