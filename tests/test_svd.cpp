// Tests for the SVD and LU decompositions, including cross-validation
// against the QR-based rank/solve paths.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompose.h"
#include "linalg/svd.h"
#include "rng/rng.h"
#include "util/error.h"

using redopt::linalg::LuDecomposition;
using redopt::linalg::Matrix;
using redopt::linalg::Vector;
namespace rl = redopt::linalg;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, redopt::rng::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.gaussian();
  return m;
}

}  // namespace

// ---------------------------------------------------------------- SVD

TEST(Svd, DiagonalMatrixSingularValues) {
  const auto result = rl::svd(Matrix::diagonal(Vector{3.0, -5.0, 1.0}));
  EXPECT_NEAR(result.sigma[0], 5.0, 1e-12);
  EXPECT_NEAR(result.sigma[1], 3.0, 1e-12);
  EXPECT_NEAR(result.sigma[2], 1.0, 1e-12);
}

TEST(Svd, ReconstructsInputMatrix) {
  redopt::rng::Rng rng(1);
  const Matrix a = random_matrix(8, 5, rng);
  const auto result = rl::svd(a);
  // A == U diag(sigma) V^T
  const Matrix usv =
      rl::matmul(result.u, rl::matmul(Matrix::diagonal(result.sigma), result.v.transposed()));
  EXPECT_NEAR((a - usv).frobenius_norm(), 0.0, 1e-9);
}

TEST(Svd, FactorsAreOrthonormal) {
  redopt::rng::Rng rng(2);
  const Matrix a = random_matrix(7, 4, rng);
  const auto result = rl::svd(a);
  const Matrix utu = result.u.gram();
  const Matrix vtv = result.v.gram();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(utu(i, j), i == j ? 1.0 : 0.0, 1e-10);
      EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Svd, SingularValuesDescendingNonNegative) {
  redopt::rng::Rng rng(3);
  const auto result = rl::svd(random_matrix(10, 6, rng));
  for (std::size_t k = 0; k + 1 < 6; ++k) {
    EXPECT_GE(result.sigma[k], result.sigma[k + 1]);
    EXPECT_GE(result.sigma[k + 1], 0.0);
  }
}

TEST(Svd, FrobeniusNormIdentity) {
  // ||A||_F^2 == sum sigma_i^2.
  redopt::rng::Rng rng(4);
  const Matrix a = random_matrix(6, 6, rng);
  const auto result = rl::svd(a);
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < 6; ++k) sum_sq += result.sigma[k] * result.sigma[k];
  EXPECT_NEAR(a.frobenius_norm() * a.frobenius_norm(), sum_sq, 1e-9);
}

TEST(Svd, RankAgreesWithQrRank) {
  redopt::rng::Rng rng(5);
  // Full rank case.
  const Matrix full = random_matrix(8, 4, rng);
  EXPECT_EQ(rl::svd_rank(full), rl::rank(full));
  // Deficient case: duplicate a column.
  Matrix deficient(6, 3);
  for (std::size_t r = 0; r < 6; ++r) {
    deficient(r, 0) = rng.gaussian();
    deficient(r, 1) = rng.gaussian();
    deficient(r, 2) = deficient(r, 0) * 2.0 - deficient(r, 1);
  }
  EXPECT_EQ(rl::svd_rank(deficient), 2u);
  EXPECT_EQ(rl::rank(deficient), 2u);
}

TEST(Svd, WideMatrixRankViaTranspose) {
  redopt::rng::Rng rng(6);
  EXPECT_EQ(rl::svd_rank(random_matrix(3, 8, rng)), 3u);
}

TEST(Svd, ConditionNumberKnownCases) {
  EXPECT_NEAR(rl::condition_number(Matrix::diagonal(Vector{10.0, 1.0})), 10.0, 1e-9);
  EXPECT_NEAR(rl::condition_number(Matrix::identity(4)), 1.0, 1e-12);
  EXPECT_TRUE(std::isinf(rl::condition_number(Matrix{{1.0, 1.0}, {1.0, 1.0}})));
}

TEST(Svd, RejectsInvalidShapes) {
  EXPECT_THROW(rl::svd(Matrix(2, 3)), redopt::PreconditionError);  // wide, not transposed
  EXPECT_THROW(rl::svd(Matrix()), redopt::PreconditionError);
}

// ---------------------------------------------------------------- LU

TEST(Lu, SolveRoundTrip) {
  redopt::rng::Rng rng(7);
  const Matrix a = random_matrix(6, 6, rng);
  const Vector x_true(rng.gaussian_vector(6));
  const LuDecomposition lu(a);
  EXPECT_TRUE(lu.invertible());
  EXPECT_NEAR(rl::distance(lu.solve(rl::matvec(a, x_true)), x_true), 0.0, 1e-9);
}

TEST(Lu, AgreesWithQrSolve) {
  redopt::rng::Rng rng(8);
  const Matrix a = random_matrix(5, 5, rng);
  const Vector b(rng.gaussian_vector(5));
  EXPECT_NEAR(rl::distance(LuDecomposition(a).solve(b), rl::solve(a, b)), 0.0, 1e-8);
}

TEST(Lu, DeterminantKnownCases) {
  EXPECT_NEAR(LuDecomposition(Matrix{{2.0, 0.0}, {0.0, 3.0}}).determinant(), 6.0, 1e-12);
  // Row swap flips the sign: [[0,1],[1,0]] has det -1.
  EXPECT_NEAR(LuDecomposition(Matrix{{0.0, 1.0}, {1.0, 0.0}}).determinant(), -1.0, 1e-12);
  EXPECT_NEAR(LuDecomposition(Matrix{{1.0, 2.0}, {3.0, 4.0}}).determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantMatchesEigenvalueProductForSpd) {
  redopt::rng::Rng rng(9);
  const Matrix base = random_matrix(6, 4, rng);
  Matrix spd = base.gram();
  for (std::size_t i = 0; i < 4; ++i) spd(i, i) += 1.0;
  const auto eig = rl::symmetric_eigen(spd);
  double product = 1.0;
  for (double lambda : eig.eigenvalues.data()) product *= lambda;
  EXPECT_NEAR(LuDecomposition(spd).determinant() / product, 1.0, 1e-8);
}

TEST(Lu, SingularMatrixDetected) {
  const LuDecomposition lu(Matrix{{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(lu.invertible());
  EXPECT_THROW(lu.solve(Vector{1.0, 1.0}), redopt::PreconditionError);
  EXPECT_NEAR(lu.determinant(), 0.0, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  redopt::rng::Rng rng(10);
  const Matrix a = random_matrix(5, 5, rng);
  const Matrix prod = rl::matmul(LuDecomposition(a).inverse(), a);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-8);
}

TEST(Lu, RejectsNonSquare) {
  EXPECT_THROW(LuDecomposition(Matrix(2, 3)), redopt::PreconditionError);
}
