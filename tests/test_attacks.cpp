// Unit tests for the Byzantine attack behaviours.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/attacks.h"
#include "attacks/registry.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using attacks::AttackContext;
using linalg::Vector;

namespace {

struct ContextFixture {
  Vector estimate{0.5, -0.5};
  Vector honest_gradient{2.0, -4.0};
  std::vector<Vector> honest_gradients = {{1.0, 0.0}, {3.0, 0.0}, {2.0, 3.0}};
  rng::Rng rng{123};

  AttackContext make() {
    AttackContext ctx;
    ctx.iteration = 7;
    ctx.agent_id = 1;
    ctx.n = 4;
    ctx.f = 1;
    ctx.estimate = &estimate;
    ctx.honest_gradient = &honest_gradient;
    ctx.honest_gradients = &honest_gradients;
    ctx.rng = &rng;
    return ctx;
  }
};

}  // namespace

TEST(GradientReverse, NegatesHonestGradient) {
  ContextFixture fx;
  const attacks::GradientReverseAttack attack;
  EXPECT_EQ(attack.craft(fx.make()), (Vector{-2.0, 4.0}));
}

TEST(GradientReverse, ScaleMultiplies) {
  ContextFixture fx;
  const attacks::GradientReverseAttack attack(2.5);
  EXPECT_EQ(attack.craft(fx.make()), (Vector{-5.0, 10.0}));
  EXPECT_THROW(attacks::GradientReverseAttack(0.0), redopt::PreconditionError);
}

TEST(RandomGaussian, MatchesRequestedDimensionAndScale) {
  ContextFixture fx;
  const attacks::RandomGaussianAttack attack(200.0);
  double acc = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const Vector v = attack.craft(fx.make());
    ASSERT_EQ(v.size(), 2u);
    acc += v.norm_squared();
  }
  // E||v||^2 = d * sigma^2 = 2 * 40000.
  EXPECT_NEAR(acc / trials, 80000.0, 8000.0);
}

TEST(RandomGaussian, DeterministicGivenRngState) {
  ContextFixture fx1, fx2;
  const attacks::RandomGaussianAttack attack;
  EXPECT_EQ(attack.craft(fx1.make()), attack.craft(fx2.make()));
}

TEST(Zero, SendsZeroVector) {
  ContextFixture fx;
  const attacks::ZeroAttack attack;
  EXPECT_TRUE(attack.craft(fx.make()).is_zero());
}

TEST(LargeNorm, HasRequestedMagnitude) {
  ContextFixture fx;
  const attacks::LargeNormAttack attack(1e6);
  EXPECT_NEAR(attack.craft(fx.make()).norm(), 1e6, 1e-3);
  EXPECT_THROW(attacks::LargeNormAttack(0.0), redopt::PreconditionError);
}

TEST(LittleIsEnough, StaysWithinMeanMinusZStd) {
  ContextFixture fx;
  const attacks::LittleIsEnoughAttack attack(1.5);
  const Vector out = attack.craft(fx.make());
  // Honest gradients: mean = (2, 1); std per coordinate:
  // coord 0: values 1,3,2 -> var 2/3; coord 1: 0,0,3 -> var 2.
  EXPECT_NEAR(out[0], 2.0 - 1.5 * std::sqrt(2.0 / 3.0), 1e-9);
  EXPECT_NEAR(out[1], 1.0 - 1.5 * std::sqrt(2.0), 1e-9);
}

TEST(InnerProduct, SendsNegatedScaledHonestMean) {
  ContextFixture fx;
  const attacks::InnerProductAttack attack(2.0);
  const Vector out = attack.craft(fx.make());
  EXPECT_NEAR(out[0], -4.0, 1e-12);  // -2 * mean(1,3,2)
  EXPECT_NEAR(out[1], -2.0, 1e-12);  // -2 * mean(0,0,3)
  // The crafted vector opposes the honest mean direction.
  EXPECT_LT(linalg::dot(out, linalg::mean(fx.honest_gradients)), 0.0);
}

TEST(PoisonedCost, NoiselessVariantIsExactReverse) {
  ContextFixture fx;
  const attacks::PoisonedCostAttack attack(0.0);
  EXPECT_EQ(attack.craft(fx.make()), (Vector{-2.0, 4.0}));
}

TEST(Mimic, CopiesTargetHonestGradient) {
  ContextFixture fx;
  const attacks::MimicAttack attack(1);
  EXPECT_EQ(attack.craft(fx.make()), fx.honest_gradients[1]);
  // Rank wraps modulo the honest count.
  const attacks::MimicAttack wrapped(4);
  EXPECT_EQ(wrapped.craft(fx.make()), fx.honest_gradients[1]);
}

TEST(Mimic, IndistinguishableFromHonestValue) {
  // The crafted value IS one of the honest gradients: any per-value outlier
  // test must accept it (the attack's whole point).
  ContextFixture fx;
  const attacks::MimicAttack attack(0);
  const auto crafted = attack.craft(fx.make());
  bool matches_honest = false;
  for (const auto& g : fx.honest_gradients) matches_honest |= (crafted == g);
  EXPECT_TRUE(matches_honest);
}

TEST(Switch, SleepsThenTurnsMalicious) {
  ContextFixture fx;
  const attacks::SwitchAttack attack(attacks::make_attack("gradient_reverse"), 10);
  auto ctx = fx.make();
  ctx.iteration = 5;
  EXPECT_EQ(attack.craft(ctx), fx.honest_gradient);  // sleeper phase
  EXPECT_TRUE(attack.responds(ctx));
  ctx.iteration = 10;
  EXPECT_EQ(attack.craft(ctx), -fx.honest_gradient);  // switched
}

TEST(Switch, ForwardsRespondsToInner) {
  ContextFixture fx;
  attacks::AttackParams params;
  params.drop_after = 0;  // inner never responds
  const attacks::SwitchAttack attack(attacks::make_attack("dropout", params), 3);
  auto ctx = fx.make();
  ctx.iteration = 2;
  EXPECT_TRUE(attack.responds(ctx));
  ctx.iteration = 3;
  EXPECT_FALSE(attack.responds(ctx));
}

TEST(Switch, RejectsNullInner) {
  EXPECT_THROW(attacks::SwitchAttack(nullptr, 5), redopt::PreconditionError);
}

TEST(Dropout, RespondsUntilThreshold) {
  ContextFixture fx;
  const attacks::DropoutAttack attack(4);
  auto ctx = fx.make();
  ctx.iteration = 3;
  EXPECT_TRUE(attack.responds(ctx));
  EXPECT_EQ(attack.craft(ctx), fx.honest_gradient);  // honest while replying
  ctx.iteration = 4;
  EXPECT_FALSE(attack.responds(ctx));
}

TEST(Attacks, MissingContextFieldsThrow) {
  ContextFixture fx;
  const attacks::GradientReverseAttack attack;
  auto ctx = fx.make();
  ctx.honest_gradient = nullptr;
  EXPECT_THROW(attack.craft(ctx), redopt::PreconditionError);
  ctx = fx.make();
  ctx.rng = nullptr;
  EXPECT_THROW(attack.craft(ctx), redopt::PreconditionError);
  const attacks::LittleIsEnoughAttack lie;
  ctx = fx.make();
  ctx.honest_gradients = nullptr;
  EXPECT_THROW(lie.craft(ctx), redopt::PreconditionError);
}

TEST(AttackRegistry, ConstructsEveryRegisteredAttack) {
  for (const auto& name : attacks::attack_names()) {
    const auto attack = attacks::make_attack(name);
    ASSERT_NE(attack, nullptr) << name;
    EXPECT_EQ(attack->name(), name);
  }
}

TEST(AttackRegistry, RejectsUnknownName) {
  EXPECT_THROW(attacks::make_attack("nope"), redopt::PreconditionError);
}

TEST(AttackRegistry, ParamsReachConstructors) {
  ContextFixture fx;
  attacks::AttackParams p;
  p.scale = 3.0;
  const auto attack = attacks::make_attack("gradient_reverse", p);
  EXPECT_EQ(attack->craft(fx.make()), (Vector{-6.0, 12.0}));
}

TEST(NormCamouflage, MatchesHonestMedianNormAgainstMeanDirection) {
  ContextFixture fx;
  const attacks::NormCamouflageAttack attack;
  const Vector v = attack.craft(fx.make());
  // Honest norms are 1, 3, sqrt(13); the median is 3, and the direction
  // opposes the honest mean (2, 1)/|(2, 1)|.
  EXPECT_NEAR(v.norm(), 3.0, 1e-12);
  const Vector mean{2.0, 1.0};
  EXPECT_LT(linalg::dot(v, mean), 0.0);
  // Colinear with the mean: the attack hides inside the honest norm range.
  const double cross = v[0] * mean[1] - v[1] * mean[0];
  EXPECT_NEAR(cross, 0.0, 1e-12);
}

TEST(NormCamouflage, AggressionScalesTheNorm) {
  ContextFixture fx;
  const attacks::NormCamouflageAttack attack(0.5);
  EXPECT_NEAR(attack.craft(fx.make()).norm(), 1.5, 1e-12);
  EXPECT_THROW(attacks::NormCamouflageAttack(0.0), redopt::PreconditionError);
}

TEST(NormCamouflage, ZeroMeanFallsBackToZeroVector) {
  ContextFixture fx;
  fx.honest_gradients = {{1.0, 0.0}, {-1.0, 0.0}};
  const attacks::NormCamouflageAttack attack;
  EXPECT_EQ(attack.craft(fx.make()), (Vector{0.0, 0.0}));
}

TEST(OrthogonalDrift, OutputIsOrthogonalToHonestMean) {
  ContextFixture fx;
  const attacks::OrthogonalDriftAttack attack;
  const Vector v = attack.craft(fx.make());
  const Vector mean{2.0, 1.0};
  EXPECT_NEAR(linalg::dot(v, mean), 0.0, 1e-9);
  // Norm matches the average honest norm scaled by aggression (= 1).
  const double avg = (1.0 + 3.0 + std::sqrt(13.0)) / 3.0;
  EXPECT_NEAR(v.norm(), avg, 1e-9);
}

TEST(OrthogonalDrift, DeterministicGivenRngState) {
  ContextFixture fx1, fx2;
  const attacks::OrthogonalDriftAttack attack;
  EXPECT_EQ(attack.craft(fx1.make()), attack.craft(fx2.make()));
  EXPECT_THROW(attacks::OrthogonalDriftAttack(-1.0), redopt::PreconditionError);
}

TEST(AdaptiveAttacks, RegisteredInAttackFactory) {
  const auto names = attacks::attack_names();
  for (const char* name : {"camouflage", "orthogonal_drift"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end()) << name;
    attacks::AttackParams params;
    params.aggression = 2.0;
    const auto attack = attacks::make_attack(name, params);
    EXPECT_EQ(attack->name(), name);
  }
}
