// Tests for tools/redopt-analyze: fixture trees driven through
// analyze_memory(), one violating and one clean fixture per pass, plus
// suppression-directive and baseline round-trip coverage.
//
// Fixtures are in-memory files under pseudo-paths; module layering and
// include resolution behave exactly as on the real tree because the
// model builder only sees the map it is given.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analyze.h"

using redopt::analyze::analyze_memory;
using redopt::analyze::Finding;

namespace {

using Sources = std::map<std::string, std::vector<std::string>>;

std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

const Finding* find_rule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const auto& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

}  // namespace

TEST(AnalyzeRuleTable, EveryRuleHasIdSummaryRationale) {
  const auto& rules = redopt::analyze::rules();
  ASSERT_EQ(rules.size(), 6u);
  std::vector<std::string> ids;
  for (const auto& r : rules) {
    ids.emplace_back(r.id);
    EXPECT_NE(std::string(r.summary), "");
    EXPECT_NE(std::string(r.rationale), "");
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"A1", "A2", "B1", "C1", "D1", "D2"}));
}

// ---------------------------------------------------------------------------
// A1: module layering
// ---------------------------------------------------------------------------

TEST(AnalyzeA1, FlagsIncludeThatClimbsTheDag) {
  const Sources sources = {
      {"src/linalg/foo.h", {"#pragma once", "#include \"core/bar.h\""}},
      {"src/core/bar.h", {"#pragma once"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(count_rule(findings, "A1"), 1u);
  const auto* f = find_rule(findings, "A1");
  EXPECT_EQ(f->file, "src/linalg/foo.h");
  EXPECT_EQ(f->line, 2u);
  EXPECT_EQ(f->key, "src/core/bar.h");
}

TEST(AnalyzeA1, AllowsDownwardInclude) {
  const Sources sources = {
      {"src/core/bar.h", {"#pragma once", "#include \"linalg/foo.h\""}},
      {"src/linalg/foo.h", {"#pragma once"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "A1"), 0u);
}

TEST(AnalyzeA1, AllowsSameRankException) {
  // data -> core is an explicit same-rank allowance.
  const Sources sources = {
      {"src/data/maker.h", {"#pragma once", "#include \"core/bar.h\""}},
      {"src/core/bar.h", {"#pragma once"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "A1"), 0u);
}

TEST(AnalyzeA1, FlagsSrcDependingOnTools) {
  const Sources sources = {
      {"src/core/bar.cpp", {"#include \"analysis-common/finding.h\""}},
      {"tools/analysis-common/finding.h", {"#pragma once"}},
  };
  ASSERT_EQ(count_rule(analyze_memory(sources), "A1"), 1u);
}

TEST(AnalyzeA1, ToolsMayIncludeAnything) {
  const Sources sources = {
      {"tools/widget/main.cpp", {"#include \"transport/session.h\""}},
      {"src/transport/session.h", {"#pragma once"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "A1"), 0u);
}

// ---------------------------------------------------------------------------
// A2: include cycles
// ---------------------------------------------------------------------------

TEST(AnalyzeA2, FlagsIncludeCycle) {
  const Sources sources = {
      {"src/core/a.h", {"#pragma once", "#include \"core/b.h\""}},
      {"src/core/b.h", {"#pragma once", "#include \"core/a.h\""}},
  };
  EXPECT_GE(count_rule(analyze_memory(sources), "A2"), 1u);
}

TEST(AnalyzeA2, AllowsAcyclicChain) {
  const Sources sources = {
      {"src/core/a.h", {"#pragma once", "#include \"core/b.h\""}},
      {"src/core/b.h", {"#pragma once", "#include \"core/c.h\""}},
      {"src/core/c.h", {"#pragma once"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "A2"), 0u);
}

// ---------------------------------------------------------------------------
// B1: floating-point accumulation authority
// ---------------------------------------------------------------------------

TEST(AnalyzeB1, FlagsLoopAccumulationOutsideAuthority) {
  const Sources sources = {
      {"src/core/foo.cpp",
       {"double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];",
        "  return acc;",
        "}"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(count_rule(findings, "B1"), 1u);
  const auto* f = find_rule(findings, "B1");
  EXPECT_EQ(f->line, 3u);
  EXPECT_EQ(f->key, "acc");
}

TEST(AnalyzeB1, AllowsTheKernelAuthority) {
  const Sources sources = {
      {"src/linalg/kernels.cpp",
       {"double sum(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];",
        "  return acc;",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 0u);
}

TEST(AnalyzeB1, AllowsScalarRecurrence) {
  // RHS independent of the loop: a geometric step, not a reduction.
  const Sources sources = {
      {"src/core/foo.cpp",
       {"double decay() {",
        "  double x = 1.0;",
        "  for (int i = 0; i < 10; ++i) x *= 0.5;",
        "  return x;",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 0u);
}

TEST(AnalyzeB1, AllowsLoopLocalAccumulator) {
  // Declared inside the loop body: reset every iteration, no order choice.
  const Sources sources = {
      {"src/core/foo.cpp",
       {"void f(const double* xs, double* out, std::size_t n) {",
        "  for (std::size_t i = 0; i < n; ++i) {",
        "    double t = 0.0;",
        "    t += xs[i];",
        "    out[i] = t;",
        "  }",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 0u);
}

TEST(AnalyzeB1, SuppressedByAllowOnLine) {
  const Sources sources = {
      {"src/core/foo.cpp",
       {"double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];  // redopt-analyze: allow(B1)",
        "  return acc;",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 0u);
}

TEST(AnalyzeB1, SuppressedByAllowFile) {
  const Sources sources = {
      {"src/core/foo.cpp",
       {"// redopt-analyze: allow-file(B1)",
        "double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];",
        "  return acc;",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 0u);
}

TEST(AnalyzeB1, LintDirectiveDoesNotSuppressAnalyze) {
  // The two tools have separate directive namespaces.
  const Sources sources = {
      {"src/core/foo.cpp",
       {"double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];  // redopt-lint: allow(B1)",
        "  return acc;",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "B1"), 1u);
}

// ---------------------------------------------------------------------------
// C1: parallel capture safety
// ---------------------------------------------------------------------------

TEST(AnalyzeC1, FlagsByRefCaptureWrittenWithoutIndex) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(const double* xs, std::size_t n) {",
        "  double total = 0.0;",
        "  runtime::parallel_for(0, n, [&](std::size_t i) { total = total + xs[i]; });",
        "}"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(count_rule(findings, "C1"), 1u);
  const auto* f = find_rule(findings, "C1");
  EXPECT_EQ(f->line, 3u);
  EXPECT_EQ(f->key, "total");
}

TEST(AnalyzeC1, FlagsExplicitRefCapture) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(const double* xs, std::size_t n) {",
        "  double total = 0.0;",
        "  runtime::parallel_for(0, n, [&total, xs](std::size_t i) { total += xs[i]; });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 1u);
}

TEST(AnalyzeC1, AllowsIndexDisjointWrite) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(const double* xs, double* out, std::size_t n) {",
        "  runtime::parallel_for(0, n, [&](std::size_t i) { out[i] = xs[i] * 2.0; });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, AllowsWriteIndexedByBodyLocal) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(std::vector<double>& slots, const std::size_t* ids, std::size_t n) {",
        "  runtime::parallel_for(0, n, [&](std::size_t j) {",
        "    const std::size_t i = ids[j];",
        "    slots[i] = 1.0;",
        "  });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, AllowsByValueCapture) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(double scale, double* out, std::size_t n) {",
        "  runtime::parallel_for(0, n, [scale, out](std::size_t i) { out[i] = scale; });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, IgnoresWritesToLambdaLocals) {
  const Sources sources = {
      {"src/dgd/worker.cpp",
       {"void run(double* out, std::size_t n) {",
        "  runtime::parallel_for(0, n, [&](std::size_t i) {",
        "    double t = 0.0;",
        "    t = t + 1.0;",
        "    out[i] = t;",
        "  });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, NestedSerialLambdaIsNotAParallelSite) {
  // A callback nested inside the parallel body writes an outer-lambda
  // local: safe (each parallel iteration owns its own copy).
  const Sources sources = {
      {"src/core/search.cpp",
       {"void run(std::size_t chunks) {",
        "  runtime::parallel_reduce(0, chunks, Best{}, [&](std::size_t c) {",
        "    double r_t = 0.0;",
        "    util::for_each_subset_of(c, 2, [&](const Subset& s) {",
        "      r_t = score(s);",
        "      return true;",
        "    });",
        "    return r_t;",
        "  });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, MemberWriteTargetsTheObject) {
  // `local.field = v` mutates `local`, which is a body local: safe.
  const Sources sources = {
      {"src/core/search.cpp",
       {"void run(std::size_t n) {",
        "  runtime::parallel_reduce(0, n, Best{}, [&](std::size_t c) {",
        "    Best local;",
        "    local.score = eval(c);",
        "    return local;",
        "  });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

TEST(AnalyzeC1, StructuredBindingIsNotAWrite) {
  const Sources sources = {
      {"src/core/search.cpp",
       {"void run(std::size_t n, double* out) {",
        "  runtime::parallel_for(0, n, [&](std::size_t c) {",
        "    const auto [lo, hi] = bounds(c);",
        "    out[c] = hi - lo;",
        "  });",
        "}"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "C1"), 0u);
}

// ---------------------------------------------------------------------------
// D1: header self-containment
// ---------------------------------------------------------------------------

namespace {

/// A core/ header defining class Gadget, for the D1 fixtures.
Sources gadget_tree() {
  return {
      {"src/core/gadget.h",
       {"#pragma once",
        "namespace redopt::core {",
        "class Gadget {",
        " public:",
        "  int v = 0;",
        "};",
        "}  // namespace redopt::core"}},
  };
}

}  // namespace

TEST(AnalyzeD1, FlagsReferenceWithoutInclude) {
  Sources sources = gadget_tree();
  sources["src/filters/user.h"] = {"#pragma once", "core::Gadget make_gadget();"};
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(count_rule(findings, "D1"), 1u);
  const auto* f = find_rule(findings, "D1");
  EXPECT_EQ(f->file, "src/filters/user.h");
  EXPECT_EQ(f->key, "core::Gadget");
}

TEST(AnalyzeD1, AllowsDirectInclude) {
  Sources sources = gadget_tree();
  sources["src/filters/user.h"] = {"#pragma once", "#include \"core/gadget.h\"",
                                   "core::Gadget make_gadget();"};
  EXPECT_EQ(count_rule(analyze_memory(sources), "D1"), 0u);
}

TEST(AnalyzeD1, AllowsTransitiveInclude) {
  Sources sources = gadget_tree();
  sources["src/filters/base.h"] = {"#pragma once", "#include \"core/gadget.h\""};
  sources["src/filters/user.h"] = {"#pragma once", "#include \"filters/base.h\"",
                                   "core::Gadget make_gadget();"};
  EXPECT_EQ(count_rule(analyze_memory(sources), "D1"), 0u);
}

TEST(AnalyzeD1, AllowsLocalForwardDeclaration) {
  Sources sources = gadget_tree();
  sources["src/filters/user.h"] = {"#pragma once", "namespace redopt::core {", "class Gadget;",
                                   "}  // namespace redopt::core",
                                   "void consume(const core::Gadget& g);"};
  EXPECT_EQ(count_rule(analyze_memory(sources), "D1"), 0u);
}

TEST(AnalyzeD1, UnknownSymbolsStayQuiet) {
  // No defining header in the model: conservative, no finding.
  const Sources sources = {
      {"src/filters/user.h", {"#pragma once", "core::Mystery make();"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "D1"), 0u);
}

// ---------------------------------------------------------------------------
// D2: definitions in headers
// ---------------------------------------------------------------------------

TEST(AnalyzeD2, FlagsNonInlineDefinition) {
  const Sources sources = {
      {"src/core/twice.h",
       {"#pragma once", "namespace redopt::core {", "double twice(double x) { return 2.0 * x; }",
        "}  // namespace redopt::core"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(count_rule(findings, "D2"), 1u);
  const auto* f = find_rule(findings, "D2");
  EXPECT_EQ(f->line, 3u);
  EXPECT_EQ(f->key, "twice");
}

TEST(AnalyzeD2, AllowsInlineDefinition) {
  const Sources sources = {
      {"src/core/twice.h",
       {"#pragma once", "namespace redopt::core {",
        "inline double twice(double x) { return 2.0 * x; }", "}  // namespace redopt::core"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "D2"), 0u);
}

TEST(AnalyzeD2, AllowsTemplateDefinition) {
  const Sources sources = {
      {"src/core/twice.h",
       {"#pragma once", "namespace redopt::core {", "template <class T>",
        "T twice(T x) { return x + x; }", "}  // namespace redopt::core"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "D2"), 0u);
}

TEST(AnalyzeD2, MemberFunctionsAreNotNamespaceScope) {
  const Sources sources = {
      {"src/core/gadget.h",
       {"#pragma once", "namespace redopt::core {", "class Gadget {", " public:",
        "  int value() const { return v_; }", " private:", "  int v_ = 0;", "};",
        "}  // namespace redopt::core"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "D2"), 0u);
}

TEST(AnalyzeD2, MacroContinuationLinesAreNotCode) {
  // A multi-line do/while macro must not parse as a function definition
  // (regression: only the first directive line used to be blanked).
  const Sources sources = {
      {"src/core/check.h",
       {"#pragma once",
        "#define CORE_CHECK(cond)  \\",
        "  do {                    \\",
        "    if (!(cond)) {        \\",
        "    }                     \\",
        "  } while (false)"}},
  };
  EXPECT_EQ(count_rule(analyze_memory(sources), "D2"), 0u);
}

// ---------------------------------------------------------------------------
// Baseline round-trip
// ---------------------------------------------------------------------------

TEST(AnalyzeBaseline, ParsesTabSeparatedEntries) {
  const auto entries = redopt::analyze::parse_baseline(
      {"# comment", "", "B1\tsrc/rng/rng.cpp\tnorm2\t# rng sits below linalg"});
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].rule, "B1");
  EXPECT_EQ(entries[0].file, "src/rng/rng.cpp");
  EXPECT_EQ(entries[0].key, "norm2");
  EXPECT_EQ(entries[0].justification, "# rng sits below linalg");
}

TEST(AnalyzeBaseline, RenderParseApplyRoundTrip) {
  const Sources sources = {
      {"src/core/foo.cpp",
       {"double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];",
        "  return acc;",
        "}"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(findings.size(), 1u);

  const std::string rendered = redopt::analyze::render_baseline(findings);
  std::vector<std::string> lines;
  std::string line;
  for (char c : rendered) {
    if (c == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  const auto entries = redopt::analyze::parse_baseline(lines);
  ASSERT_EQ(entries.size(), 1u);

  std::vector<redopt::analyze::BaselineEntry> stale;
  const auto fresh = redopt::analyze::apply_baseline(findings, entries, &stale);
  EXPECT_TRUE(fresh.empty());
  EXPECT_TRUE(stale.empty());
}

TEST(AnalyzeBaseline, MatchesByKeyNotLine) {
  const Sources sources = {
      {"src/core/foo.cpp",
       {"// a comment that moves the finding to a different line",
        "double total(const double* xs, std::size_t n) {",
        "  double acc = 0.0;",
        "  for (std::size_t i = 0; i < n; ++i) acc += xs[i];",
        "  return acc;",
        "}"}},
  };
  const auto findings = analyze_memory(sources);
  ASSERT_EQ(findings.size(), 1u);
  const auto entries =
      redopt::analyze::parse_baseline({"B1\tsrc/core/foo.cpp\tacc\t# accepted for the fixture"});
  std::vector<redopt::analyze::BaselineEntry> stale;
  EXPECT_TRUE(redopt::analyze::apply_baseline(findings, entries, &stale).empty());
  EXPECT_TRUE(stale.empty());
}

TEST(AnalyzeBaseline, ReportsStaleEntries) {
  const auto entries =
      redopt::analyze::parse_baseline({"B1\tsrc/core/gone.cpp\tacc\t# fixed long ago"});
  std::vector<redopt::analyze::BaselineEntry> stale;
  EXPECT_TRUE(redopt::analyze::apply_baseline({}, entries, &stale).empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].file, "src/core/gone.cpp");
}
