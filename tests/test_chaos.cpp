// Property-based chaos suite: generated fault-injection scenarios must
// satisfy the paper's convergence guarantees (Theorem 3 regime) or degrade
// gracefully, bit-identically at any thread count.  A failing scenario is
// shrunk to a minimal JSON reproducer replayable with tools/chaos-replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"
#include "filters/gradient_filter.h"
#include "filters/registry.h"
#include "runtime/runtime.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

constexpr std::uint64_t kMasterSeed = 42;
constexpr std::size_t kScenarioCount = 220;  // the gate requires >= 200

/// Shrinks a failing scenario and renders the reproducer for the failure
/// message, so the fix loop is: save the JSON, `chaos-replay --scenario`.
std::string reproducer_for(const chaos::Scenario& failing,
                           const chaos::ScenarioPredicate& still_fails) {
  const chaos::ShrinkOutcome outcome = chaos::shrink(failing, still_fails);
  return outcome.scenario.to_json();
}

}  // namespace

TEST(ChaosSuite, GeneratedScenariosSatisfyProperties) {
  chaos::Generator generator(chaos::GeneratorSpec{}, kMasterSeed);
  std::size_t guaranteed = 0;
  std::size_t degraded = 0;
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    const chaos::Scenario scenario = generator.next();
    (scenario.guaranteed() ? guaranteed : degraded) += 1;
    const chaos::ScenarioResult result = chaos::run_scenario(scenario);
    const chaos::PropertyReport report = chaos::check_properties(scenario, result);
    if (!report.ok) {
      const auto still_fails = [](const chaos::Scenario& c) {
        return !chaos::check_properties(c, chaos::run_scenario(c)).ok;
      };
      ADD_FAILURE() << scenario.name << ": " << report.summary()
                    << "\nreproducer: " << reproducer_for(scenario, still_fails);
    }
  }
  // The generator must exercise both regimes, not collapse into one.
  EXPECT_GE(guaranteed, 100u);
  EXPECT_GE(degraded, 60u);
  EXPECT_EQ(guaranteed + degraded, kScenarioCount);
}

TEST(ChaosSuite, TrajectoriesAreBitIdenticalAcrossThreadCounts) {
  const std::size_t restore = runtime::threads();
  chaos::Generator generator(chaos::GeneratorSpec{}, kMasterSeed);
  for (std::size_t k = 0; k < kScenarioCount; ++k) {
    const chaos::Scenario scenario = generator.next();
    if (k % 8 != 0) continue;
    const chaos::ScenarioResult base = chaos::run_scenario(scenario);
    const chaos::ScenarioResult rerun = chaos::run_scenario(scenario);
    EXPECT_TRUE(chaos::bit_identical(base, rerun)) << scenario.name << ": rerun diverged";
    if (k % 16 == 0) {
      runtime::set_threads(2);
      const chaos::ScenarioResult threaded = chaos::run_scenario(scenario);
      runtime::set_threads(restore);
      EXPECT_TRUE(chaos::bit_identical(base, threaded))
          << scenario.name << ": thread count changed the trajectory";
    }
  }
}

TEST(ChaosSuite, ScenarioJsonRoundTrips) {
  chaos::Generator generator(chaos::GeneratorSpec{}, kMasterSeed);
  for (std::size_t k = 0; k < 32; ++k) {
    const chaos::Scenario scenario = generator.next();
    const std::string json = scenario.to_json();
    const chaos::Scenario parsed = chaos::scenario_from_json(json);
    EXPECT_EQ(parsed.to_json(), json);
  }
}

TEST(ChaosSuite, MalformedScenarioJsonThrowsTypedErrors) {
  EXPECT_THROW(chaos::scenario_from_json("{"), PreconditionError);
  EXPECT_THROW(chaos::scenario_from_json(""), PreconditionError);
  EXPECT_THROW(chaos::scenario_from_json("[1,2,3]"), PreconditionError);
  chaos::Scenario base;
  const std::string json = base.to_json();
  // Unknown members and trailing garbage are rejected, not ignored.
  EXPECT_THROW(chaos::scenario_from_json(json + "x"), PreconditionError);
  std::string with_unknown = json;
  with_unknown.insert(1, "\"bogus\":1,");
  EXPECT_THROW(chaos::scenario_from_json(with_unknown), PreconditionError);
}

namespace {

/// Deliberately sign-flipped CGE: keeps the n - f LARGEST-norm gradients
/// instead of the smallest.  The suite must catch this and shrink the
/// failure to a small reproducer — the acceptance test for the whole
/// chaos pipeline.
class BrokenCge : public filters::GradientFilter {
 public:
  BrokenCge(std::size_t n, std::size_t f) : n_(n), f_(f) {
    REDOPT_REQUIRE(n_ > 2 * f_, "broken cge needs n > 2f");
  }

  Vector apply(const std::vector<Vector>& gradients) const override {
    filters::detail::check_inputs(gradients, n_, "broken_cge");
    std::vector<double> norms(n_);
    for (std::size_t i = 0; i < n_; ++i) norms[i] = gradients[i].norm();
    std::vector<std::size_t> order(n_);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (norms[a] != norms[b]) return norms[a] > norms[b];  // flipped
      return a < b;
    });
    Vector out(gradients[0].size());
    for (std::size_t k = 0; k < n_ - f_; ++k) out += gradients[order[k]];
    return out;
  }

  std::string name() const override { return "broken_cge"; }
  std::size_t expected_inputs() const override { return n_; }

 private:
  std::size_t n_;
  std::size_t f_;
};

chaos::ExecutorOptions broken_cge_options() {
  chaos::ExecutorOptions options;
  options.filter_factory = [](const std::string& name, std::size_t n,
                              std::size_t f) -> filters::FilterPtr {
    if (name == "cge") return std::make_shared<BrokenCge>(n, f);
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    return filters::FilterPtr(filters::make_filter(name, fp));
  };
  return options;
}

}  // namespace

TEST(ChaosSuite, BrokenFilterIsCaughtAndShrunkToSmallReproducer) {
  const chaos::ExecutorOptions broken = broken_cge_options();
  // "No meaningful progress" — deliberately looser than the guaranteed-
  // regime bound so it stays meaningful at reproducer round counts.
  const auto fails_under_broken = [&broken](const chaos::Scenario& c) {
    const chaos::ScenarioResult r = chaos::run_scenario(c, broken);
    if (r.nonfinite) return true;
    return r.final_distance > std::max(0.5 * r.initial_distance, 0.08);
  };

  chaos::GeneratorSpec spec;
  spec.max_n = 10;
  spec.max_f = 2;
  spec.filters = {"cge"};
  spec.problems = {"mean", "block_regression"};
  spec.violate_probability = 0.0;  // guaranteed regime only
  chaos::Generator generator(spec, kMasterSeed);

  bool found = false;
  chaos::Scenario failing;
  for (std::size_t k = 0; k < 80 && !found; ++k) {
    const chaos::Scenario candidate = generator.next();
    if (!fails_under_broken(candidate)) continue;
    // Only count failures the *correct* filter survives: the defect must
    // be attributable to the filter, not to the scenario itself.
    const chaos::ScenarioResult honest = chaos::run_scenario(candidate);
    if (!chaos::check_properties(candidate, honest).ok) continue;
    failing = candidate;
    found = true;
  }
  ASSERT_TRUE(found) << "no generated scenario exposed the sign-flipped CGE";

  const chaos::ShrinkOutcome outcome = chaos::shrink(failing, fails_under_broken);
  EXPECT_GT(outcome.improvements, 0u);
  EXPECT_LE(outcome.scenario.n, 8u) << outcome.scenario.to_json();
  EXPECT_LE(outcome.scenario.rounds, 20u) << outcome.scenario.to_json();

  // The reproducer replays from its JSON form and still fails.
  const chaos::Scenario replayed = chaos::scenario_from_json(outcome.scenario.to_json());
  EXPECT_EQ(replayed.to_json(), outcome.scenario.to_json());
  EXPECT_TRUE(fails_under_broken(replayed));
}

TEST(ChaosSuite, ExactAlgorithmRecoversHonestArgminUnderRedundancy) {
  chaos::Scenario scenario;
  scenario.name = "exact-check";
  scenario.seed = 9;
  scenario.problem = "mean";
  scenario.n = 6;
  scenario.f = 1;
  scenario.d = 3;
  scenario.noise_sigma = 0.0;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 2;
  scenario.faults.push_back(byz);
  EXPECT_LE(chaos::exact_algorithm_distance(scenario), 1e-6);

  chaos::Scenario block = scenario;
  block.problem = "block_regression";
  EXPECT_LE(chaos::exact_algorithm_distance(block), 1e-6);
}

TEST(ChaosSuite, GeneratorIsDeterministicPerSeed) {
  chaos::Generator a(chaos::GeneratorSpec{}, 7);
  chaos::Generator b(chaos::GeneratorSpec{}, 7);
  chaos::Generator c(chaos::GeneratorSpec{}, 8);
  bool seeds_differ = false;
  for (std::size_t k = 0; k < 25; ++k) {
    const std::string left = a.next().to_json();
    EXPECT_EQ(left, b.next().to_json());
    if (left != c.next().to_json()) seeds_differ = true;
  }
  EXPECT_TRUE(seeds_differ);
}

TEST(ChaosSuite, ShrinkerMinimizesAStructuralFailure) {
  chaos::Scenario big;
  big.name = "structural";
  big.seed = 3;
  big.n = 12;
  big.f = 3;
  big.d = 4;
  big.rounds = 110;
  big.channel.drop_probability = 0.1;
  big.channel.duplicate_probability = 0.1;
  big.channel.max_delay = 3;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 0;
  byz.attack = "large_norm";
  byz.attack_param = 1e4;
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultSpec::Kind::kCrash;
  crash.agent = 1;
  crash.from = 10;
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 2;
  straggler.staleness = 6;
  big.faults = {byz, crash, straggler};
  big.validate();

  // Structural predicate (no execution): the failure needs only the
  // large_norm attacker, so everything else should shrink away.
  const auto has_large_norm = [](const chaos::Scenario& c) {
    return std::any_of(c.faults.begin(), c.faults.end(), [](const chaos::FaultSpec& s) {
      return s.kind == chaos::FaultSpec::Kind::kByzantine && s.attack == "large_norm";
    });
  };
  const chaos::ShrinkOutcome outcome = chaos::shrink(big, has_large_norm);
  EXPECT_TRUE(has_large_norm(outcome.scenario));
  EXPECT_GT(outcome.improvements, 0u);
  EXPECT_EQ(outcome.scenario.faults.size(), 1u);
  EXPECT_LE(outcome.scenario.rounds, 5u);
  EXPECT_LT(outcome.scenario.n, big.n);
  EXPECT_EQ(outcome.scenario.channel.drop_probability, 0.0);
  EXPECT_EQ(outcome.scenario.channel.max_delay, 0u);
}

TEST(ChaosSuite, ShrinkerRejectsPassingInput) {
  chaos::Scenario base;
  const auto never_fails = [](const chaos::Scenario&) { return false; };
  EXPECT_THROW(chaos::shrink(base, never_fails), PreconditionError);
}

TEST(ChaosSuite, PropertiesFlagNonFiniteTrajectories) {
  chaos::Scenario scenario;
  chaos::ScenarioResult result;
  result.reference = Vector(scenario.d);
  result.nonfinite = true;
  result.final_distance = std::numeric_limits<double>::infinity();
  const chaos::PropertyReport report = chaos::check_properties(scenario, result);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.summary().find("finite"), std::string::npos);
}

TEST(ChaosSuite, ExecutorCountsEveryFaultChannel) {
  chaos::Scenario scenario;
  scenario.name = "counters";
  scenario.seed = 11;
  scenario.problem = "mean";
  scenario.filter = "cge";
  scenario.n = 8;
  scenario.f = 2;
  scenario.d = 2;
  scenario.rounds = 80;
  scenario.channel.drop_probability = 0.2;
  scenario.channel.duplicate_probability = 0.2;
  scenario.channel.max_delay = 2;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 0;
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultSpec::Kind::kCrash;
  crash.agent = 1;
  crash.from = 5;
  crash.until = 40;
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 2;
  straggler.staleness = 3;
  scenario.faults = {byz, crash, straggler};
  scenario.validate();

  const chaos::ScenarioResult result = chaos::run_scenario(scenario);
  EXPECT_GT(result.byzantine_replies, 0u);
  EXPECT_GT(result.crashed_absences, 0u);
  EXPECT_GT(result.stale_replies, 0u);
  EXPECT_GT(result.dropped_replies, 0u);
  EXPECT_GT(result.delayed_replies, 0u);
  EXPECT_GT(result.duplicated_replies, 0u);
  // Crash windows end: agent 1 recovers, so the absence count is bounded.
  EXPECT_LE(result.crashed_absences, 35u);
}

TEST(ChaosSuite, AdaptiveAttacksAreRegisteredInScenarioVocabulary) {
  const auto& names = chaos::scenario_attack_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "camouflage"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "orthogonal_drift"), names.end());
}
