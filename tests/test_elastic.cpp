// Behavioral integration tests for the elastic session layer: streaming
// least-squares + membership churn + the concurrent serving path.
//
// Every guarantee here is asserted end to end over multi-round runs —
// convergence bounds under seeded churn, exact membership accounting,
// f re-derivation when the live set shrinks, degradation-then-recovery
// through a redundancy dip, and bit-identity of whole sessions across
// the in-process oracle, both transport backends, and thread counts.
// No existence checks: a counter is compared against an independent fold
// of the schedule, a manifest against another backend's bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"
#include "elastic/membership.h"
#include "elastic/serving.h"
#include "elastic/session.h"
#include "filters/gradient_filter.h"
#include "filters/registry.h"
#include "linalg/vector.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "transport/session.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

constexpr std::uint64_t kSeed = 11;

void reset_telemetry() {
  telemetry::registry().reset();
  telemetry::span_log().clear();
  telemetry::set_enabled(true);
}

std::string stable_manifest(const elastic::ElasticSession& session) {
  return telemetry::stable_json_projection(elastic::elastic_manifest_json(session));
}

std::string stable_trace(const elastic::ElasticSession& session) {
  return telemetry::stable_json_projection(elastic::elastic_trace_json(session));
}

/// Independent fold of the membership schedule the counters must match.
struct ScheduleFold {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t member_agent_rounds = 0;
  std::uint64_t absent_agent_rounds = 0;
  std::uint64_t f_rederivation_rounds = 0;
  std::uint64_t rounds_below_redundancy = 0;
};

ScheduleFold fold_schedule(const chaos::Scenario& s) {
  ScheduleFold fold;
  for (std::size_t t = 0; t < s.rounds; ++t) {
    for (std::size_t agent = 0; agent < s.n; ++agent) {
      const bool now = s.member_at(agent, t);
      if (now) {
        ++fold.member_agent_rounds;
      } else {
        ++fold.absent_agent_rounds;
      }
      if (t > 0) {
        const bool before = s.member_at(agent, t - 1);
        if (now && !before) ++fold.joins;
        if (!now && before) ++fold.leaves;
      }
    }
    if (s.derived_f_at(t) < s.f) ++fold.f_rederivation_rounds;
    if (!s.redundant_at(t)) ++fold.rounds_below_redundancy;
  }
  return fold;
}

std::uint64_t total_stream_rows(const chaos::Scenario& s) {
  std::uint64_t rows = 0;
  for (const chaos::StreamEvent& e : s.stream) rows += e.rows;
  return rows;
}

chaos::MembershipEvent membership_event(chaos::MembershipEvent::Kind kind, std::size_t agent,
                                        std::size_t round) {
  chaos::MembershipEvent e;
  e.kind = kind;
  e.agent = agent;
  e.round = round;
  return e;
}

/// A CGE whose output is negated: every step ascends.  Injected through
/// ElasticOptions::filter_factory to prove the churn property checker
/// actually fires on a behavioral regression, not just on crashes.
class SignFlippedFilter final : public filters::GradientFilter {
 public:
  explicit SignFlippedFilter(filters::FilterPtr inner) : inner_(std::move(inner)) {}

  Vector apply(const std::vector<Vector>& gradients) const override {
    return -inner_->apply(gradients);
  }
  std::string name() const override { return "sign_flipped"; }
  std::size_t expected_inputs() const override { return inner_->expected_inputs(); }

 private:
  filters::FilterPtr inner_;
};

elastic::ElasticOptions sign_flipped_options() {
  elastic::ElasticOptions options;
  options.filter_factory = [](const std::string& name, std::size_t n,
                              std::size_t f) -> filters::FilterPtr {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    return std::make_shared<SignFlippedFilter>(filters::FilterPtr(filters::make_filter(name, fp)));
  };
  return options;
}

}  // namespace

// ---------------------------------------------------------------------------
// Membership schedules and scenario plumbing.
// ---------------------------------------------------------------------------

TEST(ElasticMembership, ScheduleMatchesScenarioPointQueriesEverywhere) {
  for (const chaos::Scenario& s :
       {elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed),
        elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed),
        elastic::make_redundancy_dip_scenario(kSeed)}) {
    const elastic::MembershipSchedule schedule(s);
    ASSERT_EQ(schedule.rounds(), s.rounds);
    for (std::size_t t = 0; t < s.rounds; ++t) {
      ASSERT_EQ(schedule.members(t), s.members_at(t)) << s.name << " round " << t;
      ASSERT_EQ(schedule.count(t), s.member_count_at(t)) << s.name << " round " << t;
      ASSERT_EQ(schedule.derived_f(t), s.derived_f_at(t)) << s.name << " round " << t;
      ASSERT_EQ(schedule.redundant(t), s.redundant_at(t)) << s.name << " round " << t;
      for (std::size_t agent = 0; agent < s.n; ++agent) {
        ASSERT_EQ(schedule.member(agent, t), s.member_at(agent, t))
            << s.name << " agent " << agent << " round " << t;
      }
    }
    // joins_at/leaves_at summed over all rounds reproduce the flip fold.
    const ScheduleFold fold = fold_schedule(s);
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    for (std::size_t t = 0; t < s.rounds; ++t) {
      joins += schedule.joins_at(t);
      leaves += schedule.leaves_at(t);
    }
    EXPECT_EQ(joins, fold.joins) << s.name;
    EXPECT_EQ(leaves, fold.leaves) << s.name;
  }
}

TEST(ElasticScenarioIo, ChurnAndStreamEventsRoundTripByteExactly) {
  for (const chaos::Scenario& s :
       {elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed),
        elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed),
        elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed),
        elastic::make_redundancy_dip_scenario(kSeed)}) {
    const std::string json = s.to_json();
    const chaos::Scenario parsed = chaos::scenario_from_json(json);
    EXPECT_EQ(parsed.to_json(), json) << s.name;
    EXPECT_EQ(parsed.membership.size(), s.membership.size());
    EXPECT_EQ(parsed.stream.size(), s.stream.size());
  }
  // Event-free scenarios keep the historical serialized form: no
  // membership/stream members at all, so old goldens stay byte-stable.
  chaos::Scenario plain;
  plain.name = "plain";
  const std::string json = plain.to_json();
  EXPECT_EQ(json.find("membership"), std::string::npos);
  EXPECT_EQ(json.find("stream"), std::string::npos);
}

TEST(ElasticScenarioIo, ValidationRejectsMalformedEventSchedules) {
  using Kind = chaos::MembershipEvent::Kind;
  const chaos::Scenario base = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, 1);

  {  // unsorted (round, agent) order
    chaos::Scenario s = base;
    std::swap(s.membership.front(), s.membership.back());
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // non-alternating kinds for one agent
    chaos::Scenario s = base;
    s.membership = {membership_event(Kind::kLeave, 2, 10), membership_event(Kind::kLeave, 2, 20)};
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // round 0 is implicit initial membership, not an event round
    chaos::Scenario s = base;
    s.membership = {membership_event(Kind::kLeave, 2, 0)};
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // event at/after the final round
    chaos::Scenario s = base;
    s.membership = {membership_event(Kind::kLeave, 2, s.rounds)};
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // the live set must never empty out
    chaos::Scenario s = base;
    s.membership.clear();
    for (std::size_t agent = 0; agent < s.n; ++agent) {
      s.membership.push_back(membership_event(Kind::kLeave, agent, 10));
    }
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // stream events only belong to the streaming family
    chaos::Scenario s = base;
    chaos::StreamEvent e;
    e.agent = 0;
    e.round = 5;
    e.rows = 2;
    s.stream = {e};
    EXPECT_THROW(s.validate(), PreconditionError);
  }
  {  // zero-row arrivals are meaningless
    chaos::Scenario s = elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kJoinHeavy, 1);
    ASSERT_FALSE(s.stream.empty());
    s.stream.front().rows = 0;
    EXPECT_THROW(s.validate(), PreconditionError);
  }
}

// ---------------------------------------------------------------------------
// Convergence and accounting under churn.
// ---------------------------------------------------------------------------

namespace {

/// Runs one churn profile end to end and asserts the full behavioral
/// contract: guaranteed-regime convergence plus counters that reproduce
/// an independent fold of the membership schedule.
void expect_churn_contract(const chaos::Scenario& scenario) {
  ASSERT_TRUE(scenario.guaranteed()) << scenario.name;
  ASSERT_TRUE(scenario.redundant_throughout()) << scenario.name;

  const elastic::ElasticSession session = elastic::run_elastic(scenario);
  const chaos::PropertyReport report = chaos::check_properties(scenario, session.result);
  EXPECT_TRUE(report.ok) << scenario.name << ": " << report.summary();
  EXPECT_LT(session.result.final_distance, session.result.initial_distance) << scenario.name;

  const ScheduleFold fold = fold_schedule(scenario);
  EXPECT_EQ(session.joins, fold.joins) << scenario.name;
  EXPECT_EQ(session.leaves, fold.leaves) << scenario.name;
  EXPECT_EQ(session.member_agent_rounds, fold.member_agent_rounds) << scenario.name;
  EXPECT_EQ(session.absent_agent_rounds, fold.absent_agent_rounds) << scenario.name;
  EXPECT_EQ(session.member_agent_rounds + session.absent_agent_rounds,
            static_cast<std::uint64_t>(scenario.n) * scenario.rounds)
      << scenario.name;
  EXPECT_EQ(session.f_rederivations, fold.f_rederivation_rounds) << scenario.name;
  EXPECT_EQ(session.rounds_below_redundancy, fold.rounds_below_redundancy) << scenario.name;
  EXPECT_EQ(session.estimates.size(), scenario.rounds + 1) << scenario.name;
}

}  // namespace

TEST(ElasticChurn, JoinHeavyScheduleConvergesAndAccountsExactly) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  // Join-heavy really is join-heavy: agents start absent, so there must
  // be absences before the first join and more joins than leaves.
  const ScheduleFold fold = fold_schedule(s);
  ASSERT_GT(fold.joins, fold.leaves);
  ASSERT_GT(fold.absent_agent_rounds, 0u);
  expect_churn_contract(s);
}

TEST(ElasticChurn, LeaveHeavyScheduleConvergesAndAccountsExactly) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);
  const ScheduleFold fold = fold_schedule(s);
  ASSERT_GT(fold.leaves, fold.joins);
  expect_churn_contract(s);
}

TEST(ElasticChurn, RedundancyDipRederivesFDegradesThenRecovers) {
  // A Byzantine agent rides among the two dip survivors: while the live
  // set is {0, 1} the derived budget is f' = 0, the filter cannot defend,
  // and the attacker visibly drags the estimate away.  (large_norm, not a
  // gradient-shaped attack: with 2f-redundancy every honest gradient is
  // exactly zero at the reference, so gradient-scaling attacks go quiet
  // once the run converges.)  After the mass rejoin the budget returns to
  // f = 1 and CGE clips the attacker out again.
  chaos::Scenario s = elastic::make_redundancy_dip_scenario(kSeed);
  chaos::FaultSpec fault;
  fault.kind = chaos::FaultSpec::Kind::kByzantine;
  fault.agent = 1;
  fault.attack = "large_norm";
  fault.attack_param = 50.0;
  s.faults = {fault};
  // The harmonic schedule's steps are tiny by round 32; give the
  // post-rejoin run enough rounds to actually claw the excursion back.
  s.rounds = 240;
  s.validate();
  ASSERT_FALSE(s.guaranteed());
  ASSERT_FALSE(s.redundant_throughout());

  const elastic::ElasticSession session = elastic::run_elastic(s);

  // The dip forces the coordinator off the declared budget: some rounds
  // run with derived f_t < f (filter rebuilt), some without redundancy.
  const ScheduleFold fold = fold_schedule(s);
  ASSERT_GT(fold.f_rederivation_rounds, 0u);
  EXPECT_EQ(session.f_rederivations, fold.f_rederivation_rounds);
  EXPECT_EQ(session.rounds_below_redundancy, fold.rounds_below_redundancy);
  EXPECT_GT(session.rounds_below_redundancy, 0u);
  EXPECT_GT(session.result.filter_rebuilds, 0u);

  // Graceful degradation through the dip, then recovery after the mass
  // rejoin: the undefended attacker drags the estimate well away from
  // where it sat entering the dip, the escape bound still holds, and the
  // final distance claws back under the worst in-dip excursion.
  const chaos::PropertyReport report = chaos::check_properties(s, session.result);
  EXPECT_TRUE(report.ok) << report.summary();
  const double before_dip = (session.estimates.at(19) - session.result.reference).norm();
  double worst_in_dip = 0.0;
  for (std::size_t t = 20; t <= 32; ++t) {
    worst_in_dip =
        std::max(worst_in_dip, (session.estimates.at(t) - session.result.reference).norm());
  }
  EXPECT_GT(worst_in_dip, 10.0 * before_dip + 0.1);
  EXPECT_LT(session.result.final_distance, 0.5 * worst_in_dip);
  EXPECT_FALSE(session.result.nonfinite);
}

TEST(ElasticChurn, ByzantineFaultsComposeWithMembershipChurn) {
  chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, 3);
  chaos::FaultSpec fault;
  fault.kind = chaos::FaultSpec::Kind::kByzantine;
  fault.agent = 0;  // member for life — faulty the whole run
  fault.attack = "gradient_reverse";
  s.faults = {fault};
  s.validate();
  ASSERT_TRUE(s.guaranteed());

  const elastic::ElasticSession session = elastic::run_elastic(s);
  const chaos::PropertyReport report = chaos::check_properties(s, session.result);
  EXPECT_TRUE(report.ok) << report.summary();
  // The attacker sent a reply every round (it never leaves), and the
  // filter still converged through the churn.
  EXPECT_EQ(session.result.byzantine_replies, static_cast<std::uint64_t>(s.rounds));
  EXPECT_LT(session.result.final_distance, session.result.initial_distance);
}

TEST(ElasticChurn, BrokenFilterIsCaughtByTheChurnPropertyChecker) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);
  ASSERT_TRUE(s.guaranteed());
  const elastic::ElasticSession session = elastic::run_elastic(s, sign_flipped_options());
  const chaos::PropertyReport report = chaos::check_properties(s, session.result);
  // Ascending every round cannot meet the guaranteed-regime bound: the
  // checker must flag the run, proving the bound is a live assertion.
  EXPECT_FALSE(report.ok);
}

// ---------------------------------------------------------------------------
// Streaming least-squares under churn.
// ---------------------------------------------------------------------------

TEST(ElasticStreaming, EveryArrivalIsAbsorbedAndTheRunConverges) {
  for (const elastic::ChurnProfile profile :
       {elastic::ChurnProfile::kJoinHeavy, elastic::ChurnProfile::kLeaveHeavy}) {
    const chaos::Scenario s = elastic::make_streaming_churn_scenario(profile, kSeed);
    ASSERT_FALSE(s.stream.empty());
    ASSERT_TRUE(s.guaranteed()) << s.name;

    const elastic::ElasticSession session = elastic::run_elastic(s);
    EXPECT_EQ(session.stream_rows, total_stream_rows(s)) << s.name;
    const chaos::PropertyReport report = chaos::check_properties(s, session.result);
    EXPECT_TRUE(report.ok) << s.name << ": " << report.summary();
    EXPECT_LT(session.result.final_distance, session.result.initial_distance) << s.name;
  }
}

TEST(ElasticStreaming, RerunsAreBitIdentical) {
  const chaos::Scenario s =
      elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  const elastic::ElasticSession a = elastic::run_elastic(s);
  const elastic::ElasticSession b = elastic::run_elastic(s);
  EXPECT_TRUE(elastic::bit_identical(a, b));
}

// ---------------------------------------------------------------------------
// The serving path.
// ---------------------------------------------------------------------------

TEST(ElasticServing, EstimateServicePublishesMonotoneValidSnapshots) {
  elastic::EstimateService service;
  EXPECT_FALSE(service.query().valid);
  EXPECT_EQ(service.queries_served(), 1u);

  service.publish(0, Vector{1.0, 2.0});
  const elastic::EstimateService::Snapshot first = service.query();
  EXPECT_TRUE(first.valid);
  EXPECT_EQ(first.version, 1u);
  EXPECT_EQ(first.round, 0u);

  service.publish(1, Vector{3.0, 4.0});
  const elastic::EstimateService::Snapshot second = service.query();
  EXPECT_EQ(second.version, 2u);
  EXPECT_EQ(second.round, 1u);
  EXPECT_DOUBLE_EQ(second.estimate[0], 3.0);
  EXPECT_EQ(service.queries_served(), 3u);
}

TEST(ElasticServing, QueryTraceFollowsTheStrideAndTracksConvergence) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  elastic::EstimateService service;
  elastic::ElasticOptions options;
  options.query_stride = 7;
  options.service = &service;

  const elastic::ElasticSession session = elastic::run_elastic(s, options);

  std::vector<std::size_t> expected_rounds;
  for (std::size_t t = 0; t < s.rounds; t += 7) expected_rounds.push_back(t);
  EXPECT_EQ(session.query_rounds, expected_rounds);
  ASSERT_EQ(session.query_distances.size(), expected_rounds.size());
  // The serving path observes the optimization happening: the last
  // queried snapshot is far closer to the reference than the first.
  EXPECT_LT(session.query_distances.back(), 0.5 * session.query_distances.front());

  // The external service saw every round's publish, ending on the final
  // round's estimate bit for bit.
  const elastic::EstimateService::Snapshot last = service.query();
  EXPECT_TRUE(last.valid);
  EXPECT_EQ(last.version, static_cast<std::uint64_t>(s.rounds));
  EXPECT_EQ(last.round, s.rounds - 1);
  ASSERT_EQ(last.estimate.size(), session.estimates.back().size());
  for (std::size_t k = 0; k < last.estimate.size(); ++k) {
    EXPECT_EQ(last.estimate[k], session.estimates.back()[k]);
  }

  // query_stride = 0 disables the coordinator's query trace entirely.
  elastic::ElasticOptions disabled;
  disabled.query_stride = 0;
  const elastic::ElasticSession quiet = elastic::run_elastic(s, disabled);
  EXPECT_TRUE(quiet.query_rounds.empty());
  EXPECT_TRUE(quiet.query_distances.empty());
}

TEST(ElasticServing, ConcurrentReadersNeverTearAndNeverPerturbTheRun) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);
  const elastic::ElasticSession baseline = elastic::run_elastic(s);

  elastic::EstimateService service;
  elastic::ElasticOptions options;
  options.service = &service;

  std::atomic<bool> done{false};
  std::atomic<bool> torn{false};
  std::atomic<bool> regressed{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last_version = 0;
      // do-while: every reader performs at least one query even if the
      // (fast) run finishes before this thread is first scheduled.
      do {
        const elastic::EstimateService::Snapshot snap = service.query();
        if (snap.version < last_version) regressed.store(true);
        last_version = snap.version;
        if (snap.valid) {
          // A torn read would surface as a wrong-dimension or non-finite
          // vector; published snapshots are immutable copies.
          if (snap.estimate.size() != s.d) torn.store(true);
          for (std::size_t k = 0; k < snap.estimate.size(); ++k) {
            if (!std::isfinite(snap.estimate[k])) torn.store(true);
          }
        }
      } while (!done.load(std::memory_order_acquire));
    });
  }

  const elastic::ElasticSession under_load = elastic::run_elastic(s, options);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(torn.load());
  EXPECT_FALSE(regressed.load());
  EXPECT_GT(service.queries_served(), 0u);
  // Concurrent read load changed nothing about the run itself.
  EXPECT_TRUE(elastic::bit_identical(baseline, under_load));
  EXPECT_EQ(service.query().version, static_cast<std::uint64_t>(s.rounds));
}

// ---------------------------------------------------------------------------
// Cross-path, cross-backend, cross-thread bit-identity.
// ---------------------------------------------------------------------------

TEST(ElasticCrossBackend, ChurnFreeElasticRunMatchesTheFixedMembershipSession) {
  // The anchor: with no membership or stream events the elastic
  // coordinator must reproduce the fixed-membership transport session's
  // trajectory exactly — same filter chain, same schedule, same rng.
  chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  s.membership.clear();
  s.name = "churn-free-anchor";
  s.validate();
  ASSERT_FALSE(s.elastic());

  const elastic::ElasticSession session = elastic::run_elastic(s);
  const transport::ScenarioSession fixed = transport::run_scenario_transport(s, {});
  EXPECT_TRUE(chaos::bit_identical(session.result, fixed.result));
  EXPECT_EQ(session.joins, 0u);
  EXPECT_EQ(session.absent_agent_rounds, 0u);
  EXPECT_EQ(session.member_agent_rounds, static_cast<std::uint64_t>(s.n) * s.rounds);
}

TEST(ElasticCrossBackend, OracleMatchesInprocTransportOnEveryTopology) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);
  const elastic::ElasticSession oracle = elastic::run_elastic(s);
  for (const transport::Topology topology :
       {transport::Topology::kStar, transport::Topology::kChain, transport::Topology::kTree}) {
    transport::SessionOptions options;
    options.backend = transport::BackendKind::kInproc;
    options.topology = topology;
    const elastic::ElasticSession session = elastic::run_elastic_transport(s, options);
    EXPECT_TRUE(elastic::bit_identical(oracle, session))
        << "topology " << static_cast<int>(topology);
  }
}

TEST(ElasticCrossBackend, SocketBackendIsBitIdenticalOnChurnAndStreaming) {
  for (const chaos::Scenario& s :
       {elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed),
        elastic::make_redundancy_dip_scenario(kSeed),
        elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed)}) {
    transport::SessionOptions inproc;
    inproc.backend = transport::BackendKind::kInproc;
    transport::SessionOptions socket;
    socket.backend = transport::BackendKind::kSocket;
    socket.topology = transport::Topology::kTree;

    const elastic::ElasticSession a = elastic::run_elastic_transport(s, inproc);
    const elastic::ElasticSession b = elastic::run_elastic_transport(s, socket);
    EXPECT_TRUE(elastic::bit_identical(a, b)) << s.name;
    // Estimate traces agree to the bit, round by round.
    ASSERT_EQ(a.estimates.size(), b.estimates.size()) << s.name;
    for (std::size_t t = 0; t < a.estimates.size(); ++t) {
      ASSERT_EQ(a.estimates[t].size(), b.estimates[t].size());
      for (std::size_t k = 0; k < a.estimates[t].size(); ++k) {
        const double xa = a.estimates[t][k];
        const double xb = b.estimates[t][k];
        ASSERT_EQ(std::memcmp(&xa, &xb, sizeof(double)), 0)
            << s.name << " round " << t << " coord " << k;
      }
    }
  }
}

TEST(ElasticCrossBackend, ThreadCountDoesNotChangeTheSession) {
  const std::size_t restore = runtime::threads();
  const chaos::Scenario streaming =
      elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  const chaos::Scenario churn = elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);

  for (const chaos::Scenario& s : {streaming, churn}) {
    runtime::set_threads(1);
    const elastic::ElasticSession one = elastic::run_elastic(s);
    runtime::set_threads(2);
    const elastic::ElasticSession two = elastic::run_elastic(s);
    runtime::set_threads(8);
    const elastic::ElasticSession eight = elastic::run_elastic(s);
    EXPECT_TRUE(elastic::bit_identical(one, two)) << s.name;
    EXPECT_TRUE(elastic::bit_identical(one, eight)) << s.name;
  }
  runtime::set_threads(restore);
}

TEST(ElasticCrossBackend, StableManifestsAndTracesMatchAcrossBackends) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);

  reset_telemetry();
  transport::SessionOptions inproc;
  const elastic::ElasticSession a = elastic::run_elastic_transport(s, inproc);
  const std::string manifest_a = stable_manifest(a);
  const std::string trace_a = stable_trace(a);

  reset_telemetry();
  transport::SessionOptions socket;
  socket.backend = transport::BackendKind::kSocket;
  const elastic::ElasticSession b = elastic::run_elastic_transport(s, socket);
  const std::string manifest_b = stable_manifest(b);
  const std::string trace_b = stable_trace(b);

  EXPECT_EQ(manifest_a, manifest_b);
  EXPECT_EQ(trace_a, trace_b);
  // The manifest carries the membership observables with the same values
  // the session reports — counters and manifest never drift apart.
  EXPECT_NE(manifest_a.find("\"elastic.joins\""), std::string::npos);
  EXPECT_NE(manifest_a.find("\"elastic.member_agent_rounds\""), std::string::npos);

  telemetry::set_enabled(false);
}

TEST(ElasticCrossBackend, StableManifestsMatchAcrossThreadCounts) {
  const std::size_t restore = runtime::threads();
  const chaos::Scenario s =
      elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, kSeed);

  std::string first;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    runtime::set_threads(threads);
    reset_telemetry();
    const elastic::ElasticSession session = elastic::run_elastic(s);
    const std::string manifest = stable_manifest(session);
    if (first.empty()) {
      first = manifest;
    } else {
      EXPECT_EQ(manifest, first) << "threads=" << threads;
    }
  }
  runtime::set_threads(restore);
  telemetry::set_enabled(false);
}

// ---------------------------------------------------------------------------
// Fixed-membership paths refuse elastic scenarios.
// ---------------------------------------------------------------------------

TEST(ElasticRouting, FixedMembershipPathsRejectElasticScenarios) {
  const chaos::Scenario s = elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  EXPECT_THROW(chaos::run_scenario(s), PreconditionError);
  EXPECT_THROW(transport::run_scenario_transport(s, {}), PreconditionError);
}

// ---------------------------------------------------------------------------
// Shrinker and generator integration.
// ---------------------------------------------------------------------------

TEST(ElasticShrink, ShrinkerThinsChurnWhileKeepingTheFailureAlive) {
  // "Failure" here: the run spends agent-rounds absent.  The shrinker
  // must keep at least one membership window alive while dropping the
  // rest of the schedule — and everything it emits must validate.
  chaos::Scenario failing = elastic::make_redundancy_dip_scenario(kSeed);
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 1;
  straggler.staleness = 2;
  failing.faults = {straggler};
  failing.validate();

  const chaos::ScenarioPredicate still_absent = [](const chaos::Scenario& c) {
    if (!c.elastic()) return false;
    return elastic::run_elastic(c).absent_agent_rounds > 0;
  };
  ASSERT_TRUE(still_absent(failing));

  const chaos::ShrinkOutcome outcome = chaos::shrink(failing, still_absent);
  EXPECT_NO_THROW(outcome.scenario.validate());
  EXPECT_TRUE(still_absent(outcome.scenario));
  EXPECT_GT(outcome.improvements, 0u);
  // The straggler is irrelevant to absences; a competent shrink drops it.
  EXPECT_TRUE(outcome.scenario.faults.empty());
  EXPECT_LE(outcome.scenario.membership.size(), failing.membership.size());
  EXPECT_LE(outcome.scenario.rounds, failing.rounds);
}

TEST(ElasticShrink, ShrinkerThinsTheStreamWhileKeepingArrivalsAlive) {
  const chaos::Scenario failing =
      elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kJoinHeavy, kSeed);
  const chaos::ScenarioPredicate still_streams = [](const chaos::Scenario& c) {
    return !c.stream.empty() && elastic::run_elastic(c).stream_rows > 0;
  };
  ASSERT_TRUE(still_streams(failing));

  const chaos::ShrinkOutcome outcome = chaos::shrink(failing, still_streams);
  EXPECT_NO_THROW(outcome.scenario.validate());
  EXPECT_TRUE(still_streams(outcome.scenario));
  EXPECT_LT(total_stream_rows(outcome.scenario), total_stream_rows(failing));
  // Round reduction must clamp event windows rather than leave dangling
  // out-of-range rounds behind.
  for (const chaos::StreamEvent& e : outcome.scenario.stream) {
    EXPECT_LT(e.round, outcome.scenario.rounds);
  }
  for (const chaos::MembershipEvent& e : outcome.scenario.membership) {
    EXPECT_LT(e.round, outcome.scenario.rounds);
  }
}

TEST(ElasticGenerator, DefaultSpecSequencesAreByteStableAndChurnIsOptIn) {
  // The elastic knob must consume zero rng draws at its default — the
  // pinned scenario sequences of the chaos suite depend on it.
  chaos::GeneratorSpec defaults;
  chaos::GeneratorSpec explicit_zero;
  explicit_zero.elastic_probability = 0.0;
  chaos::Generator a(defaults, 99);
  chaos::Generator b(explicit_zero, 99);
  for (int k = 0; k < 10; ++k) {
    const chaos::Scenario sa = a.next();
    const chaos::Scenario sb = b.next();
    EXPECT_EQ(sa.to_json(), sb.to_json());
    EXPECT_FALSE(sa.elastic());
  }

  chaos::GeneratorSpec churny;
  churny.elastic_probability = 1.0;
  chaos::Generator g(churny, 99);
  std::size_t elastic_draws = 0;
  for (int k = 0; k < 12; ++k) {
    const chaos::Scenario s = g.next();  // next() validates before returning
    if (!s.elastic()) continue;  // small n / short rounds draws skip churn
    ++elastic_draws;
    EXPECT_NE(s.name.find("-elastic"), std::string::npos);
    // Generated churn must actually execute: the run completes, stays
    // finite, and honors whichever regime the scenario landed in.
    const elastic::ElasticSession session = elastic::run_elastic(s);
    EXPECT_FALSE(session.result.nonfinite) << s.name;
    const chaos::PropertyReport report = chaos::check_properties(s, session.result);
    EXPECT_TRUE(report.ok) << s.name << ": " << report.summary();
  }
  EXPECT_GT(elastic_draws, 0u);
}
