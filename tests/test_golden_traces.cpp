// Golden-trace regression tests: a seeded attack x filter matrix runs DGD
// on the paper's regression instance and the serialized trace must match
// the checked-in JSON byte for byte.  Catches any silent numerical drift —
// a reordered reduction, a changed default, a "harmless" refactor.
//
// To regenerate after an intentional behaviour change:
//
//   REDOPT_UPDATE_GOLDEN=1 ./tests/test_golden_traces   (or scripts/update_golden.sh)
//
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "elastic/membership.h"
#include "elastic/session.h"
#include "filters/registry.h"
#include "util/json.h"

using namespace redopt;
using linalg::Vector;

namespace {

#ifndef REDOPT_GOLDEN_DIR
#error "tests/CMakeLists.txt must define REDOPT_GOLDEN_DIR"
#endif

std::string golden_path(const std::string& name) {
  return std::string(REDOPT_GOLDEN_DIR) + "/" + name + ".json";
}

std::string vector_json(const Vector& v) {
  std::ostringstream os;
  os << "[";
  for (std::size_t k = 0; k < v.size(); ++k) {
    if (k > 0) os << ",";
    os << util::json_number(v[k]);
  }
  os << "]";
  return os.str();
}

/// Serializes the observables we pin: deterministic member order and the
/// repo's fixed number formatting (json_number round-trips doubles).
std::string trace_json(const std::string& name, const dgd::TrainResult& result) {
  std::ostringstream os;
  os << "{\"case\":\"" << util::json_escape(name) << "\"";
  os << ",\"final_estimate\":" << vector_json(result.estimate);
  os << ",\"final_loss\":" << util::json_number(result.final_loss);
  os << ",\"final_distance\":" << util::json_number(result.final_distance);
  os << ",\"iterations\":[";
  for (std::size_t k = 0; k < result.trace.iteration.size(); ++k) {
    if (k > 0) os << ",";
    os << result.trace.iteration[k];
  }
  os << "],\"loss\":[";
  for (std::size_t k = 0; k < result.trace.loss.size(); ++k) {
    if (k > 0) os << ",";
    os << util::json_number(result.trace.loss[k]);
  }
  os << "],\"distance\":[";
  for (std::size_t k = 0; k < result.trace.distance.size(); ++k) {
    if (k > 0) os << ",";
    os << util::json_number(result.trace.distance[k]);
  }
  os << "],\"estimates\":[";
  for (std::size_t k = 0; k < result.trace.estimates.size(); ++k) {
    if (k > 0) os << ",";
    os << vector_json(result.trace.estimates[k]);
  }
  os << "]}\n";
  return os.str();
}

dgd::TrainResult run_case(const std::string& attack_name, const std::string& filter_name) {
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const Vector x_h = data::regression_argmin(inst, dgd::honest_ids(6, {2}));

  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter_name, fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(
      (filter_name == "cge" || filter_name == "sum") ? 0.5 : 2.0);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 60;
  cfg.trace_stride = 10;
  cfg.seed = 7;

  const auto attack = attacks::make_attack(attack_name);
  return dgd::train(inst.problem, {2}, attack.get(), cfg, x_h);
}

/// Serializes the deterministic observables of an elastic churn session:
/// the scenario itself (so a golden also pins the serialized schedule),
/// the estimate trace, and every membership/stream counter.
std::string elastic_trace_json(const std::string& name, const chaos::Scenario& scenario,
                               const elastic::ElasticSession& session) {
  std::ostringstream os;
  os << "{\"case\":\"" << util::json_escape(name) << "\"";
  os << ",\"scenario\":" << scenario.to_json();
  os << ",\"final_estimate\":" << vector_json(session.result.estimate);
  os << ",\"reference\":" << vector_json(session.result.reference);
  os << ",\"initial_distance\":" << util::json_number(session.result.initial_distance);
  os << ",\"final_distance\":" << util::json_number(session.result.final_distance);
  os << ",\"max_distance\":" << util::json_number(session.result.max_distance);
  os << ",\"joins\":" << session.joins << ",\"leaves\":" << session.leaves
     << ",\"member_agent_rounds\":" << session.member_agent_rounds
     << ",\"absent_agent_rounds\":" << session.absent_agent_rounds
     << ",\"stream_rows\":" << session.stream_rows
     << ",\"f_rederivations\":" << session.f_rederivations
     << ",\"rounds_below_redundancy\":" << session.rounds_below_redundancy
     << ",\"filter_rebuilds\":" << session.result.filter_rebuilds;
  os << ",\"query_distances\":[";
  for (std::size_t k = 0; k < session.query_distances.size(); ++k) {
    if (k > 0) os << ",";
    os << util::json_number(session.query_distances[k]);
  }
  os << "],\"estimates\":[";
  for (std::size_t k = 0; k < session.estimates.size(); ++k) {
    if (k > 0) os << ",";
    os << vector_json(session.estimates[k]);
  }
  os << "]}\n";
  return os.str();
}

void compare_or_update(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);

  if (std::getenv("REDOPT_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (run scripts/update_golden.sh and review the diff)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << name << " drifted from its golden trace; if the change is intentional, "
      << "regenerate with scripts/update_golden.sh and review the diff";
}

void check_golden(const std::string& attack_name, const std::string& filter_name) {
  const std::string name = attack_name + "_" + filter_name;
  compare_or_update(name, trace_json(name, run_case(attack_name, filter_name)));
}

void check_elastic_golden(const std::string& name, elastic::ChurnProfile profile) {
  const chaos::Scenario scenario = elastic::make_churn_scenario(profile, 11);
  const elastic::ElasticSession session = elastic::run_elastic(scenario);
  compare_or_update(name, elastic_trace_json(name, scenario, session));
}

}  // namespace

TEST(GoldenTraces, GradientReverseCge) { check_golden("gradient_reverse", "cge"); }
TEST(GoldenTraces, GradientReverseCwtm) { check_golden("gradient_reverse", "cwtm"); }
TEST(GoldenTraces, LieCge) { check_golden("lie", "cge"); }
TEST(GoldenTraces, LieCwtm) { check_golden("lie", "cwtm"); }
TEST(GoldenTraces, IpmCge) { check_golden("ipm", "cge"); }
TEST(GoldenTraces, IpmCwtm) { check_golden("ipm", "cwtm"); }

// Elastic churn sessions: the golden pins the seeded membership schedule
// (via the embedded scenario JSON), the full estimate trace and every
// membership counter, so any drift in event folding, filter re-derivation
// or the serving path shows up as a byte diff.
TEST(GoldenTraces, ElasticChurnJoinHeavy) {
  check_elastic_golden("elastic_churn_join_heavy", elastic::ChurnProfile::kJoinHeavy);
}
TEST(GoldenTraces, ElasticChurnLeaveHeavy) {
  check_elastic_golden("elastic_churn_leave_heavy", elastic::ChurnProfile::kLeaveHeavy);
}

// The golden files pin parsed-and-reserialized stability too: loading a
// golden through the strict JSON parser and re-emitting its numbers must
// not change a byte (the parser keeps integers exact and json_number
// round-trips doubles).
TEST(GoldenTraces, GoldenFilesParseCleanly) {
  for (const std::string name :
       {"gradient_reverse_cge", "gradient_reverse_cwtm", "lie_cge", "lie_cwtm", "ipm_cge",
        "ipm_cwtm", "elastic_churn_join_heavy", "elastic_churn_leave_heavy"}) {
    std::ifstream in(golden_path(name), std::ios::binary);
    if (!in.good()) continue;  // covered by the per-case tests above
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const util::JsonValue doc = util::json_parse(buffer.str());
    EXPECT_EQ(doc.at("case").as_string(), name);
    if (name.rfind("elastic_", 0) == 0) {
      EXPECT_GE(doc.at("estimates").as_array().size(), 2u);
      // The embedded scenario round-trips through the strict parser and
      // still validates — goldens double as schema regression fixtures.
      const chaos::Scenario parsed =
          chaos::scenario_from_json(util::json_serialize(doc.at("scenario")));
      EXPECT_NO_THROW(parsed.validate());
      EXPECT_TRUE(parsed.elastic());
    } else {
      EXPECT_GE(doc.at("iterations").as_array().size(), 2u);
    }
  }
}
