// Unit tests for argmin-set computation and MinimizerSet geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/aggregate_cost.h"
#include "core/argmin.h"
#include "core/least_squares_cost.h"
#include "core/logistic_cost.h"
#include "core/minimizer_set.h"
#include "core/quadratic_cost.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using core::MinimizerSet;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------- MinimizerSet

TEST(MinimizerSet, SingletonDistanceIsEuclidean) {
  const auto s = MinimizerSet::singleton(Vector{1.0, 2.0});
  EXPECT_TRUE(s.is_singleton());
  EXPECT_DOUBLE_EQ(s.distance_to(Vector{4.0, 6.0}), 5.0);
  EXPECT_EQ(s.project(Vector{9.0, 9.0}), (Vector{1.0, 2.0}));
}

TEST(MinimizerSet, AffineLineProjection) {
  // Line {(t, 0)}: x0 = origin, basis = e1.
  Matrix basis(2, 1);
  basis(0, 0) = 1.0;
  const auto line = MinimizerSet::affine(Vector(2), basis);
  EXPECT_FALSE(line.is_singleton());
  EXPECT_EQ(line.affine_dimension(), 1u);
  EXPECT_EQ(line.project(Vector{3.0, 4.0}), (Vector{3.0, 0.0}));
  EXPECT_DOUBLE_EQ(line.distance_to(Vector{3.0, 4.0}), 4.0);
}

TEST(MinimizerSet, AffineRequiresOrthonormalBasis) {
  Matrix bad(2, 1);
  bad(0, 0) = 2.0;  // not unit norm
  EXPECT_THROW(MinimizerSet::affine(Vector(2), bad), redopt::PreconditionError);
  Matrix bad2(2, 2);
  bad2(0, 0) = 1.0;
  bad2(0, 1) = 1.0;  // not orthogonal
  EXPECT_THROW(MinimizerSet::affine(Vector(2), bad2), redopt::PreconditionError);
}

TEST(MinimizerSet, HausdorffBetweenSingletons) {
  const auto a = MinimizerSet::singleton(Vector{0.0, 0.0});
  const auto b = MinimizerSet::singleton(Vector{3.0, 4.0});
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, a), 0.0);
}

TEST(MinimizerSet, HausdorffParallelLines) {
  Matrix e1(2, 1);
  e1(0, 0) = 1.0;
  const auto l0 = MinimizerSet::affine(Vector{0.0, 0.0}, e1);
  const auto l1 = MinimizerSet::affine(Vector{7.0, 2.0}, e1);  // same direction, offset 2 in y
  EXPECT_NEAR(core::hausdorff_distance(l0, l1), 2.0, 1e-12);
}

TEST(MinimizerSet, HausdorffDivergesForDifferentDirections) {
  Matrix e1(2, 1), e2(2, 1);
  e1(0, 0) = 1.0;
  e2(1, 0) = 1.0;
  const auto lx = MinimizerSet::affine(Vector(2), e1);
  const auto ly = MinimizerSet::affine(Vector(2), e2);
  EXPECT_TRUE(std::isinf(core::hausdorff_distance(lx, ly)));
  // Point vs line also diverges (sup over the line is unbounded).
  const auto pt = MinimizerSet::singleton(Vector(2));
  EXPECT_TRUE(std::isinf(core::hausdorff_distance(pt, lx)));
}

// ---------------------------------------------------------------- Analytic argmin

TEST(Argmin, QuadraticUniqueMinimizer) {
  // 0.5 x^T diag(2,8) x + (-2, -8)^T x minimizes at (1, 1).
  const core::QuadraticCost q(Matrix::diagonal(Vector{2.0, 8.0}), Vector{-2.0, -8.0});
  const auto set = core::argmin_set(q);
  EXPECT_TRUE(set.is_singleton());
  EXPECT_NEAR(linalg::distance(set.representative(), Vector{1.0, 1.0}), 0.0, 1e-10);
}

TEST(Argmin, SquaredDistanceAggregateMinimizesAtMean) {
  std::vector<core::CostPtr> costs;
  const std::vector<Vector> centers = {{0.0, 0.0}, {2.0, 0.0}, {1.0, 3.0}};
  for (const auto& c : centers) {
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(c)));
  }
  const auto set = core::argmin_set(core::AggregateCost(costs));
  EXPECT_NEAR(linalg::distance(set.representative(), Vector{1.0, 1.0}), 0.0, 1e-9);
}

TEST(Argmin, LeastSquaresConsistentSystemRecoversTruth) {
  rng::Rng rng(1);
  Matrix a(6, 3);
  for (std::size_t r = 0; r < 6; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.gaussian();
  const Vector x_true(rng.gaussian_vector(3));
  const core::LeastSquaresCost q(a, linalg::matvec(a, x_true));
  const auto set = core::argmin_set(q);
  EXPECT_TRUE(set.is_singleton());
  EXPECT_NEAR(set.distance_to(x_true), 0.0, 1e-8);
}

TEST(Argmin, AggregateOfSingleRowsMatchesStacked) {
  rng::Rng rng(2);
  Matrix a(5, 2);
  Vector b(5);
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 2; ++c) a(r, c) = rng.gaussian();
    b[r] = rng.gaussian();
  }
  std::vector<core::CostPtr> per_agent;
  for (std::size_t r = 0; r < 5; ++r) {
    per_agent.push_back(std::make_shared<core::LeastSquaresCost>(
        core::LeastSquaresCost::single(a.row(r), b[r])));
  }
  const auto agg_set = core::argmin_set(core::AggregateCost(per_agent));
  const auto stacked_set = core::argmin_set(core::LeastSquaresCost(a, b));
  EXPECT_NEAR(
      linalg::distance(agg_set.representative(), stacked_set.representative()), 0.0, 1e-8);
}

TEST(Argmin, RankDeficientLeastSquaresYieldsAffineSet) {
  // One observation row in R^2: minimizers form a line.
  const auto q = core::LeastSquaresCost::single(Vector{1.0, 1.0}, 2.0);
  const auto set = core::argmin_set(q);
  EXPECT_FALSE(set.is_singleton());
  EXPECT_EQ(set.affine_dimension(), 1u);
  // Every representative satisfies the observation exactly.
  EXPECT_NEAR(q.value(set.representative()), 0.0, 1e-12);
  // (2, 0) and (0, 2) both lie in the set.
  EXPECT_NEAR(set.distance_to(Vector{2.0, 0.0}), 0.0, 1e-9);
  EXPECT_NEAR(set.distance_to(Vector{0.0, 2.0}), 0.0, 1e-9);
  // (0, 0) is at distance sqrt(2) from the line x + y = 2.
  EXPECT_NEAR(set.distance_to(Vector{0.0, 0.0}), std::sqrt(2.0), 1e-9);
}

TEST(Argmin, SingularQuadraticYieldsKernelDirections) {
  // P = diag(2, 0): flat in the second coordinate.
  const core::QuadraticCost q(Matrix::diagonal(Vector{2.0, 0.0}), Vector{-2.0, 0.0});
  const auto set = core::argmin_set(q);
  EXPECT_EQ(set.affine_dimension(), 1u);
  EXPECT_NEAR(set.distance_to(Vector{1.0, 100.0}), 0.0, 1e-9);
  EXPECT_NEAR(set.distance_to(Vector{0.0, 0.0}), 1.0, 1e-9);
}

TEST(Argmin, UnboundedQuadraticThrows) {
  // P = diag(2, 0) with a linear term along the kernel: unbounded below.
  const core::QuadraticCost q(Matrix::diagonal(Vector{2.0, 0.0}), Vector{0.0, 1.0});
  EXPECT_THROW(core::argmin_set(q), redopt::PreconditionError);
}

TEST(Argmin, MixedQuadraticAndLeastSquaresAggregate) {
  // ||x - 1||^2 (quadratic form) + (2 - x)^2 (least squares) minimizes at 1.5.
  auto quad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{1.0}));
  auto ls = std::make_shared<core::LeastSquaresCost>(
      core::LeastSquaresCost::single(Vector{1.0}, 2.0));
  const auto set = core::argmin_set(core::AggregateCost({quad, ls}));
  EXPECT_NEAR(set.representative()[0], 1.5, 1e-10);
}

// ---------------------------------------------------------------- Numeric argmin

TEST(Argmin, NumericFallbackOnLogisticCost) {
  // Separable-ish data with regularization: strongly convex, unique optimum.
  rng::Rng rng(3);
  Matrix x(20, 2);
  Vector y(20);
  for (std::size_t r = 0; r < 20; ++r) {
    const double label = r % 2 == 0 ? 1.0 : -1.0;
    x(r, 0) = label * 2.0 + rng.gaussian();
    x(r, 1) = rng.gaussian();
    y[r] = label;
  }
  const core::LogisticCost q(x, y, 0.1);
  const auto set = core::argmin_set(q);
  EXPECT_TRUE(set.is_singleton());
  // At the optimum the gradient vanishes.
  EXPECT_NEAR(q.gradient(set.representative()).norm(), 0.0, 1e-6);
}

TEST(Argmin, NumericMatchesAnalyticOnQuadratic) {
  const core::QuadraticCost q(Matrix::diagonal(Vector{2.0, 10.0}), Vector{-4.0, -10.0});
  const Vector numeric = core::numeric_argmin(q);
  const Vector analytic = core::argmin_point(q);
  EXPECT_NEAR(linalg::distance(numeric, analytic), 0.0, 1e-7);
}

TEST(Argmin, NumericHandlesModeratelyIllConditionedQuadratic) {
  // Condition number 1e4: plain gradient descent still converges within
  // the iteration budget (1e6+ would not — that is intrinsic to GD).
  const core::QuadraticCost q(Matrix::diagonal(Vector{0.1, 1e3}), Vector{-0.1, -1e3});
  const Vector x = core::numeric_argmin(q);
  EXPECT_NEAR(x[1], 1.0, 1e-6);  // stiff direction converges fast
  EXPECT_NEAR(x[0], 1.0, 1e-3);  // soft direction converges slower but gets there
}
