// Tests for the 2f / (2f, eps)-redundancy machinery (Definitions 1 and 3).
#include <gtest/gtest.h>

#include <cmath>

#include "core/least_squares_cost.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "redundancy/redundancy.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<core::CostPtr> regression_costs(const Matrix& a, const Vector& b) {
  std::vector<core::CostPtr> costs;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    costs.push_back(std::make_shared<core::LeastSquaresCost>(
        core::LeastSquaresCost::single(a.row(i), b[i])));
  }
  return costs;
}

}  // namespace

TEST(RankCondition, PaperMatrixSatisfiesIt) {
  EXPECT_TRUE(redundancy::regression_rank_condition(data::paper_matrix(), 1));
}

TEST(RankCondition, FailsWithParallelRows) {
  // Rows 0 and 1 are parallel; the 2-subset {0, 1} has rank 1 < 2.
  const Matrix a{{1.0, 0.0}, {2.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}, {1.0, -1.0}, {2.0, 1.0}};
  EXPECT_FALSE(redundancy::regression_rank_condition(a, 2));  // n-2f = 2 rows
}

TEST(RankCondition, FailsWhenTooFewRows) {
  // n - 2f = 1 < d = 2: impossible regardless of rows.
  EXPECT_FALSE(redundancy::regression_rank_condition(Matrix{{1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}}, 1));
}

TEST(RankCondition, RequiresNGreaterThan2F) {
  EXPECT_THROW(redundancy::regression_rank_condition(Matrix{{1.0}, {2.0}}, 1),
               redopt::PreconditionError);
}

TEST(MeasureRedundancy, NoiselessRegressionIsExactlyRedundant) {
  const Matrix a = data::paper_matrix();
  const Vector x_star{1.0, 1.0};
  const Vector b = linalg::matvec(a, x_star);  // no noise
  const auto report = redundancy::measure_redundancy(regression_costs(a, b), 1);
  EXPECT_NEAR(report.epsilon, 0.0, 1e-7);
  EXPECT_TRUE(redundancy::has_2f_redundancy(regression_costs(a, b), 1));
  // n = 6, f = 1: for each of C(6,5)=6 supersets, C(5,4)=5 subsets.
  EXPECT_EQ(report.pairs_checked, 30u);
}

TEST(MeasureRedundancy, NoiseBreaksExactRedundancy) {
  rng::Rng rng(7);
  const Matrix a = data::paper_matrix();
  const Vector x_star{1.0, 1.0};
  Vector b = linalg::matvec(a, x_star);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] += rng.gaussian(0.0, 0.1);
  const auto report = redundancy::measure_redundancy(regression_costs(a, b), 1);
  EXPECT_GT(report.epsilon, 1e-4);
  EXPECT_FALSE(redundancy::has_2f_redundancy(regression_costs(a, b), 1));
  EXPECT_EQ(report.worst_superset.size(), 5u);
  EXPECT_EQ(report.worst_subset.size(), 4u);
}

TEST(MeasureRedundancy, EpsilonScalesWithNoise) {
  // Property: scaling all observation noise by 10 scales epsilon by 10
  // (the argmin map is affine in b).
  const Matrix a = data::paper_matrix();
  const Vector x_star{1.0, 1.0};
  rng::Rng rng(11);
  Vector noise(6);
  for (auto& c : noise) c = rng.gaussian();
  Vector b1 = linalg::matvec(a, x_star);
  Vector b10 = b1;
  for (std::size_t i = 0; i < 6; ++i) {
    b1[i] += 0.01 * noise[i];
    b10[i] += 0.1 * noise[i];
  }
  const double e1 = redundancy::measure_redundancy(regression_costs(a, b1), 1).epsilon;
  const double e10 = redundancy::measure_redundancy(regression_costs(a, b10), 1).epsilon;
  EXPECT_NEAR(e10 / e1, 10.0, 1e-6);
}

TEST(MeasureRedundancy, IdenticalCostsArePerfectlyRedundant) {
  // All agents share one strongly convex cost: any aggregate has the same
  // argmin, so 2f-redundancy holds for every admissible f.
  std::vector<core::CostPtr> costs;
  for (int i = 0; i < 7; ++i) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{1.0, 2.0})));
  }
  for (std::size_t f : {1u, 2u, 3u}) {
    EXPECT_NEAR(redundancy::measure_redundancy(costs, f).epsilon, 0.0, 1e-9) << "f=" << f;
  }
}

TEST(MeasureRedundancy, DistinctQuadraticsGiveKnownEpsilon) {
  // Three agents with costs ||x - c_i||^2, c = 0, 1, 2 (d = 1, f = 1):
  // S of size 2 and S-hat of size 1.  Aggregate minimizers: mean of the
  // centers.  Worst pair: S = {0, 2} (mean 1) vs S-hat = {0} (0) -> 1, or
  // S = {0, 1} (0.5) vs {1} -> 0.5 ... the max is 1.
  std::vector<core::CostPtr> costs;
  for (double c : {0.0, 1.0, 2.0}) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{c})));
  }
  const auto report = redundancy::measure_redundancy(costs, 1);
  EXPECT_NEAR(report.epsilon, 1.0, 1e-9);
}

TEST(MeasureRedundancy, ZeroFaultBudgetIsTriviallyExact) {
  std::vector<core::CostPtr> costs;
  for (double c : {0.0, 5.0}) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{c})));
  }
  EXPECT_DOUBLE_EQ(redundancy::measure_redundancy(costs, 0).epsilon, 0.0);
}

TEST(MeasureRedundancy, InfiniteWhenArgminDimensionsDiffer) {
  // Two observation rows along e1 only and one along e2 (d = 2, f = 1):
  // some 1-subsets minimize on a line that 2-subsets pin to a point in a
  // different direction space -> Hausdorff distance diverges.
  const Matrix a{{1.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const Vector b{1.0, 1.0, 1.0};
  const auto report = redundancy::measure_redundancy(regression_costs(a, b), 1);
  EXPECT_TRUE(std::isinf(report.epsilon));
}

TEST(MeasureRedundancy, RequiresEnoughAgents) {
  std::vector<core::CostPtr> costs = {std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{0.0}))};
  EXPECT_THROW(redundancy::measure_redundancy(costs, 1), redopt::PreconditionError);
}

TEST(MeasureRedundancy, MatchesPaperScaleOnNoisyPaperInstance) {
  // A noisy n=6, f=1, d=2 instance in the paper's regime has a small
  // positive epsilon (the paper reports 0.089 for its instance); check the
  // measured epsilon is positive and of a sane magnitude for sigma ~ 0.03.
  rng::Rng rng(42);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.03, 1, rng);
  const auto report = redundancy::measure_redundancy(inst.problem.costs, 1);
  EXPECT_GT(report.epsilon, 1e-4);
  EXPECT_LT(report.epsilon, 1.0);
}
