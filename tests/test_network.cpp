// Tests for the synchronous network simulation.
#include <gtest/gtest.h>

#include "net/sync_network.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;
using net::Message;

namespace {

/// Records its inbox each round and sends a scripted message list once.
class ScriptedNode final : public net::Node {
 public:
  explicit ScriptedNode(std::vector<Message> to_send_round0 = {})
      : to_send_(std::move(to_send_round0)) {}

  std::vector<Message> on_round(std::size_t round, const std::vector<Message>& inbox) override {
    received_.push_back(inbox);
    if (round == 0) return to_send_;
    return {};
  }

  const std::vector<std::vector<Message>>& received() const { return received_; }

 private:
  std::vector<Message> to_send_;
  std::vector<std::vector<Message>> received_;
};

Message make_msg(net::NodeId to, const std::string& tag, Vector payload) {
  Message m;
  m.to = to;
  m.tag = tag;
  m.payload = std::move(payload);
  return m;
}

}  // namespace

TEST(SyncNetwork, DeliversNextRound) {
  ScriptedNode sender({make_msg(1, "hello", Vector{1.0, 2.0})});
  ScriptedNode receiver;
  net::SyncNetwork network({&sender, &receiver});

  EXPECT_EQ(network.run_round(), 0u);  // nothing in flight yet
  EXPECT_TRUE(receiver.received()[0].empty());

  EXPECT_EQ(network.run_round(), 1u);  // the hello arrives
  ASSERT_EQ(receiver.received()[1].size(), 1u);
  EXPECT_EQ(receiver.received()[1][0].tag, "hello");
  EXPECT_EQ(receiver.received()[1][0].from, 0u);
  EXPECT_EQ(receiver.received()[1][0].payload, (Vector{1.0, 2.0}));
}

TEST(SyncNetwork, BroadcastReachesAllButSender) {
  ScriptedNode sender({make_msg(net::kBroadcast, "b", Vector{7.0})});
  ScriptedNode r1, r2;
  net::SyncNetwork network({&sender, &r1, &r2});
  network.run(2);
  EXPECT_TRUE(sender.received()[1].empty());  // no self-delivery
  ASSERT_EQ(r1.received()[1].size(), 1u);
  ASSERT_EQ(r2.received()[1].size(), 1u);
  EXPECT_EQ(r1.received()[1][0].payload, (Vector{7.0}));
}

TEST(SyncNetwork, DeliveryOrderSortedBySender) {
  ScriptedNode s0({make_msg(2, "a", Vector{0.0})});
  ScriptedNode s1({make_msg(2, "b", Vector{1.0})});
  ScriptedNode receiver;
  net::SyncNetwork network({&s0, &s1, &receiver});
  network.run(2);
  ASSERT_EQ(receiver.received()[1].size(), 2u);
  EXPECT_EQ(receiver.received()[1][0].from, 0u);
  EXPECT_EQ(receiver.received()[1][1].from, 1u);
}

TEST(SyncNetwork, StatsCountTraffic) {
  ScriptedNode sender({make_msg(net::kBroadcast, "b", Vector{1.0, 2.0, 3.0})});
  ScriptedNode r1, r2;
  net::SyncNetwork network({&sender, &r1, &r2});
  network.run(2);
  EXPECT_EQ(network.stats().rounds, 2u);
  EXPECT_EQ(network.stats().messages_delivered, 2u);       // fan-out of 2
  EXPECT_EQ(network.stats().scalars_transferred, 6u);      // 3 scalars x 2
  EXPECT_EQ(network.stats().bytes_on_wire, 48u);           // 6 doubles x 8 bytes
  EXPECT_EQ(network.current_round(), 2u);
}

TEST(SyncNetwork, RetriesAreZeroUnlessRecorded) {
  // The simulated network never times out, so messages_retried only
  // moves through record_retry() — the hook that keeps NetworkStats
  // shape-compatible with transport::TransportStats for the
  // message-complexity reports.
  ScriptedNode sender({make_msg(1, "r", Vector{1.0})});
  ScriptedNode receiver;
  net::SyncNetwork network({&sender, &receiver});
  network.run(2);
  EXPECT_EQ(network.stats().messages_retried, 0u);
  network.record_retry();
  network.record_retry(3);
  EXPECT_EQ(network.stats().messages_retried, 4u);
}

TEST(SyncNetwork, RejectsUnknownDestination) {
  ScriptedNode sender({make_msg(5, "x", Vector{1.0})});
  ScriptedNode other;
  net::SyncNetwork network({&sender, &other});
  network.run_round();
  EXPECT_THROW(network.run_round(), redopt::PreconditionError);
}

TEST(SyncNetwork, ValidatesNodes) {
  EXPECT_THROW(net::SyncNetwork({}), redopt::PreconditionError);
  EXPECT_THROW(net::SyncNetwork({nullptr}), redopt::PreconditionError);
}

TEST(SyncNetwork, SenderFieldOverwrittenByNetwork) {
  // A node cannot spoof its sender id: the network stamps m.from.
  Message spoofed = make_msg(1, "s", Vector{1.0});
  spoofed.from = 42;
  ScriptedNode sender({spoofed});
  ScriptedNode receiver;
  net::SyncNetwork network({&sender, &receiver});
  network.run(2);
  ASSERT_EQ(receiver.received()[1].size(), 1u);
  EXPECT_EQ(receiver.received()[1][0].from, 0u);
}

TEST(SyncNetwork, DuplicateProbabilityInjectsExtraCopies) {
  // Send many messages through a duplicate-everything link: every message
  // arrives exactly twice, on time, and the stats count the extra copies.
  std::vector<Message> burst;
  for (int k = 0; k < 20; ++k) burst.push_back(make_msg(1, "dup", Vector{double(k)}));
  ScriptedNode sender(burst);
  ScriptedNode receiver;
  net::LinkFaults faults;
  faults.duplicate_probability = 1.0;
  net::SyncNetwork network({&sender, &receiver}, faults);
  network.run(2);
  EXPECT_EQ(receiver.received()[1].size(), 40u);
  EXPECT_EQ(network.stats().messages_duplicated, 20u);
  EXPECT_EQ(network.stats().messages_delivered, 40u);
}

TEST(SyncNetwork, DuplicationIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<Message> burst;
    for (int k = 0; k < 30; ++k) burst.push_back(make_msg(1, "d", Vector{1.0}));
    ScriptedNode sender(burst);
    ScriptedNode receiver;
    net::LinkFaults faults;
    faults.duplicate_probability = 0.5;
    faults.seed = seed;
    net::SyncNetwork network({&sender, &receiver}, faults);
    network.run(2);
    return network.stats().messages_duplicated;
  };
  EXPECT_EQ(run_once(9), run_once(9));
  // Partial duplication actually happened (not all-or-nothing).
  const auto dup = run_once(9);
  EXPECT_GT(dup, 0u);
  EXPECT_LT(dup, 30u);
}

TEST(SyncNetwork, ValidatesDuplicateProbability) {
  ScriptedNode a, b;
  net::LinkFaults faults;
  faults.duplicate_probability = 1.5;
  EXPECT_THROW(net::SyncNetwork({&a, &b}, faults), redopt::PreconditionError);
  faults.duplicate_probability = -0.1;
  EXPECT_THROW(net::SyncNetwork({&a, &b}, faults), redopt::PreconditionError);
}
