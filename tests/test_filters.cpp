// Unit and property tests for the gradient filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "filters/bulyan.h"
#include "filters/centered_clip.h"
#include "filters/cge.h"
#include "filters/mda.h"
#include "filters/geometric_median.h"
#include "filters/gmom.h"
#include "filters/krum.h"
#include "filters/mean.h"
#include "filters/norm_clip.h"
#include "filters/registry.h"
#include "filters/trimmed_mean.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using filters::FilterParams;
using linalg::Vector;

namespace {

std::vector<Vector> random_gradients(std::size_t n, std::size_t d, redopt::rng::Rng& rng) {
  std::vector<Vector> gs;
  gs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) gs.push_back(Vector(rng.gaussian_vector(d)));
  return gs;
}

}  // namespace

// ---------------------------------------------------------------- Mean / Sum

TEST(MeanFilter, AveragesInputs) {
  const filters::MeanFilter mean(3);
  const std::vector<Vector> gs = {{3.0, 0.0}, {0.0, 3.0}, {3.0, 3.0}};
  EXPECT_EQ(mean.apply(gs), (Vector{2.0, 2.0}));
}

TEST(SumFilter, SumsInputs) {
  const filters::SumFilter sum(2);
  EXPECT_EQ(sum.apply({{1.0}, {2.0}}), (Vector{3.0}));
}

TEST(Filters, RejectWrongInputCount) {
  const filters::MeanFilter mean(3);
  EXPECT_THROW(mean.apply({{1.0}, {2.0}}), redopt::PreconditionError);
  EXPECT_THROW(mean.apply({{1.0}, {2.0}, {3.0, 4.0}}), redopt::PreconditionError);
}

// ---------------------------------------------------------------- CGE

TEST(Cge, SumsSmallestNormGradients) {
  // n = 4, f = 1: the largest-norm gradient (10, 0) must be eliminated.
  const filters::CgeFilter cge(4, 1);
  const std::vector<Vector> gs = {{1.0, 0.0}, {10.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(cge.apply(gs), (Vector{2.0, 2.0}));
}

TEST(Cge, SurvivorsSortedByNormWithIndexTieBreak) {
  const filters::CgeFilter cge(4, 2);
  const std::vector<Vector> gs = {{2.0}, {1.0}, {1.0}, {3.0}};
  const auto survivors = cge.surviving_indices(gs);
  EXPECT_EQ(survivors, (std::vector<std::size_t>{1, 2}));
}

TEST(Cge, NormalizedVariantDividesBySurvivorCount) {
  const filters::CgeFilter cge(4, 1, /*normalize=*/true);
  const std::vector<Vector> gs = {{3.0}, {3.0}, {3.0}, {100.0}};
  EXPECT_EQ(cge.apply(gs), (Vector{3.0}));
  EXPECT_EQ(cge.name(), "cge_avg");
}

TEST(Cge, OutputNormBoundedBySumOfSurvivingNorms) {
  // The boundedness property Theorem 4(1) relies on: ||CGE|| <= (n - f) *
  // max honest norm whenever at least one honest gradient survives every
  // Byzantine one.
  rng::Rng rng(1);
  const filters::CgeFilter cge(7, 2);
  for (int trial = 0; trial < 20; ++trial) {
    auto gs = random_gradients(7, 3, rng);
    std::vector<double> norms;
    for (const auto& g : gs) norms.push_back(g.norm());
    std::sort(norms.begin(), norms.end());
    double bound = 0.0;
    for (std::size_t i = 0; i < 5; ++i) bound += norms[i];
    EXPECT_LE(cge.apply(gs).norm(), bound + 1e-9);
  }
}

TEST(Cge, FaultFreeEqualsPlainSum) {
  rng::Rng rng(2);
  const auto gs = random_gradients(5, 2, rng);
  const filters::CgeFilter cge(5, 0);
  const filters::SumFilter sum(5);
  EXPECT_NEAR(linalg::distance(cge.apply(gs), sum.apply(gs)), 0.0, 1e-12);
}

// ---------------------------------------------------------------- CWTM / CWMed

TEST(Cwtm, TrimsExtremesPerCoordinate) {
  // n = 5, f = 1: drop min and max per coordinate, average middle 3.
  // coord 0: {-90, 0, 1, 2, 3} -> (0 + 1 + 2) / 3 = 1;
  // coord 1: {1, 2, 3, 4, 50} -> (2 + 3 + 4) / 3 = 3.
  const filters::CwtmFilter cwtm(5, 1);
  const std::vector<Vector> gs = {{0.0, 50.0}, {1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}, {-90.0, 4.0}};
  EXPECT_EQ(cwtm.apply(gs), (Vector{1.0, 3.0}));
}

TEST(Cwtm, OutputWithinHonestRangeDespiteOutliers) {
  // With at most f Byzantine inputs, each trimmed-mean coordinate lies in
  // the honest min..max range.
  rng::Rng rng(3);
  const std::size_t n = 9, f = 2, d = 4;
  const filters::CwtmFilter cwtm(n, f);
  for (int trial = 0; trial < 20; ++trial) {
    auto gs = random_gradients(n - f, d, rng);  // honest
    Vector lo = gs[0], hi = gs[0];
    for (const auto& g : gs) {
      lo = linalg::cwise_min(lo, g);
      hi = linalg::cwise_max(hi, g);
    }
    // Add f adversarial outliers.
    gs.push_back(Vector(d, 1e9));
    gs.push_back(Vector(d, -1e9));
    const Vector out = cwtm.apply(gs);
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_GE(out[k], lo[k] - 1e-9);
      EXPECT_LE(out[k], hi[k] + 1e-9);
    }
  }
}

TEST(Cwtm, RequiresMoreThanTwoFAgents) {
  EXPECT_THROW(filters::CwtmFilter(4, 2), redopt::PreconditionError);
}

TEST(CwMedian, OddAndEvenCounts) {
  const filters::CwMedianFilter med3(3);
  EXPECT_EQ(med3.apply({{1.0}, {9.0}, {2.0}}), (Vector{2.0}));
  const filters::CwMedianFilter med4(4);
  EXPECT_EQ(med4.apply({{1.0}, {2.0}, {3.0}, {100.0}}), (Vector{2.5}));
}

// ---------------------------------------------------------------- Krum

TEST(Krum, PicksMemberOfTightCluster) {
  // Five nearly identical honest gradients plus one far outlier: Krum must
  // select a cluster member.
  const filters::KrumFilter krum(6, 1);
  std::vector<Vector> gs;
  for (int i = 0; i < 5; ++i) gs.push_back(Vector{1.0 + 0.01 * i, 1.0});
  gs.push_back(Vector{100.0, -100.0});
  const Vector out = krum.apply(gs);
  EXPECT_LT(linalg::distance(out, Vector{1.0, 1.0}), 0.1);
}

TEST(Krum, SelectReturnsIndex) {
  const filters::KrumFilter krum(4, 1);
  const std::vector<Vector> gs = {{0.0}, {0.1}, {0.05}, {50.0}};
  const std::size_t pick = krum.select(gs);
  EXPECT_LT(pick, 3u);  // never the outlier
}

TEST(Krum, RequiresEnoughAgents) {
  EXPECT_THROW(filters::KrumFilter(3, 1), redopt::PreconditionError);
}

TEST(MultiKrum, AveragesSelectedGradients) {
  const filters::MultiKrumFilter mk(7, 1, 3);
  std::vector<Vector> gs;
  for (int i = 0; i < 6; ++i) gs.push_back(Vector{2.0});
  gs.push_back(Vector{1000.0});
  EXPECT_NEAR(mk.apply(gs)[0], 2.0, 1e-12);
}

TEST(MultiKrum, ValidatesSelectionCount) {
  EXPECT_THROW(filters::MultiKrumFilter(5, 1, 0), redopt::PreconditionError);
  EXPECT_THROW(filters::MultiKrumFilter(5, 1, 3), redopt::PreconditionError);  // n < f+2+m
}

// ---------------------------------------------------------------- Geometric median

TEST(GeoMed, MatchesMedianInOneDimension) {
  const filters::GeometricMedianFilter gm(3);
  EXPECT_NEAR(gm.apply({{0.0}, {1.0}, {10.0}})[0], 1.0, 1e-6);
}

TEST(GeoMed, WeiszfeldMinimizesSumOfDistances) {
  rng::Rng rng(5);
  const auto pts = random_gradients(9, 3, rng);
  const Vector gm = filters::GeometricMedianFilter::weiszfeld(pts, 1e-12, 5000, 1e-12);
  auto objective = [&](const Vector& z) {
    double acc = 0.0;
    for (const auto& p : pts) acc += linalg::distance(z, p);
    return acc;
  };
  const double at_gm = objective(gm);
  // Perturbations in every axis direction must not decrease the objective.
  for (std::size_t k = 0; k < 3; ++k) {
    for (double step : {0.01, -0.01}) {
      Vector z = gm;
      z[k] += step;
      EXPECT_GE(objective(z), at_gm - 1e-6);
    }
  }
}

TEST(GeoMed, RobustToMinorityOutliers) {
  const filters::GeometricMedianFilter gm(7);
  std::vector<Vector> gs;
  for (int i = 0; i < 5; ++i) gs.push_back(Vector{1.0, 1.0});
  gs.push_back(Vector{1e6, 1e6});
  gs.push_back(Vector{-1e6, 1e6});
  EXPECT_LT(linalg::distance(gm.apply(gs), Vector{1.0, 1.0}), 0.01);
}

// ---------------------------------------------------------------- GMOM

TEST(Gmom, DefaultBucketsAreTwoFPlusOne) {
  const filters::GmomFilter gmom(11, 2);
  EXPECT_EQ(gmom.buckets(), 5u);
}

TEST(Gmom, CleanInputsNearPlainMean) {
  rng::Rng rng(11);
  const auto gs = random_gradients(12, 3, rng);
  const filters::GmomFilter gmom(12, 1, 3);
  // With no faults the bucket means cluster around the global mean; the
  // geometric median of three nearby means stays close to it.
  EXPECT_LT(linalg::distance(gmom.apply(gs), linalg::mean(gs)), 1.0);
}

TEST(Gmom, ToleratesMinorityCorruptedBuckets) {
  // 10 gradients at (1,1) plus one huge outlier: the outlier spoils one of
  // 3 buckets; the median of the bucket means ignores it.
  const filters::GmomFilter gmom(11, 1, 3);
  std::vector<Vector> gs(10, Vector{1.0, 1.0});
  gs.push_back(Vector{1e9, -1e9});
  EXPECT_LT(linalg::distance(gmom.apply(gs), Vector{1.0, 1.0}), 0.01);
}

TEST(Gmom, ValidatesBucketCount) {
  EXPECT_THROW(filters::GmomFilter(10, 2, 3), redopt::PreconditionError);   // < 2f+1
  EXPECT_THROW(filters::GmomFilter(4, 2), redopt::PreconditionError);       // 2f+1 > n
  EXPECT_NO_THROW(filters::GmomFilter(10, 2, 5));
}

// ---------------------------------------------------------------- Bulyan

TEST(Bulyan, RequiresFourFPlusThree) {
  EXPECT_THROW(filters::BulyanFilter(6, 1), redopt::PreconditionError);
  EXPECT_NO_THROW(filters::BulyanFilter(7, 1));
}

TEST(Bulyan, IgnoresOutlier) {
  const filters::BulyanFilter bulyan(7, 1);
  std::vector<Vector> gs;
  for (int i = 0; i < 6; ++i) gs.push_back(Vector{1.0 + 0.001 * i, 2.0});
  gs.push_back(Vector{-500.0, 500.0});
  EXPECT_LT(linalg::distance(bulyan.apply(gs), Vector{1.0, 2.0}), 0.1);
}

// ---------------------------------------------------------------- Centered clip

TEST(CenteredClip, CleanClusterAveragesExactly) {
  // All deviations within tau: one re-centering step lands on the mean and
  // stays there.
  const filters::CenteredClipFilter cclip(4, /*tau=*/10.0);
  const std::vector<Vector> gs = {{1.0, 0.0}, {3.0, 0.0}, {2.0, 1.0}, {2.0, -1.0}};
  EXPECT_NEAR(linalg::distance(cclip.apply(gs), Vector{2.0, 0.0}), 0.0, 1e-12);
}

TEST(CenteredClip, OutlierInfluenceBoundedByTauOverN) {
  // A single arbitrarily large outlier moves the output by at most
  // L * tau / n from the clean aggregate.
  const double tau = 1.0;
  const std::size_t inner = 3;
  const filters::CenteredClipFilter cclip(5, tau, inner);
  std::vector<Vector> gs(4, Vector{1.0, 1.0});
  gs.push_back(Vector{1e9, -1e9});
  const Vector out = cclip.apply(gs);
  EXPECT_LE(linalg::distance(out, Vector{1.0, 1.0}),
            static_cast<double>(inner) * tau / 5.0 + 1e-9);
}

TEST(CenteredClip, ValidatesParameters) {
  EXPECT_THROW(filters::CenteredClipFilter(3, 0.0), redopt::PreconditionError);
  EXPECT_THROW(filters::CenteredClipFilter(3, 1.0, 0), redopt::PreconditionError);
}

// ---------------------------------------------------------------- MDA

TEST(Mda, SelectsTightestSubset) {
  const filters::MdaFilter mda(5, 2);
  const std::vector<Vector> gs = {{1.0}, {1.1}, {0.9}, {50.0}, {-50.0}};
  EXPECT_EQ(mda.select(gs), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_NEAR(mda.apply(gs)[0], 1.0, 1e-12);
}

TEST(Mda, FaultFreeIsPlainMean) {
  rng::Rng rng(9);
  const auto gs = random_gradients(6, 3, rng);
  const filters::MdaFilter mda(6, 0);
  EXPECT_NEAR(linalg::distance(mda.apply(gs), linalg::mean(gs)), 0.0, 1e-12);
}

TEST(Mda, RejectsHugeEnumerations) {
  EXPECT_THROW(filters::MdaFilter(64, 32), redopt::PreconditionError);
  EXPECT_NO_THROW(filters::MdaFilter(12, 3));
}

// ---------------------------------------------------------------- Norm clip

TEST(NormClip, ClipsLargeGradients) {
  const filters::NormClipFilter clip(2, 0, 1.0);
  const Vector out = clip.apply({{10.0, 0.0}, {0.0, 0.5}});
  // First clipped to (1, 0); average = (0.5, 0.25).
  EXPECT_NEAR(out[0], 0.5, 1e-12);
  EXPECT_NEAR(out[1], 0.25, 1e-12);
}

TEST(NormClip, AdaptiveThresholdTracksHonestNorms) {
  const filters::NormClipFilter clip(4, 1, 0.0, /*adaptive=*/true);
  const std::vector<Vector> gs = {{1.0}, {2.0}, {3.0}, {1000.0}};
  // Threshold = 3rd smallest norm = 3; clipped sum = 1+2+3+3 = 9; avg 2.25.
  EXPECT_NEAR(clip.apply(gs)[0], 2.25, 1e-12);
}

// ---------------------------------------------------------------- Registry

TEST(Registry, ConstructsEveryRegisteredFilter) {
  FilterParams p;
  p.n = 11;
  p.f = 2;
  p.multikrum_m = 2;
  for (const auto& name : filters::filter_names()) {
    const auto filter = filters::make_filter(name, p);
    ASSERT_NE(filter, nullptr) << name;
    EXPECT_EQ(filter->name(), name);
    EXPECT_EQ(filter->expected_inputs(), 11u);
  }
}

TEST(Registry, RejectsUnknownName) {
  FilterParams p;
  p.n = 5;
  EXPECT_THROW(filters::make_filter("nope", p), redopt::PreconditionError);
  EXPECT_THROW(filters::make_filter("mean", FilterParams{}), redopt::PreconditionError);
}

TEST(Registry, ApplicableNamesRespectConstraints) {
  // n = 5, f = 2: cwtm (needs n > 2f) is allowed, krum (n >= f+3) is
  // allowed, bulyan (n >= 4f+3 = 11) is not.
  const auto names = filters::applicable_filter_names(5, 2);
  EXPECT_NE(std::find(names.begin(), names.end(), "cwtm"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "krum"), names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "bulyan"), names.end());
}

// ---------------------------------------------------------------- Shared properties

/// Property sweep: every filter is permutation-invariant (the aggregate
/// does not depend on agent order) and maps identical inputs to that input.
class FilterPropertyTest : public testing::TestWithParam<std::string> {};

TEST_P(FilterPropertyTest, PermutationInvariant) {
  if (GetParam() == "gmom") {
    // GMOM buckets by agent index (as in its original formulation), so it
    // is deliberately not permutation invariant.
    GTEST_SKIP() << "gmom buckets by agent index";
  }
  FilterParams p;
  p.n = 11;
  p.f = 2;
  p.multikrum_m = 2;
  const auto filter = filters::make_filter(GetParam(), p);
  rng::Rng rng(7);
  auto gs = random_gradients(11, 3, rng);
  const Vector base = filter->apply(gs);
  for (int trial = 0; trial < 5; ++trial) {
    auto perm = rng.permutation(11);
    std::vector<Vector> shuffled(11);
    for (std::size_t i = 0; i < 11; ++i) shuffled[i] = gs[perm[i]];
    EXPECT_NEAR(linalg::distance(filter->apply(shuffled), base), 0.0, 1e-9) << GetParam();
  }
}

TEST_P(FilterPropertyTest, IdenticalInputsMapToScaledInput) {
  FilterParams p;
  p.n = 11;
  p.f = 2;
  p.multikrum_m = 2;
  const auto filter = filters::make_filter(GetParam(), p);
  const Vector g{0.5, -1.5, 2.0};
  const std::vector<Vector> gs(11, g);
  const Vector out = filter->apply(gs);
  // Sum-scaled filters return k * g; norm-clipping may shrink g; all
  // filters must stay on g's ray (positively proportional output).
  const double ratio = out[0] / g[0];
  for (std::size_t k = 0; k < 3; ++k) EXPECT_NEAR(out[k], ratio * g[k], 1e-9);
  EXPECT_GT(ratio, 0.0);
}

TEST_P(FilterPropertyTest, ZeroInputsGiveZeroOutput) {
  FilterParams p;
  p.n = 11;
  p.f = 2;
  p.multikrum_m = 2;
  const auto filter = filters::make_filter(GetParam(), p);
  const std::vector<Vector> gs(11, Vector(4));
  EXPECT_TRUE(filter->apply(gs).is_zero(1e-12)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FilterPropertyTest,
                         testing::ValuesIn(filters::filter_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });
