// Observability pipeline tests: span-log semantics, the agent-island
// blob round trip, merged-manifest and trace determinism across backends
// and thread counts, and attribution-report reconciliation.
//
// The determinism tests are the teeth of the contract stated in
// docs/OBSERVABILITY.md: run one pinned faulty scenario on the inproc
// and socket backends (and again under different runtime thread counts),
// and require the merged telemetry manifest and the Chrome trace to be
// byte-identical after telemetry::stable_json_projection strips the
// wall-clock ("nd"/"ts"/"dur") members and drops timing-dependent
// ("unstable":true) records.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "telemetry/span.h"
#include "transport/session.h"
#include "util/error.h"
#include "util/json.h"

using namespace redopt;

namespace {

/// The pinned determinism scenario: every fault kind plus channel
/// faults, so all attribution columns and span instants move.
chaos::Scenario faulty_scenario() {
  chaos::Scenario s;
  s.name = "observability-pinned";
  s.seed = 19;
  s.problem = "mean";
  s.filter = "cge";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.rounds = 30;

  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 0;
  byz.from = 0;
  byz.until = 0;
  byz.attack = "gradient_reverse";
  byz.attack_param = 1.0;

  chaos::FaultSpec crash;
  crash.kind = chaos::FaultSpec::Kind::kCrash;
  crash.agent = 1;
  crash.from = 2;
  crash.until = 10;

  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 2;
  straggler.from = 1;
  straggler.until = 0;
  straggler.staleness = 3;

  s.faults = {byz, crash, straggler};
  s.channel.drop_probability = 0.1;
  s.channel.duplicate_probability = 0.2;
  s.channel.max_delay = 2;
  return s;
}

transport::SessionOptions opts(transport::BackendKind backend,
                               transport::Topology topology = transport::Topology::kTree) {
  transport::SessionOptions o;
  o.backend = backend;
  o.topology = topology;
  return o;
}

/// Resets the process-wide telemetry state so consecutive sessions in
/// one test binary start from the same blank slate the CLI tools get.
void reset_telemetry() {
  telemetry::registry().reset();
  telemetry::span_log().clear();
  telemetry::set_enabled(true);
}

/// Runs the pinned scenario and returns the stable projections of the
/// merged manifest and the Chrome trace.
struct StableArtifacts {
  std::string manifest;
  std::string trace;
  transport::ScenarioSession session;
};

StableArtifacts run_pinned(const transport::SessionOptions& options) {
  reset_telemetry();
  StableArtifacts out;
  out.session = transport::run_scenario_transport(faulty_scenario(), options);
  out.manifest = telemetry::stable_json_projection(transport::session_manifest_json(out.session));
  out.trace = telemetry::stable_json_projection(transport::session_trace_json(out.session));
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// SpanLog semantics
// ---------------------------------------------------------------------------

TEST(SpanLog, NestsParentageAndClosesLifo) {
  telemetry::SpanLog log;
  const auto a = log.open("outer");
  const auto b = log.open("inner");
  log.attr(b, "round", telemetry::Value(std::int64_t{7}));
  log.instant("tick");
  log.close(b);
  log.close(a);

  ASSERT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.spans()[0].id, a);
  EXPECT_EQ(log.spans()[0].parent, 0u);
  EXPECT_EQ(log.spans()[1].parent, a);
  EXPECT_TRUE(log.spans()[0].closed);
  EXPECT_TRUE(log.spans()[1].closed);
  ASSERT_EQ(log.spans()[1].attributes.size(), 1u);
  EXPECT_EQ(log.spans()[1].attributes[0].first, "round");
  ASSERT_EQ(log.instants().size(), 1u);
  EXPECT_EQ(log.instants()[0].span, b);  // recorded inside the inner span
}

TEST(SpanLog, OutOfOrderCloseClosesInterveningSpans) {
  telemetry::SpanLog log;
  const auto a = log.open("outer");
  (void)log.open("middle");
  (void)log.open("inner");
  log.close(a);  // closes inner and middle on the way out
  for (const telemetry::SpanRecord& span : log.spans()) EXPECT_TRUE(span.closed);
}

TEST(SpanLog, CapacityCapCountsDropsDeterministically) {
  telemetry::SpanLog log(2);
  const auto a = log.open("kept1");
  log.close(a);
  const auto b = log.open("kept2");
  log.close(b);
  const auto c = log.open("dropped");
  log.attr(c, "k", telemetry::Value(std::int64_t{1}));  // no-op past the cap
  log.close(c);
  log.instant("kept-i1");  // the caps are per list: instants have their own
  log.instant("kept-i2");
  log.instant("dropped-i3");

  EXPECT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.instants().size(), 2u);
  EXPECT_EQ(log.opened(), 3u);   // ids keep advancing: structure stays stable
  EXPECT_EQ(log.dropped(), 2u);  // one span + one instant refused
}

TEST(SpanLog, ClearResetsIdsAndEpoch) {
  telemetry::SpanLog log;
  log.close(log.open("before"));
  log.clear();
  EXPECT_TRUE(log.spans().empty());
  EXPECT_EQ(log.opened(), 0u);
  EXPECT_EQ(log.open("after"), 1u);  // ids restart at 1
}

TEST(ScopedSpan, GlobalFormIsInertWhenDisabledExplicitLogAlwaysRecords) {
  telemetry::set_enabled(false);
  telemetry::span_log().clear();
  {
    telemetry::ScopedSpan inert("off.span");
    inert.attr("k", telemetry::Value(std::int64_t{1}));
    EXPECT_EQ(inert.id(), 0u);
    telemetry::span_instant("off.instant");
  }
  EXPECT_TRUE(telemetry::span_log().spans().empty());
  EXPECT_TRUE(telemetry::span_log().instants().empty());

  // Per-agent islands record regardless of the global switch — the
  // switch is fork-inherited state the backends must not depend on.
  telemetry::SpanLog island;
  {
    telemetry::ScopedSpan recorded(island, "island.span");
    EXPECT_NE(recorded.id(), 0u);
  }
  EXPECT_EQ(island.spans().size(), 1u);
  telemetry::set_enabled(true);
}

// ---------------------------------------------------------------------------
// Agent-island blob round trip
// ---------------------------------------------------------------------------

TEST(AgentShip, SnapshotSurvivesSerializeParseRoundTrip) {
  telemetry::AgentTelemetry island;
  auto rounds = island.registry.counter("replica.rounds");
  rounds.inc(12);
  auto norm = island.registry.histogram("replica.gradient_norm",
                                        telemetry::BucketLayout::exponential(1e-3, 4.0, 12));
  norm.observe(0.5);
  {
    telemetry::ScopedSpan span(island.spans, "replica.round");
    span.attr("t", telemetry::Value(std::int64_t{3}));
    island.spans.instant("replica.dropped", {{"t", telemetry::Value(std::int64_t{3})}});
  }

  const std::string blob = telemetry::serialize_agent_telemetry(5, island);
  const telemetry::AgentSnapshot parsed = telemetry::parse_agent_snapshot(blob);

  EXPECT_EQ(parsed.agent, 5u);
  ASSERT_EQ(parsed.metrics.size(), 2u);  // name-sorted like Registry::snapshot()
  EXPECT_EQ(parsed.metrics[0].name, "replica.gradient_norm");
  EXPECT_EQ(parsed.metrics[1].name, "replica.rounds");
  EXPECT_EQ(parsed.metrics[1].counter, 12u);
  ASSERT_EQ(parsed.spans.size(), 1u);
  EXPECT_EQ(parsed.spans[0].name, "replica.round");
  ASSERT_EQ(parsed.spans[0].attributes.size(), 1u);
  ASSERT_EQ(parsed.instants.size(), 1u);
  EXPECT_EQ(parsed.instants[0].name, "replica.dropped");

  // The round trip is canonical: re-serializing the parsed snapshot
  // reproduces the exact bytes (both backends rely on this).
  EXPECT_EQ(telemetry::serialize_agent_snapshot(parsed), blob);
}

TEST(AgentShip, ParseRejectsMalformedBlobs) {
  EXPECT_THROW(telemetry::parse_agent_snapshot("not json"), PreconditionError);
  EXPECT_THROW(telemetry::parse_agent_snapshot("{}"), PreconditionError);
  EXPECT_THROW(telemetry::parse_agent_snapshot("[1,2,3]"), PreconditionError);
}

TEST(AgentShip, MergePrefixesPerAgentMetricNames) {
  telemetry::AgentTelemetry island;
  island.registry.counter("replica.rounds").inc(30);
  const telemetry::AgentSnapshot snapshot =
      telemetry::parse_agent_snapshot(telemetry::serialize_agent_telemetry(3, island));

  const telemetry::Snapshot merged = telemetry::merge_agent_snapshots({}, {snapshot});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].name, "agent.3.replica.rounds");
  EXPECT_EQ(merged[0].counter, 30u);

  const std::string prometheus = telemetry::render_prometheus(merged);
  EXPECT_NE(prometheus.find("redopt_agent_3_replica_rounds 30"), std::string::npos);
}

// ---------------------------------------------------------------------------
// stable_json_projection
// ---------------------------------------------------------------------------

TEST(StableProjection, StripsNdMembersAndUnstableRecords) {
  const std::string projected = telemetry::stable_json_projection(
      R"({"name":"x","nd":{"start_s":1.5},"ts":12,"dur":3,)"
      R"("events":[{"name":"keep"},{"name":"drop","unstable":true}]})");
  const util::JsonValue doc = util::json_parse(projected);
  EXPECT_EQ(doc.find("nd"), nullptr);
  EXPECT_EQ(doc.find("ts"), nullptr);
  EXPECT_EQ(doc.find("dur"), nullptr);
  const util::JsonValue* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 1u);
  EXPECT_EQ(events->items[0].find("name")->string, "keep");
}

// ---------------------------------------------------------------------------
// Cross-backend and cross-thread determinism of the merged artifacts
// ---------------------------------------------------------------------------

TEST(TraceDeterminism, ManifestAndTraceAreByteIdenticalAcrossBackends) {
  const StableArtifacts inproc = run_pinned(opts(transport::BackendKind::kInproc));
  const StableArtifacts socket = run_pinned(opts(transport::BackendKind::kSocket));

  ASSERT_EQ(inproc.session.agents.size(), 8u);
  ASSERT_EQ(socket.session.agents.size(), 8u);
  EXPECT_EQ(inproc.manifest, socket.manifest);
  EXPECT_EQ(inproc.trace, socket.trace);
}

TEST(TraceDeterminism, ManifestAndTraceAreByteIdenticalAcrossThreadCounts) {
  const std::size_t restore = runtime::threads();
  runtime::set_threads(1);
  const StableArtifacts one = run_pinned(opts(transport::BackendKind::kInproc));
  runtime::set_threads(2);
  const StableArtifacts two = run_pinned(opts(transport::BackendKind::kInproc));
  runtime::set_threads(8);
  const StableArtifacts eight = run_pinned(opts(transport::BackendKind::kInproc));
  runtime::set_threads(restore);

  EXPECT_EQ(one.manifest, two.manifest);
  EXPECT_EQ(one.manifest, eight.manifest);
  EXPECT_EQ(one.trace, two.trace);
  EXPECT_EQ(one.trace, eight.trace);
}

TEST(TraceDeterminism, ArtifactsParseAndCoverEveryProcess) {
  const StableArtifacts run = run_pinned(opts(transport::BackendKind::kSocket));

  // The trace is one pid per process: coordinator 0 plus agents 1..8.
  const util::JsonValue trace = util::json_parse(run.trace);
  const util::JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<bool> seen(9, false);
  for (const util::JsonValue& event : events->items) {
    const std::int64_t pid = event.find("pid")->as_int(0, 64);
    seen[static_cast<std::size_t>(pid)] = true;
  }
  for (std::size_t pid = 0; pid < seen.size(); ++pid) {
    EXPECT_TRUE(seen[pid]) << "no trace events for pid " << pid;
  }

  // The manifest carries every agent island.
  const util::JsonValue manifest = util::json_parse(run.manifest);
  const util::JsonValue* agents = manifest.find("agents");
  ASSERT_NE(agents, nullptr);
  EXPECT_EQ(agents->items.size(), 8u);
}

// ---------------------------------------------------------------------------
// Attribution reconciliation
// ---------------------------------------------------------------------------

TEST(Attribution, ReportReconcilesOnBothBackends) {
  for (const auto backend : {transport::BackendKind::kInproc, transport::BackendKind::kSocket}) {
    const StableArtifacts run = run_pinned(opts(backend));
    const transport::AttributionReport& report = run.session.attribution;

    EXPECT_TRUE(report.frames_reconcile) << transport::to_string(backend);
    EXPECT_TRUE(report.bytes_reconcile) << transport::to_string(backend);
    EXPECT_TRUE(report.fates_reconcile) << transport::to_string(backend);
    EXPECT_TRUE(report.agents_reconcile) << transport::to_string(backend);
    ASSERT_TRUE(report.ok()) << transport::to_string(backend);

    // Totals are exact equalities against the transport counters, not
    // approximations: re-add them here so a reconcile-flag bug cannot
    // hide a drifting cost model.
    std::uint64_t frames = 0;
    for (const transport::AgentAttribution& agent : report.agents) {
      frames += agent.frames_delivered;
    }
    EXPECT_EQ(frames, report.stats.frames_delivered);
    EXPECT_EQ(report.exchanges, report.stats.exchanges);
    EXPECT_EQ(report.stats.frames_delivered, run.session.transport.frames_delivered);
    EXPECT_EQ(report.stats.bytes_on_wire, run.session.transport.bytes_on_wire);
  }
}

TEST(Attribution, NetworkMessageModelMatchesInprocSyncNetwork) {
  const StableArtifacts run = run_pinned(opts(transport::BackendKind::kInproc));
  ASSERT_TRUE(run.session.has_network);
  EXPECT_EQ(run.session.attribution.network_messages, run.session.network.messages_delivered);
}

TEST(Attribution, ReportRendersDeterministicTextAndJson) {
  const StableArtifacts a = run_pinned(opts(transport::BackendKind::kInproc));
  const StableArtifacts b = run_pinned(opts(transport::BackendKind::kSocket));
  EXPECT_EQ(a.session.attribution.to_text(), b.session.attribution.to_text());
  EXPECT_EQ(a.session.attribution.to_json(), b.session.attribution.to_json());
  // The JSON form parses strictly and names every agent.
  const util::JsonValue doc = util::json_parse(a.session.attribution.to_json());
  const util::JsonValue* agents = doc.find("agents");
  ASSERT_NE(agents, nullptr);
  EXPECT_EQ(agents->items.size(), 8u);
}
