// Unit tests for the cost-function family, including finite-difference
// verification of every analytic gradient and Hessian.
#include <gtest/gtest.h>

#include <cmath>

#include "core/aggregate_cost.h"
#include "core/least_squares_cost.h"
#include "core/logistic_cost.h"
#include "core/quadratic_cost.h"
#include "core/smoothed_hinge_cost.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using core::CostPtr;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Central finite-difference gradient of @p cost at @p x.
Vector fd_gradient(const core::CostFunction& cost, const Vector& x, double h = 1e-6) {
  Vector g(x.size());
  for (std::size_t k = 0; k < x.size(); ++k) {
    Vector xp = x, xm = x;
    xp[k] += h;
    xm[k] -= h;
    g[k] = (cost.value(xp) - cost.value(xm)) / (2.0 * h);
  }
  return g;
}

void expect_gradient_matches_fd(const core::CostFunction& cost, const Vector& x,
                                double tol = 1e-5) {
  EXPECT_NEAR(linalg::distance(cost.gradient(x), fd_gradient(cost, x)), 0.0, tol)
      << "analytic vs finite-difference gradient mismatch for " << cost.describe();
}

}  // namespace

// ---------------------------------------------------------------- Quadratic

TEST(QuadraticCost, ValueAndGradientHandChecked) {
  // Q(x) = 0.5 x^T diag(2, 4) x + (1, -1)^T x + 3.
  const core::QuadraticCost q(Matrix::diagonal(Vector{2.0, 4.0}), Vector{1.0, -1.0}, 3.0);
  const Vector x{1.0, 2.0};
  EXPECT_DOUBLE_EQ(q.value(x), 0.5 * (2.0 + 16.0) + (1.0 - 2.0) + 3.0);
  EXPECT_EQ(q.gradient(x), (Vector{3.0, 7.0}));
  EXPECT_EQ(q.dimension(), 2u);
}

TEST(QuadraticCost, GradientMatchesFiniteDifference) {
  rng::Rng rng(1);
  Matrix a(4, 3);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.gaussian();
  const core::QuadraticCost q(a.gram(), Vector(rng.gaussian_vector(3)), 0.7);
  expect_gradient_matches_fd(q, Vector(rng.gaussian_vector(3)));
}

TEST(QuadraticCost, HessianIsP) {
  const Matrix p = Matrix::diagonal(Vector{1.0, 2.0});
  const core::QuadraticCost q(p, Vector(2));
  EXPECT_EQ(*q.hessian(Vector{5.0, 5.0}), p);
}

TEST(QuadraticCost, SquaredDistanceMinimizesAtCenter) {
  const Vector center{1.0, -2.0, 3.0};
  const auto q = core::QuadraticCost::squared_distance(center);
  EXPECT_NEAR(q.value(center), 0.0, 1e-12);
  EXPECT_TRUE(q.gradient(center).is_zero(1e-12));
  EXPECT_NEAR(q.value(Vector{1.0, -2.0, 4.0}), 1.0, 1e-12);
}

TEST(QuadraticCost, RejectsAsymmetricOrMismatched) {
  EXPECT_THROW(core::QuadraticCost(Matrix{{1.0, 2.0}, {0.0, 1.0}}, Vector(2)),
               redopt::PreconditionError);
  EXPECT_THROW(core::QuadraticCost(Matrix::identity(2), Vector(3)), redopt::PreconditionError);
  const core::QuadraticCost q(Matrix::identity(2), Vector(2));
  EXPECT_THROW(q.value(Vector(3)), redopt::PreconditionError);
  EXPECT_THROW(q.gradient(Vector(3)), redopt::PreconditionError);
}

TEST(QuadraticCost, CloneIsDeepAndEqualValued) {
  const core::QuadraticCost q(Matrix::identity(2), Vector{1.0, 2.0}, 5.0);
  const auto c = q.clone();
  const Vector x{0.3, -0.4};
  EXPECT_DOUBLE_EQ(c->value(x), q.value(x));
}

// ---------------------------------------------------------------- Least squares

TEST(LeastSquaresCost, SingleObservationMatchesPaperForm) {
  // Q_i(x) = (B_i - A_i x)^2 with A_i = (1, 2), B_i = 3.
  const auto q = core::LeastSquaresCost::single(Vector{1.0, 2.0}, 3.0);
  const Vector x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(q.value(x), 0.0);
  const Vector y{0.0, 0.0};
  EXPECT_DOUBLE_EQ(q.value(y), 9.0);
  // gradient = 2 A^T (A x - b) = 2 * (0 - 3) * (1, 2) at y.
  EXPECT_EQ(q.gradient(y), (Vector{-6.0, -12.0}));
}

TEST(LeastSquaresCost, GradientMatchesFiniteDifference) {
  rng::Rng rng(2);
  Matrix a(5, 3);
  for (std::size_t r = 0; r < 5; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = rng.gaussian();
  const core::LeastSquaresCost q(a, Vector(rng.gaussian_vector(5)));
  expect_gradient_matches_fd(q, Vector(rng.gaussian_vector(3)), 1e-4);
}

TEST(LeastSquaresCost, HessianIsTwiceGram) {
  const Matrix a{{1.0, 0.0}, {0.0, 2.0}};
  const core::LeastSquaresCost q(a, Vector(2));
  const auto h = q.hessian(Vector(2));
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ((*h)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((*h)(1, 1), 8.0);
}

TEST(LeastSquaresCost, RejectsBadShapes) {
  EXPECT_THROW(core::LeastSquaresCost(Matrix(2, 2), Vector(3)), redopt::PreconditionError);
  EXPECT_THROW(core::LeastSquaresCost(Matrix(0, 2), Vector(0)), redopt::PreconditionError);
}

// ---------------------------------------------------------------- Logistic

TEST(LogisticCost, ValueAtZeroIsLog2) {
  const Matrix x{{1.0, 0.0}, {0.0, 1.0}};
  const core::LogisticCost q(x, Vector{1.0, -1.0});
  EXPECT_NEAR(q.value(Vector(2)), std::log(2.0), 1e-12);
}

TEST(LogisticCost, GradientMatchesFiniteDifference) {
  rng::Rng rng(3);
  Matrix x(8, 4);
  Vector y(8);
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 4; ++c) x(r, c) = rng.gaussian();
    y[r] = rng.uniform() < 0.5 ? -1.0 : 1.0;
  }
  const core::LogisticCost q(x, y, 0.1);
  expect_gradient_matches_fd(q, Vector(rng.gaussian_vector(4)), 1e-5);
}

TEST(LogisticCost, HessianMatchesFiniteDifferenceOfGradient) {
  rng::Rng rng(4);
  Matrix x(6, 3);
  Vector y(6);
  for (std::size_t r = 0; r < 6; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.gaussian();
    y[r] = rng.uniform() < 0.5 ? -1.0 : 1.0;
  }
  const core::LogisticCost q(x, y, 0.05);
  const Vector w(rng.gaussian_vector(3));
  const auto h = q.hessian(w);
  ASSERT_TRUE(h.has_value());
  const double step = 1e-6;
  for (std::size_t k = 0; k < 3; ++k) {
    Vector wp = w, wm = w;
    wp[k] += step;
    wm[k] -= step;
    const Vector col = (q.gradient(wp) - q.gradient(wm)) / (2.0 * step);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_NEAR((*h)(j, k), col[j], 1e-4);
  }
}

TEST(LogisticCost, NumericallyStableForExtremeMargins) {
  const Matrix x{{1000.0}};
  const core::LogisticCost q(x, Vector{1.0});
  EXPECT_TRUE(std::isfinite(q.value(Vector{1.0})));
  EXPECT_TRUE(std::isfinite(q.value(Vector{-1.0})));
  EXPECT_TRUE(std::isfinite(q.gradient(Vector{-1.0})[0]));
}

TEST(LogisticCost, RejectsInvalidLabels) {
  EXPECT_THROW(core::LogisticCost(Matrix{{1.0}}, Vector{0.5}), redopt::PreconditionError);
  EXPECT_THROW(core::LogisticCost(Matrix{{1.0}}, Vector{1.0}, -1.0), redopt::PreconditionError);
}

TEST(LogisticCost, AccuracyCountsCorrectSigns) {
  const Matrix x{{1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  const Vector y{1.0, 1.0, -1.0, 1.0};
  const Vector w{1.0, 1.0};
  // margins: 1 (correct), -1 (wrong), 1 vs label -1 (wrong), 0 (tie=wrong).
  EXPECT_DOUBLE_EQ(core::LogisticCost::accuracy(x, y, w), 0.25);
}

// ---------------------------------------------------------------- Smoothed hinge

TEST(SmoothedHingeCost, PiecewiseRegionsHandChecked) {
  const double h = 0.5;
  const Matrix x{{1.0}};
  const core::SmoothedHingeCost q(x, Vector{1.0}, 0.0, h);
  // margin z = w; z >= 1 -> 0.
  EXPECT_DOUBLE_EQ(q.value(Vector{2.0}), 0.0);
  // z = 0.8 in (1-h, 1): (1-z)^2/(2h) = 0.04/1.0 = 0.04.
  EXPECT_NEAR(q.value(Vector{0.8}), 0.04, 1e-12);
  // z = 0 <= 1-h: 1 - z - h/2 = 0.75.
  EXPECT_NEAR(q.value(Vector{0.0}), 0.75, 1e-12);
}

TEST(SmoothedHingeCost, GradientMatchesFiniteDifference) {
  rng::Rng rng(5);
  Matrix x(10, 3);
  Vector y(10);
  for (std::size_t r = 0; r < 10; ++r) {
    for (std::size_t c = 0; c < 3; ++c) x(r, c) = rng.gaussian();
    y[r] = rng.uniform() < 0.5 ? -1.0 : 1.0;
  }
  const core::SmoothedHingeCost q(x, y, 0.02, 0.5);
  expect_gradient_matches_fd(q, Vector(rng.gaussian_vector(3)), 1e-4);
}

TEST(SmoothedHingeCost, ContinuousAcrossBreakpoints) {
  const core::SmoothedHingeCost q(Matrix{{1.0}}, Vector{1.0}, 0.0, 0.5);
  const double eps = 1e-9;
  EXPECT_NEAR(q.value(Vector{1.0 - eps}), q.value(Vector{1.0 + eps}), 1e-7);
  EXPECT_NEAR(q.value(Vector{0.5 - eps}), q.value(Vector{0.5 + eps}), 1e-7);
}

TEST(SmoothedHingeCost, RejectsBadSmoothing) {
  EXPECT_THROW(core::SmoothedHingeCost(Matrix{{1.0}}, Vector{1.0}, 0.0, 0.0),
               redopt::PreconditionError);
  EXPECT_THROW(core::SmoothedHingeCost(Matrix{{1.0}}, Vector{1.0}, 0.0, 1.5),
               redopt::PreconditionError);
}

// ---------------------------------------------------------------- Aggregate

TEST(AggregateCost, SumsValuesAndGradients) {
  auto q1 = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{1.0, 0.0}));
  auto q2 = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{0.0, 1.0}));
  const core::AggregateCost agg({q1, q2});
  const Vector x{1.0, 1.0};
  EXPECT_DOUBLE_EQ(agg.value(x), q1->value(x) + q2->value(x));
  EXPECT_EQ(agg.gradient(x), q1->gradient(x) + q2->gradient(x));
}

TEST(AggregateCost, WeightedAverage) {
  auto q = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{2.0}));
  const auto avg = core::AggregateCost::average({q, q, q, q});
  EXPECT_DOUBLE_EQ(avg.value(Vector{0.0}), q->value(Vector{0.0}));
}

TEST(AggregateCost, HessianSumsOrPropagatesAbsence) {
  auto q = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{0.0}));
  const core::AggregateCost agg({q, q});
  const auto h = agg.hessian(Vector{0.0});
  ASSERT_TRUE(h.has_value());
  EXPECT_DOUBLE_EQ((*h)(0, 0), 4.0);  // 2 + 2
  // Smoothed hinge exposes no Hessian; the aggregate should say so too.
  auto hinge = std::make_shared<core::SmoothedHingeCost>(Matrix{{1.0}}, Vector{1.0});
  const core::AggregateCost mixed({q, hinge});
  EXPECT_FALSE(mixed.hessian(Vector{0.0}).has_value());
}

TEST(AggregateCost, RejectsInvalidConstruction) {
  EXPECT_THROW(core::AggregateCost(std::vector<CostPtr>{}), redopt::PreconditionError);
  auto q1 = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{0.0}));
  auto q2 = std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(
      Vector{0.0, 0.0}));
  EXPECT_THROW(core::AggregateCost({q1, q2}), redopt::PreconditionError);
  EXPECT_THROW(core::AggregateCost({q1, nullptr}), redopt::PreconditionError);
  EXPECT_THROW(core::AggregateCost({q1}, {1.0, 2.0}), redopt::PreconditionError);
}

TEST(AggregateCost, SubsetHelperSelectsByIndex) {
  std::vector<CostPtr> costs;
  for (double c = 0.0; c < 3.0; c += 1.0) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{c})));
  }
  const auto agg = core::aggregate_subset(costs, {0, 2});
  // At x = 0: ||0-0||^2 + ||0-2||^2 = 4.
  EXPECT_DOUBLE_EQ(agg.value(Vector{0.0}), 4.0);
  EXPECT_THROW(core::aggregate_subset(costs, {7}), redopt::PreconditionError);
  EXPECT_THROW(core::aggregate_subset(costs, {}), redopt::PreconditionError);
}
