// Tests for step-size schedules and projection sets.
#include <gtest/gtest.h>

#include <cmath>

#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

// ---------------------------------------------------------------- Schedules

TEST(Schedule, ConstantIsConstant) {
  const dgd::ConstantSchedule s(0.3);
  EXPECT_DOUBLE_EQ(s.step(0), 0.3);
  EXPECT_DOUBLE_EQ(s.step(1000), 0.3);
  EXPECT_THROW(dgd::ConstantSchedule(0.0), redopt::PreconditionError);
}

TEST(Schedule, HarmonicMatchesFormula) {
  const dgd::HarmonicSchedule s(2.0);
  EXPECT_DOUBLE_EQ(s.step(0), 2.0);
  EXPECT_DOUBLE_EQ(s.step(3), 0.5);
  const dgd::HarmonicSchedule offset(1.0, 9.0);
  EXPECT_DOUBLE_EQ(offset.step(0), 0.1);
}

TEST(Schedule, SqrtMatchesFormula) {
  const dgd::SqrtSchedule s(3.0);
  EXPECT_DOUBLE_EQ(s.step(0), 3.0);
  EXPECT_DOUBLE_EQ(s.step(3), 1.5);
}

TEST(Schedule, HarmonicSatisfiesTheorem3Conditions) {
  // sum eta_t diverges (grows like log T) while sum eta_t^2 converges.
  const dgd::HarmonicSchedule s(1.0);
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t t = 0; t < 100'000; ++t) {
    sum += s.step(t);
    sum_sq += s.step(t) * s.step(t);
  }
  EXPECT_GT(sum, 11.0);           // ~ln(1e5) + gamma ~ 12.1
  EXPECT_LT(sum_sq, 1.65);        // -> pi^2/6 ~ 1.645
}

TEST(Schedule, MonotoneNonIncreasing) {
  const auto harmonic = dgd::make_schedule("harmonic", 1.0);
  const auto sqrt_s = dgd::make_schedule("sqrt", 1.0);
  for (std::size_t t = 0; t < 100; ++t) {
    EXPECT_LE(harmonic->step(t + 1), harmonic->step(t));
    EXPECT_LE(sqrt_s->step(t + 1), sqrt_s->step(t));
  }
}

TEST(Schedule, FactoryKnowsAllNamesAndRejectsOthers) {
  EXPECT_EQ(dgd::make_schedule("constant", 1.0)->name(), "constant");
  EXPECT_EQ(dgd::make_schedule("harmonic", 1.0)->name(), "harmonic");
  EXPECT_EQ(dgd::make_schedule("sqrt", 1.0)->name(), "sqrt");
  EXPECT_THROW(dgd::make_schedule("geometric", 1.0), redopt::PreconditionError);
}

// ---------------------------------------------------------------- Projections

TEST(Projection, IdentityIsNoOp) {
  const dgd::IdentityProjection id;
  const Vector x{5.0, -7.0};
  EXPECT_EQ(id.project(x), x);
  EXPECT_TRUE(id.contains(x, 0.0));
}

TEST(Projection, BoxClampsCoordinates) {
  const auto box = dgd::BoxProjection::cube(2, 1.0);
  EXPECT_EQ(box.project(Vector{2.0, -3.0}), (Vector{1.0, -1.0}));
  EXPECT_EQ(box.project(Vector{0.5, 0.5}), (Vector{0.5, 0.5}));
}

TEST(Projection, BoxMembership) {
  const dgd::BoxProjection box(Vector{0.0, 0.0}, Vector{1.0, 2.0});
  EXPECT_TRUE(box.contains(Vector{0.5, 1.5}, 0.0));
  EXPECT_FALSE(box.contains(Vector{1.5, 1.0}, 0.0));
  EXPECT_TRUE(box.contains(Vector{1.0 + 1e-13, 1.0}, 1e-12));
  EXPECT_FALSE(box.contains(Vector{0.5}, 0.0));  // wrong dimension
}

TEST(Projection, BoxValidatesBounds) {
  EXPECT_THROW(dgd::BoxProjection(Vector{1.0}, Vector{0.0}), redopt::PreconditionError);
  EXPECT_THROW(dgd::BoxProjection(Vector{0.0}, Vector{1.0, 2.0}), redopt::PreconditionError);
}

TEST(Projection, BallProjectsRadially) {
  const dgd::BallProjection ball(Vector{0.0, 0.0}, 1.0);
  EXPECT_EQ(ball.project(Vector{0.3, 0.0}), (Vector{0.3, 0.0}));
  const Vector p = ball.project(Vector{3.0, 4.0});
  EXPECT_NEAR(p.norm(), 1.0, 1e-12);
  EXPECT_NEAR(p[0], 0.6, 1e-12);
  EXPECT_NEAR(p[1], 0.8, 1e-12);
}

TEST(Projection, BallOffCenter) {
  const dgd::BallProjection ball(Vector{1.0, 1.0}, 2.0);
  EXPECT_TRUE(ball.contains(Vector{2.0, 2.0}, 0.0));
  const Vector p = ball.project(Vector{1.0, 10.0});
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 3.0, 1e-12);
}

TEST(Projection, ProjectionIsIdempotent) {
  const auto box = dgd::BoxProjection::cube(3, 2.0);
  const dgd::BallProjection ball(Vector(3), 1.5);
  const Vector x{4.0, -9.0, 0.1};
  EXPECT_EQ(box.project(box.project(x)), box.project(x));
  const Vector bp = ball.project(x);
  EXPECT_NEAR(linalg::distance(ball.project(bp), bp), 0.0, 1e-12);
}

TEST(Projection, ProjectionIsNearestPoint) {
  // For convex W the projection is the unique nearest point: verify the
  // distance to the projection lower-bounds distance to sampled members.
  const auto box = dgd::BoxProjection::cube(2, 1.0);
  const Vector x{3.0, 0.4};
  const Vector px = box.project(x);
  const double dist = linalg::distance(x, px);
  for (double a : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
    for (double b : {-1.0, -0.5, 0.0, 0.5, 1.0}) {
      EXPECT_GE(linalg::distance(x, Vector{a, b}) + 1e-12, dist);
    }
  }
}

TEST(Projection, BallValidatesArguments) {
  EXPECT_THROW(dgd::BallProjection(Vector{}, 1.0), redopt::PreconditionError);
  EXPECT_THROW(dgd::BallProjection(Vector{0.0}, -1.0), redopt::PreconditionError);
}
