// Tests for OM(f) Byzantine broadcast: validity, agreement, and the
// classical impossibility boundary.
#include <gtest/gtest.h>

#include "net/byzantine_broadcast.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;
using net::byzantine_broadcast;
using net::NodeId;

namespace {

/// Relay that perturbs per destination — maximal equivocation.
net::ByzantineRelay equivocating_relay() {
  return [](const std::vector<NodeId>& path, NodeId dest, const net::Value& v) {
    net::Value out = v;
    for (auto& c : out) c += 1000.0 * static_cast<double>(dest + 1) + static_cast<double>(path.size());
    return out;
  };
}

}  // namespace

TEST(Majority, StrictMajorityWins) {
  const std::vector<net::Value> values = {Vector{1.0}, Vector{1.0}, Vector{2.0}};
  EXPECT_EQ(net::majority_value(values, 1), (Vector{1.0}));
}

TEST(Majority, NoMajorityYieldsDefault) {
  const std::vector<net::Value> values = {Vector{1.0}, Vector{2.0}, Vector{3.0}, Vector{1.0}};
  EXPECT_EQ(net::majority_value(values, 1), (Vector{0.0}));  // 2/4 is not strict
}

TEST(Broadcast, ValidityWithHonestCommanderNoFaults) {
  const Vector value{3.14, 2.71};
  const auto result = byzantine_broadcast(value, 0, 4, 1, std::vector<bool>(4, false));
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(result.decided[i], value) << "node " << i;
}

TEST(Broadcast, ValidityWithByzantineLieutenant) {
  // Honest commander, one equivocating lieutenant: every honest node must
  // still decide the commander's value (validity).
  const Vector value{1.0};
  for (NodeId traitor = 1; traitor < 4; ++traitor) {
    std::vector<bool> byz(4, false);
    byz[traitor] = true;
    const auto result = byzantine_broadcast(value, 0, 4, 1, byz, equivocating_relay());
    for (NodeId i = 0; i < 4; ++i) {
      if (i == traitor) continue;
      EXPECT_EQ(result.decided[i], value) << "traitor " << traitor << " node " << i;
    }
  }
}

TEST(Broadcast, AgreementWithByzantineCommander) {
  // Byzantine commander equivocates: honest lieutenants may decide anything
  // but must agree with each other.
  const Vector value{5.0, -5.0};
  std::vector<bool> byz(4, false);
  byz[0] = true;
  const auto result = byzantine_broadcast(value, 0, 4, 1, byz, equivocating_relay());
  EXPECT_EQ(result.decided[1], result.decided[2]);
  EXPECT_EQ(result.decided[2], result.decided[3]);
}

TEST(Broadcast, TwoFaultsNeedSevenNodes) {
  // n = 7, f = 2: byzantine commander + byzantine lieutenant both
  // equivocating; the five honest lieutenants must agree.
  const Vector value{1.0};
  std::vector<bool> byz(7, false);
  byz[0] = true;
  byz[3] = true;
  const auto result = byzantine_broadcast(value, 0, 7, 2, byz, equivocating_relay());
  const auto& reference = result.decided[1];
  for (NodeId i : {2u, 4u, 5u, 6u}) EXPECT_EQ(result.decided[i], reference) << "node " << i;
}

TEST(Broadcast, TwoFaultsValidityHolds) {
  const Vector value{9.0};
  std::vector<bool> byz(7, false);
  byz[2] = true;
  byz[5] = true;
  const auto result = byzantine_broadcast(value, 0, 7, 2, byz, equivocating_relay());
  for (NodeId i : {1u, 3u, 4u, 6u}) EXPECT_EQ(result.decided[i], value) << "node " << i;
}

TEST(Broadcast, RejectsTooManyFaults) {
  // The classical n > 3f bound.
  EXPECT_THROW(byzantine_broadcast(Vector{1.0}, 0, 3, 1, std::vector<bool>(3, false)),
               redopt::PreconditionError);
  EXPECT_THROW(byzantine_broadcast(Vector{1.0}, 0, 6, 2, std::vector<bool>(6, false)),
               redopt::PreconditionError);
}

TEST(Broadcast, RejectsMalformedArguments) {
  EXPECT_THROW(byzantine_broadcast(Vector{1.0}, 9, 4, 1, std::vector<bool>(4, false)),
               redopt::PreconditionError);
  EXPECT_THROW(byzantine_broadcast(Vector{1.0}, 0, 4, 1, std::vector<bool>(3, false)),
               redopt::PreconditionError);
  EXPECT_THROW(byzantine_broadcast(Vector{}, 0, 4, 1, std::vector<bool>(4, false)),
               redopt::PreconditionError);
}

TEST(Broadcast, MessageCountGrowsExponentiallyInF) {
  // OM(f) sends (n-1)(n-2)...(n-1-f) messages: verify the counts.
  const Vector value{1.0};
  const auto r0 = byzantine_broadcast(value, 0, 7, 0, std::vector<bool>(7, false));
  EXPECT_EQ(r0.messages, 6u);  // n - 1
  const auto r1 = byzantine_broadcast(value, 0, 7, 1, std::vector<bool>(7, false));
  EXPECT_EQ(r1.messages, 6u + 6u * 5u);
  const auto r2 = byzantine_broadcast(value, 0, 7, 2, std::vector<bool>(7, false));
  EXPECT_EQ(r2.messages, 6u + 6u * (5u + 5u * 4u));
}

TEST(Broadcast, VectorValuedPayloadsSupported) {
  const Vector value{1.5, -2.5, 3.5, 0.0};
  std::vector<bool> byz(5, false);
  byz[4] = true;
  const auto result = byzantine_broadcast(value, 1, 5, 1, byz, equivocating_relay());
  for (NodeId i : {0u, 2u, 3u}) EXPECT_EQ(result.decided[i], value);
}
