// Tests for the dense kernels, the per-round NormCache, the LRU subset
// cache, and the batched least-squares gradient path.
//
// The kernels underwrite the determinism contract (docs/PERFORMANCE.md):
// in the default build every reduction is bit-identical to the naive
// single-accumulator reference loop, so these tests assert EXACT double
// equality, not tolerances.  Under -DREDOPT_FAST_KERNELS=ON the reduction
// kernels reorder their sums, so those assertions relax to near-equality;
// element-wise kernels stay exact in both modes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/batch_gradient.h"
#include "core/least_squares_cost.h"
#include "core/quadratic_cost.h"
#include "core/subset_cache.h"
#include "filters/norm_cache.h"
#include "linalg/kernels.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;
namespace kernels = linalg::kernels;

namespace {

std::vector<double> values(std::size_t n, std::uint64_t seed) {
  rng::Rng rng(seed);
  auto v = rng.gaussian_vector(n);
  return v;
}

// The naive strict-order references the library used before the kernels.
double naive_dot(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

double naive_norm_squared(const double* a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * a[i];
  return acc;
}

double naive_distance_squared(const double* a, const double* b, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

// Checks a reduction kernel against its reference: exact in the default
// build, near under REDOPT_FAST_KERNELS (reordered partial sums).
void expect_reduction(double kernel_value, double reference) {
  if (kernels::fast_mode()) {
    EXPECT_NEAR(kernel_value, reference, 1e-12 * (1.0 + std::abs(reference)));
  } else {
    EXPECT_EQ(kernel_value, reference);
  }
}

}  // namespace

TEST(Kernels, DotMatchesNaiveReference) {
  for (std::size_t n : {0u, 1u, 3u, 7u, 64u, 129u}) {
    const auto a = values(n, 10 + n);
    const auto b = values(n, 20 + n);
    expect_reduction(kernels::dot(a.data(), b.data(), n), naive_dot(a.data(), b.data(), n));
  }
}

TEST(Kernels, NormSquaredMatchesNaiveReference) {
  for (std::size_t n : {1u, 5u, 32u, 101u}) {
    const auto a = values(n, 30 + n);
    expect_reduction(kernels::norm_squared(a.data(), n), naive_norm_squared(a.data(), n));
  }
}

TEST(Kernels, DistanceSquaredMatchesNaiveReference) {
  for (std::size_t n : {1u, 5u, 32u, 101u}) {
    const auto a = values(n, 40 + n);
    const auto b = values(n, 50 + n);
    expect_reduction(kernels::distance_squared(a.data(), b.data(), n),
                     naive_distance_squared(a.data(), b.data(), n));
  }
}

TEST(Kernels, ElementWiseKernelsAreExactInEveryMode) {
  const std::size_t n = 67;
  const auto x = values(n, 60);
  auto y = values(n, 61);
  auto reference = y;

  kernels::axpy(y.data(), 0.37, x.data(), n);
  for (std::size_t i = 0; i < n; ++i) reference[i] += 0.37 * x[i];
  EXPECT_EQ(y, reference);

  kernels::add(y.data(), x.data(), n);
  for (std::size_t i = 0; i < n; ++i) reference[i] += x[i];
  EXPECT_EQ(y, reference);

  kernels::sub(y.data(), x.data(), n);
  for (std::size_t i = 0; i < n; ++i) reference[i] -= x[i];
  EXPECT_EQ(y, reference);

  kernels::scale(y.data(), -1.25, n);
  for (std::size_t i = 0; i < n; ++i) reference[i] *= -1.25;
  EXPECT_EQ(y, reference);
}

TEST(Kernels, MatvecMatchesRowWiseDots) {
  const std::size_t rows = 9;
  const std::size_t cols = 23;
  const auto a = values(rows * cols, 70);
  const auto x = values(cols, 71);
  std::vector<double> out(rows);
  kernels::matvec(a.data(), rows, cols, x.data(), out.data());
  for (std::size_t i = 0; i < rows; ++i) {
    expect_reduction(out[i], naive_dot(a.data() + i * cols, x.data(), cols));
  }
}

TEST(Kernels, MatvecTransposedMatchesAscendingRowAccumulation) {
  const std::size_t rows = 23;
  const std::size_t cols = 9;
  auto a = values(rows * cols, 80);
  auto x = values(rows, 81);
  x[4] = 0.0;  // exercise the exact-zero row skip
  std::vector<double> out(cols, 123.0);  // kernel must zero-init
  kernels::matvec_transposed(a.data(), rows, cols, x.data(), out.data());
  std::vector<double> reference(cols, 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    if (x[i] == 0.0) continue;
    for (std::size_t j = 0; j < cols; ++j) reference[j] += a[i * cols + j] * x[i];
  }
  EXPECT_EQ(out, reference);  // strict order in both modes
}

TEST(Kernels, GemmAddMatchesNaiveTripleLoop) {
  const std::size_t m = 17;
  const std::size_t k = 11;
  const std::size_t n = 13;
  const auto a = values(m * k, 90);
  const auto b = values(k * n, 91);
  std::vector<double> c(m * n, 0.0);
  kernels::gemm_add(a.data(), b.data(), c.data(), m, k, n);
  std::vector<double> reference(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        if (a[i * k + kk] == 0.0) continue;
        reference[i * n + j] += a[i * k + kk] * b[kk * n + j];
      }
    }
  }
  EXPECT_EQ(c, reference);  // blocked but order-preserving in both modes
}

namespace {

std::vector<Vector> make_gradients(std::size_t n, std::size_t d, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<Vector> gs;
  gs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) gs.push_back(Vector(rng.gaussian_vector(d)));
  return gs;
}

}  // namespace

TEST(NormCache, NormsAndPairwiseAreLazyAndCorrect) {
  const auto gradients = make_gradients(6, 11, 100);
  filters::NormCache cache(gradients);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_FALSE(cache.norms_computed());
  EXPECT_FALSE(cache.pairwise_computed());

  const auto& norms = cache.norms();
  EXPECT_TRUE(cache.norms_computed());
  ASSERT_EQ(norms.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(norms[i], gradients[i].norm());

  const auto& dist2 = cache.pairwise_distances_squared();
  EXPECT_TRUE(cache.pairwise_computed());
  ASSERT_EQ(dist2.size(), 36u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(dist2[i * 6 + i], 0.0);
    for (std::size_t j = 0; j < 6; ++j) {
      EXPECT_EQ(dist2[i * 6 + j], dist2[j * 6 + i]);
      EXPECT_EQ(dist2[i * 6 + j], linalg::distance_squared(gradients[i], gradients[j]));
    }
  }
}

TEST(NormCache, ResetInvalidatesAndRebinds) {
  const auto first = make_gradients(4, 5, 101);
  const auto second = make_gradients(3, 5, 102);
  filters::NormCache cache(first);
  (void)cache.norms();
  (void)cache.pairwise_distances_squared();

  cache.reset(second);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.norms_computed());
  EXPECT_FALSE(cache.pairwise_computed());
  const auto& norms = cache.norms();
  ASSERT_EQ(norms.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(norms[i], second[i].norm());
}

TEST(NormCache, UnboundCacheThrows) {
  filters::NormCache cache;
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_THROW(cache.norms(), PreconditionError);
  EXPECT_THROW(cache.pairwise_distances_squared(), PreconditionError);
}

TEST(NormCache, GatherColumnsTransposesExactly) {
  const std::size_t n = 7;
  const std::size_t d = 37;  // not a multiple of the tile size
  const auto gradients = make_gradients(n, d, 103);
  std::vector<double> columns;
  filters::gather_columns(gradients, columns);
  ASSERT_EQ(columns.size(), n * d);
  for (std::size_t k = 0; k < d; ++k) {
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(columns[k * n + i], gradients[i][k]);
  }
}

TEST(SubsetCache, SignaturePacksIndices) {
  EXPECT_EQ(core::SubsetCache::signature({0}), 1u);
  EXPECT_EQ(core::SubsetCache::signature({0, 1, 3}), 0b1011u);
  EXPECT_EQ(core::SubsetCache::signature({63}), 1ull << 63);
  // Order-insensitive: a subset is a set.
  EXPECT_EQ(core::SubsetCache::signature({3, 1, 0}), core::SubsetCache::signature({0, 1, 3}));
  EXPECT_THROW(core::SubsetCache::signature({64}), PreconditionError);
}

TEST(SubsetCache, CountsHitsAndMisses) {
  core::SubsetCache cache(8);
  const auto sig = core::SubsetCache::signature({1, 2});
  EXPECT_EQ(cache.find(sig), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(sig, core::MinimizerSet::singleton(Vector{1.0}));
  const auto* hit = cache.find(sig);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->representative(), Vector{1.0});
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(SubsetCache, EvictsLeastRecentlyUsed) {
  core::SubsetCache cache(2);
  const auto sig_a = core::SubsetCache::signature({0});
  const auto sig_b = core::SubsetCache::signature({1});
  const auto sig_c = core::SubsetCache::signature({2});
  cache.insert(sig_a, core::MinimizerSet::singleton(Vector{1.0}));
  cache.insert(sig_b, core::MinimizerSet::singleton(Vector{2.0}));
  ASSERT_NE(cache.find(sig_a), nullptr);  // refresh A: B is now the LRU entry
  cache.insert(sig_c, core::MinimizerSet::singleton(Vector{3.0}));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(sig_a), nullptr);
  EXPECT_EQ(cache.find(sig_b), nullptr);  // evicted
  EXPECT_NE(cache.find(sig_c), nullptr);
}

namespace {

std::vector<core::CostPtr> make_ls_costs(std::size_t n, std::size_t d, std::size_t rows,
                                         std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<core::CostPtr> costs;
  costs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Matrix a(rows, d);
    for (std::size_t r = 0; r < rows; ++r) {
      const auto row = rng.gaussian_vector(d);
      for (std::size_t c = 0; c < d; ++c) a(r, c) = row[c];
    }
    costs.push_back(
        std::make_shared<core::LeastSquaresCost>(a, Vector(rng.gaussian_vector(rows))));
  }
  return costs;
}

}  // namespace

TEST(BatchGradient, BitIdenticalToVirtualGradientPath) {
  const std::size_t n = 5;
  const std::size_t d = 7;
  const auto costs = make_ls_costs(n, d, 3, 200);
  auto evaluator = core::BatchGradientEvaluator::try_create(costs);
  ASSERT_NE(evaluator, nullptr);
  EXPECT_EQ(evaluator->num_agents(), n);
  EXPECT_EQ(evaluator->dimension(), d);
  EXPECT_EQ(evaluator->agent_rows(0), 3u);

  const Vector x(values(d, 201));
  std::vector<Vector> batch;
  evaluator->evaluate_all(x, batch);
  ASSERT_EQ(batch.size(), n);
  Vector residual_ws;
  Vector single(d);
  for (std::size_t i = 0; i < n; ++i) {
    const Vector expected = costs[i]->gradient(x);
    EXPECT_EQ(batch[i], expected) << "evaluate_all, agent " << i;
    evaluator->evaluate_agent(i, x, residual_ws, single);
    EXPECT_EQ(single, expected) << "evaluate_agent, agent " << i;
  }
}

TEST(BatchGradient, RejectsNonLeastSquaresPopulations) {
  auto costs = make_ls_costs(3, 2, 2, 202);
  costs.push_back(std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{1.0, 2.0})));
  EXPECT_EQ(core::BatchGradientEvaluator::try_create(costs), nullptr);
  EXPECT_EQ(core::BatchGradientEvaluator::try_create({}), nullptr);
}
