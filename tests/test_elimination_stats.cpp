// Tests for the CGE elimination diagnostics.
#include <gtest/gtest.h>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/elimination_stats.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

dgd::TrainerConfig stats_config(std::size_t iterations = 500) {
  dgd::TrainerConfig cfg;
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.3);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = iterations;
  cfg.trace_stride = 0;
  return cfg;
}

}  // namespace

TEST(EliminationStats, LargeNormAttackerAlwaysEliminated) {
  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("large_norm");
  const auto stats =
      dgd::analyze_cge_elimination(inst.problem, {0}, attack.get(), stats_config());
  EXPECT_EQ(stats.survival_counts[0], 0u);  // norm 1e6 can never be among the smallest
  EXPECT_DOUBLE_EQ(stats.all_byzantine_eliminated_fraction, 1.0);
  // With the attacker always out, exactly n - f = 5 honest survive.
  EXPECT_DOUBLE_EQ(stats.mean_honest_retained, 5.0);
  EXPECT_EQ(stats.min_honest_retained, 5u);
}

TEST(EliminationStats, ZeroAttackerAlwaysSurvives) {
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("zero");
  const auto stats =
      dgd::analyze_cge_elimination(inst.problem, {2}, attack.get(), stats_config());
  // The zero vector has the smallest possible norm: it survives every round,
  // displacing one honest gradient.
  EXPECT_EQ(stats.survival_counts[2], stats.iterations);
  EXPECT_DOUBLE_EQ(stats.all_byzantine_eliminated_fraction, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_honest_retained, 4.0);
}

TEST(EliminationStats, FaultFreeRetainsNMinusFHonest) {
  rng::Rng rng(3);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto stats = dgd::analyze_cge_elimination(inst.problem, {}, nullptr, stats_config(100));
  EXPECT_DOUBLE_EQ(stats.all_byzantine_eliminated_fraction, 1.0);  // vacuously
  EXPECT_DOUBLE_EQ(stats.mean_honest_retained, 5.0);  // n - f of 6 honest
  std::size_t total = 0;
  for (std::size_t c : stats.survival_counts) total += c;
  EXPECT_EQ(total, 100u * 5u);
}

TEST(EliminationStats, GradientReverseEvadesNormElimination) {
  // Gradient reversal preserves the norm, so norm-based elimination can
  // rarely single the attacker out — the diagnostic makes this visible
  // (contrast with the large-norm attacker, eliminated 100% of rounds).
  // CGE's resilience against this attack does NOT come from detecting it;
  // the surviving reversed gradient is simply outvoted by the honest sum
  // (Theorem 4's argument), and the run still lands near x_H.
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.05, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto stats =
      dgd::analyze_cge_elimination(inst.problem, {0}, attack.get(), stats_config(2000));
  EXPECT_LT(stats.all_byzantine_eliminated_fraction, 0.5);  // evades detection
  EXPECT_GE(stats.mean_honest_retained, 4.0);               // honest majority retained

  // ... and yet the estimate converges (resilience without detection).
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  auto cfg = stats_config(2000);
  cfg.filter = filters::make_filter("cge", fp);
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  const auto result = dgd::train(inst.problem, {0}, attack.get(), cfg, x_h);
  EXPECT_LT(result.final_distance, 0.15);  // order-epsilon, far from divergence
}

TEST(EliminationStats, ValidatesArguments) {
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = stats_config(10);
  EXPECT_THROW(dgd::analyze_cge_elimination(inst.problem, {0}, nullptr, cfg),
               redopt::PreconditionError);
  EXPECT_THROW(dgd::analyze_cge_elimination(inst.problem, {0, 1},
                                            attacks::make_attack("zero").get(), cfg),
               redopt::PreconditionError);
  cfg.schedule = nullptr;
  EXPECT_THROW(dgd::analyze_cge_elimination(inst.problem, {}, nullptr, cfg),
               redopt::PreconditionError);
}
