// Tests for the deterministic telemetry subsystem: registry semantics,
// histogram bucketing, event sinks, the thread-count bit-identity
// contract, and the wiring into the trainers, filters, exact algorithm,
// and net layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "data/regression.h"
#include "dgd/elimination_stats.h"
#include "dgd/trainer.h"
#include "filters/instrumented.h"
#include "filters/registry.h"
#include "net/sync_network.h"
#include "runtime/runtime.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;
namespace tel = redopt::telemetry;

namespace {

/// Restores the global telemetry switch, sinks, registry values, and the
/// runtime thread count around each test.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = runtime::threads();
    tel::set_enabled(false);
    tel::clear_sinks();
    tel::registry().reset();
  }
  void TearDown() override {
    tel::set_enabled(false);
    tel::clear_sinks();
    tel::registry().reset();
    runtime::set_threads(previous_threads_);
  }

 private:
  std::size_t previous_threads_ = 1;
};

dgd::TrainerConfig paper_config(std::size_t iterations) {
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.3);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = iterations;
  cfg.trace_stride = 0;
  return cfg;
}

const tel::MetricValue* find_metric(const tel::Snapshot& snapshot, const std::string& name) {
  for (const auto& m : snapshot) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

/// Reads a counter's merged value through a snapshot, so a misspelled name
/// never silently registers a fresh zero-valued counter.
std::uint64_t counter_value(const std::string& name) {
  const auto snapshot = tel::registry().snapshot();
  const auto* m = find_metric(snapshot, name);
  return (m != nullptr && m->kind == tel::MetricValue::Kind::kCounter) ? m->counter : 0;
}

/// Asserts every kStable metric has bit-identical merged values in the two
/// snapshots (the core of the determinism contract).
void expect_stable_metrics_equal(const tel::Snapshot& a, const tel::Snapshot& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& x = a[i];
    const auto& y = b[i];
    ASSERT_EQ(x.name, y.name);
    if (x.determinism != tel::Determinism::kStable) continue;
    EXPECT_EQ(x.counter, y.counter) << x.name;
    EXPECT_EQ(x.gauge, y.gauge) << x.name;
    EXPECT_EQ(x.bucket_counts, y.bucket_counts) << x.name;
    EXPECT_EQ(x.overflow_count, y.overflow_count) << x.name;
    EXPECT_EQ(x.count, y.count) << x.name;
    EXPECT_EQ(x.sum, y.sum) << x.name;
    EXPECT_EQ(x.min, y.min) << x.name;
    EXPECT_EQ(x.max, y.max) << x.name;
  }
}

/// A node that rebroadcasts nothing; used for fault-model tests.
class SilentNode final : public net::Node {
 public:
  explicit SilentNode(std::vector<net::Message> to_send_round0 = {})
      : to_send_(std::move(to_send_round0)) {}

  std::vector<net::Message> on_round(std::size_t round,
                                     const std::vector<net::Message>& inbox) override {
    delivered_ += inbox.size();
    if (round == 0) return to_send_;
    return {};
  }

  std::size_t delivered() const { return delivered_; }

 private:
  std::vector<net::Message> to_send_;
  std::size_t delivered_ = 0;
};

net::Message broadcast_msg(Vector payload) {
  net::Message m;
  m.to = net::kBroadcast;
  m.tag = "b";
  m.payload = std::move(payload);
  return m;
}

}  // namespace

TEST_F(TelemetryTest, RegistrationIsIdempotentByName) {
  tel::Registry r;
  const auto a = r.counter("requests");
  const auto b = r.counter("requests");
  EXPECT_EQ(r.size(), 1u);
  a.inc(2);
  b.inc(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
}

TEST_F(TelemetryTest, ReRegistrationMismatchesThrow) {
  tel::Registry r;
  r.counter("m");
  EXPECT_THROW(r.gauge("m"), PreconditionError);
  EXPECT_THROW(r.histogram("m", tel::BucketLayout::linear(0.0, 1.0, 4)), PreconditionError);
  EXPECT_THROW(r.counter("m", tel::Determinism::kUnstable), PreconditionError);

  r.histogram("h", tel::BucketLayout::linear(0.0, 1.0, 4));
  EXPECT_THROW(r.histogram("h", tel::BucketLayout::linear(0.0, 1.0, 5)), PreconditionError);
  EXPECT_NO_THROW(r.histogram("h", tel::BucketLayout::linear(0.0, 1.0, 4)));
}

TEST_F(TelemetryTest, SnapshotOrderIsNameSortedNotRegistrationOrder) {
  // Regression for rule D2: manifest byte-identity must not depend on
  // the order call sites happened to register metrics in (nor on any
  // hash-table layout).  Two registries with the same metrics registered
  // in opposite orders must produce identical snapshots.
  const auto layout = tel::BucketLayout::linear(0.0, 1.0, 3);
  tel::Registry first;
  first.counter("b.count").inc(2);
  first.gauge("a.ratio").set(0.5);
  first.histogram("c.size", layout).observe(1.5);

  tel::Registry second;
  second.histogram("c.size", layout).observe(1.5);
  second.gauge("a.ratio").set(0.5);
  second.counter("b.count").inc(2);

  const auto sa = first.snapshot();
  const auto sb = second.snapshot();
  ASSERT_EQ(sa.size(), 3u);
  EXPECT_EQ(sa[0].name, "a.ratio");
  EXPECT_EQ(sa[1].name, "b.count");
  EXPECT_EQ(sa[2].name, "c.size");
  expect_stable_metrics_equal(sa, sb);
  // The serialized forms (what a manifest actually contains) match too.
  EXPECT_EQ(tel::render_prometheus(sa), tel::render_prometheus(sb));
}

TEST_F(TelemetryTest, BucketLayoutConstruction) {
  const auto lin = tel::BucketLayout::linear(1.0, 0.5, 3);
  EXPECT_EQ(lin.upper_bounds, (std::vector<double>{1.0, 1.5, 2.0}));
  const auto exp = tel::BucketLayout::exponential(1e-2, 10.0, 3);
  EXPECT_EQ(exp.upper_bounds, (std::vector<double>{1e-2, 1e-1, 1.0}));
  EXPECT_THROW(tel::BucketLayout::explicit_bounds({1.0, 1.0}), PreconditionError);
  EXPECT_THROW(tel::BucketLayout::explicit_bounds({}), PreconditionError);
  EXPECT_THROW(tel::BucketLayout::exponential(0.0, 2.0, 3), PreconditionError);
}

TEST_F(TelemetryTest, HistogramBucketingIsInclusiveOnUpperBounds) {
  tel::Registry r;
  const auto h = r.histogram("h", tel::BucketLayout::explicit_bounds({1.0, 2.0, 4.0}));
  h.observe(0.5);  // bucket le=1
  h.observe(1.0);  // bucket le=1 (boundary value is included)
  h.observe(1.5);  // bucket le=2
  h.observe(4.0);  // bucket le=4
  h.observe(5.0);  // overflow
  const auto snap = r.snapshot();
  const auto* m = find_metric(snap, "h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->bucket_counts, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(m->overflow_count, 1u);
  EXPECT_EQ(m->count, 5u);
  EXPECT_DOUBLE_EQ(m->sum, 12.0);
  EXPECT_DOUBLE_EQ(m->min, 0.5);
  EXPECT_DOUBLE_EQ(m->max, 5.0);
}

TEST_F(TelemetryTest, HistogramNanGoesToOverflowAndSkipsAggregates) {
  tel::Registry r;
  const auto h = r.histogram("h", tel::BucketLayout::explicit_bounds({1.0}));
  h.observe(0.5);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  const auto snap = r.snapshot();
  const auto* m = find_metric(snap, "h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u);
  EXPECT_EQ(m->overflow_count, 1u);
  EXPECT_DOUBLE_EQ(m->sum, 0.5);
  EXPECT_DOUBLE_EQ(m->min, 0.5);
  EXPECT_DOUBLE_EQ(m->max, 0.5);
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsRegistrations) {
  tel::Registry r;
  const auto c = r.counter("c");
  const auto g = r.gauge("g");
  const auto h = r.histogram("h", tel::BucketLayout::linear(0.0, 1.0, 2));
  c.inc(7);
  g.set(3.5);
  h.observe(0.5);
  r.reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  const auto snap = r.snapshot();
  const auto* m = find_metric(snap, "h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
}

TEST_F(TelemetryTest, CountersAndHistogramsAreBitIdenticalAcrossThreadCounts) {
  tel::Registry r;
  const auto c = r.counter("work.items");
  const auto h = r.histogram("work.size", tel::BucketLayout::linear(0.0, 16.0, 8));
  const std::size_t kItems = 1000;

  auto workload = [&] {
    runtime::parallel_for(0, kItems, [&](std::size_t i) {
      c.inc(i % 3 + 1);
      // Integer-valued observations: the double sum is exact in any
      // recording order, so even the sum must match bit-for-bit.
      h.observe(static_cast<double>(i % 100));
    });
  };

  runtime::set_threads(1);
  workload();
  const auto serial = r.snapshot();
  r.reset();

  runtime::set_threads(4);
  workload();
  const auto parallel = r.snapshot();

  expect_stable_metrics_equal(serial, parallel);
  const auto* m = find_metric(parallel, "work.items");
  ASSERT_NE(m, nullptr);
  EXPECT_GT(m->counter, 0u);
}

TEST_F(TelemetryTest, JsonlSinkSerializationAndFileRoundTrip) {
  tel::Event e("demo");
  e.with("i", static_cast<std::int64_t>(-3));
  e.with("u", static_cast<std::uint64_t>(7));
  e.with("d", 0.5);
  e.with("flag", true);
  e.with("s", std::string("a\"b\x01"));
  e.with_nd("wall_s", 1.5);
  const std::string expected =
      "{\"event\":\"demo\",\"fields\":{\"i\":-3,\"u\":7,\"d\":0.5,\"flag\":true,"
      "\"s\":\"a\\\"b\\u0001\"},\"nd\":{\"wall_s\":1.5}}";
  EXPECT_EQ(tel::JsonlSink::to_json(e), expected);

  // No-nd events omit the "nd" key entirely, so stripping nd objects from a
  // manifest leaves such lines untouched.
  tel::Event bare("bare");
  bare.with("x", static_cast<std::int64_t>(1));
  EXPECT_EQ(tel::JsonlSink::to_json(bare), "{\"event\":\"bare\",\"fields\":{\"x\":1}}");

  const auto path =
      (std::filesystem::temp_directory_path() / "redopt_test_telemetry.jsonl").string();
  {
    auto sink = std::make_shared<tel::JsonlSink>(path);
    tel::set_enabled(true);
    tel::add_sink(sink);
    tel::emit(e);
    tel::emit(bare);
    tel::remove_sink(sink.get());
  }
  std::ifstream in(path);
  std::string line1, line2, line3;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_FALSE(std::getline(in, line3));
  EXPECT_EQ(line1, expected);
  EXPECT_EQ(line2, "{\"event\":\"bare\",\"fields\":{\"x\":1}}");
  std::remove(path.c_str());

  EXPECT_THROW(tel::JsonlSink("/nonexistent-dir/x/y.jsonl"), PreconditionError);
}

TEST_F(TelemetryTest, EmitRequiresEnabledAndASink) {
  auto sink = std::make_shared<tel::MemorySink>();
  const tel::Event e("ping");

  // Sink attached but telemetry disabled: no emission.
  tel::add_sink(sink);
  EXPECT_FALSE(tel::tracing_enabled());
  tel::emit(e);
  EXPECT_TRUE(sink->events().empty());

  // Enabled without a sink: tracing stays off.
  tel::clear_sinks();
  tel::set_enabled(true);
  EXPECT_FALSE(tel::tracing_enabled());

  tel::add_sink(sink);
  EXPECT_TRUE(tel::tracing_enabled());
  tel::emit(e);
  ASSERT_EQ(sink->events().size(), 1u);
  EXPECT_EQ(sink->events()[0].name, "ping");

  tel::remove_sink(sink.get());
  EXPECT_FALSE(tel::tracing_enabled());
}

TEST_F(TelemetryTest, MetricsSnapshotEventsRouteUnstableValuesToNd) {
  tel::Registry r;
  r.counter("stable.count").inc(4);
  r.counter("wall.count", tel::Determinism::kUnstable).inc(9);

  auto sink = std::make_shared<tel::MemorySink>();
  tel::set_enabled(true);
  tel::add_sink(sink);
  tel::emit_metrics_snapshot(r.snapshot());

  ASSERT_EQ(sink->events().size(), 2u);
  const auto& stable = sink->events()[0];
  EXPECT_EQ(stable.name, "metric");
  ASSERT_EQ(stable.fields.size(), 3u);  // name, kind, value
  EXPECT_EQ(stable.fields[2].first, "value");
  EXPECT_TRUE(stable.nd_fields.empty());

  const auto& unstable = sink->events()[1];
  ASSERT_EQ(unstable.fields.size(), 2u);  // name, kind only
  ASSERT_EQ(unstable.nd_fields.size(), 1u);
  EXPECT_EQ(unstable.nd_fields[0].first, "value");
  EXPECT_EQ(std::get<std::uint64_t>(unstable.nd_fields[0].second), 9u);
}

TEST_F(TelemetryTest, ScopeRecordsCallsAndSeconds) {
  tel::set_enabled(true);
  {
    tel::Scope scope("unit.op");
    EXPECT_GE(scope.elapsed_seconds(), 0.0);
  }
  { tel::Scope scope("unit.op"); }
  EXPECT_EQ(counter_value("unit.op.calls"), 2u);
  const auto snap = tel::registry().snapshot();
  const auto* seconds = find_metric(snap, "unit.op.seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->determinism, tel::Determinism::kUnstable);
  EXPECT_EQ(seconds->count, 2u);

  // Disabled at construction: fully inert.
  tel::set_enabled(false);
  { tel::Scope scope("unit.op"); }
  tel::set_enabled(true);
  EXPECT_EQ(counter_value("unit.op.calls"), 2u);
}

TEST_F(TelemetryTest, RenderPrometheusExposition) {
  tel::Registry r;
  r.counter("app.requests").inc(3);
  r.gauge("app.ratio").set(0.25);
  const auto h =
      r.histogram("app.latency", tel::BucketLayout::explicit_bounds({1.0, 2.0}),
                  tel::Determinism::kUnstable);
  h.observe(0.5);
  h.observe(1.5);
  h.observe(9.0);
  const std::string text = tel::render_prometheus(r.snapshot());
  EXPECT_NE(text.find("# TYPE redopt_app_requests counter\nredopt_app_requests 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("redopt_app_ratio 0.25"), std::string::npos);
  EXPECT_NE(text.find("# NONDETERMINISTIC redopt_app_latency"), std::string::npos);
  // Cumulative bucket counts plus the +Inf bucket.
  EXPECT_NE(text.find("redopt_app_latency_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("redopt_app_latency_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("redopt_app_latency_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("redopt_app_latency_count 3"), std::string::npos);
}

TEST_F(TelemetryTest, InstrumentedFilterIsAPureDecorator) {
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  const filters::FilterPtr inner = filters::make_filter("cge", fp);
  const auto wrapped = filters::instrument(inner, "unit");

  rng::Rng rng(7);
  std::vector<Vector> gradients;
  for (std::size_t i = 0; i < 6; ++i) {
    gradients.push_back(Vector{rng.uniform(), rng.uniform()});
  }

  EXPECT_EQ(wrapped->name(), inner->name());
  EXPECT_EQ(wrapped->expected_inputs(), inner->expected_inputs());
  EXPECT_EQ(wrapped->accepted_inputs(gradients), inner->accepted_inputs(gradients));
  EXPECT_EQ(wrapped->apply(gradients), inner->apply(gradients));

  // One apply() recorded: 6 norms observed, n - f accepted, f rejected,
  // and exactly the surviving agents' accept counters bumped.
  EXPECT_EQ(counter_value("unit.filter.cge.accepted_total"), 5u);
  EXPECT_EQ(counter_value("unit.filter.cge.rejected_total"), 1u);
  const auto snap = tel::registry().snapshot();
  const auto* norms = find_metric(snap, "unit.filter.cge.gradient_norm");
  ASSERT_NE(norms, nullptr);
  EXPECT_EQ(norms->count, 6u);
  const auto accepted = inner->accepted_inputs(gradients);
  for (std::size_t i = 0; i < 6; ++i) {
    const bool in = std::find(accepted.begin(), accepted.end(), i) != accepted.end();
    EXPECT_EQ(counter_value("unit.filter.cge.accept.agent_" + std::to_string(i)), in ? 1u : 0u);
  }
}

TEST_F(TelemetryTest, TrainerTelemetryIsBitIdenticalAcrossThreadCounts) {
  tel::set_enabled(true);
  rng::Rng rng(11);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.03, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = paper_config(120);

  runtime::set_threads(1);
  const auto r1 = dgd::train(inst.problem, {0}, attack.get(), cfg);
  const auto serial = tel::registry().snapshot();
  tel::registry().reset();

  runtime::set_threads(4);
  const auto r4 = dgd::train(inst.problem, {0}, attack.get(), cfg);
  const auto parallel = tel::registry().snapshot();

  EXPECT_EQ(r1.estimate, r4.estimate);
  expect_stable_metrics_equal(serial, parallel);
  const auto* iters = find_metric(parallel, "dgd.iterations");
  ASSERT_NE(iters, nullptr);
  EXPECT_EQ(iters->counter, 120u);
}

TEST_F(TelemetryTest, CgeAcceptCountersMatchEliminationStats) {
  tel::set_enabled(true);
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.05, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = paper_config(300);

  const auto stats = dgd::analyze_cge_elimination(inst.problem, {0}, attack.get(), cfg);
  dgd::train(inst.problem, {0}, attack.get(), cfg);

  std::uint64_t accepted_total = 0;
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(counter_value("dgd.filter.cge.accept.agent_" + std::to_string(i)),
              stats.survival_counts[i])
        << "agent " << i;
    accepted_total += stats.survival_counts[i];
  }
  EXPECT_EQ(counter_value("dgd.filter.cge.accepted_total"), accepted_total);
  EXPECT_EQ(counter_value("dgd.filter.cge.rejected_total"), 300u * 6u - accepted_total);
  EXPECT_EQ(counter_value("dgd.iterations"), 300u);
}

TEST_F(TelemetryTest, ExactAlgorithmCountersAndEvent) {
  auto sink = std::make_shared<tel::MemorySink>();
  tel::set_enabled(true);
  tel::add_sink(sink);

  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto result = core::run_exact_algorithm(inst.problem.costs, 1);
  EXPECT_EQ(result.subsets_evaluated, 6u);

  EXPECT_EQ(counter_value("exact.runs"), 1u);
  EXPECT_EQ(counter_value("exact.outer_candidates"), 6u);
  EXPECT_GT(counter_value("exact.inner_evaluations"), 0u);

  const tel::Event* run_event = nullptr;
  for (const auto& e : sink->events()) {
    if (e.name == "exact.run") run_event = &e;
  }
  ASSERT_NE(run_event, nullptr);
  ASSERT_GE(run_event->fields.size(), 4u);
  EXPECT_EQ(run_event->fields[0].first, "n");
  EXPECT_EQ(std::get<std::uint64_t>(run_event->fields[0].second), 6u);
  EXPECT_EQ(run_event->fields[1].first, "f");
  EXPECT_EQ(std::get<std::uint64_t>(run_event->fields[1].second), 1u);
  EXPECT_EQ(run_event->fields[2].first, "sampled");
  EXPECT_FALSE(std::get<bool>(run_event->fields[2].second));
  // The inner-evaluation count depends on the lane-local pruning pattern,
  // so it travels in the nd section.
  ASSERT_EQ(run_event->nd_fields.size(), 1u);
  EXPECT_EQ(run_event->nd_fields[0].first, "inner_evaluations");
}

TEST_F(TelemetryTest, LosslessNetworkDeliversEverythingItSends) {
  SilentNode sender({broadcast_msg(Vector{1.0, 2.0})});
  SilentNode r1, r2;
  net::SyncNetwork network({&sender, &r1, &r2});
  network.run(2);
  const auto& s = network.stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_delivered, 2u);
  EXPECT_EQ(s.messages_dropped, 0u);
  EXPECT_EQ(s.messages_delayed, 0u);
  EXPECT_EQ(s.scalars_transferred, 4u);
  EXPECT_EQ(counter_value("net.messages_sent"), 2u);
  EXPECT_EQ(counter_value("net.messages_delivered"), 2u);
  EXPECT_EQ(counter_value("net.rounds"), 2u);
}

TEST_F(TelemetryTest, DropAllFaultsDeliverNothing) {
  net::LinkFaults faults;
  faults.drop_probability = 1.0;
  SilentNode sender({broadcast_msg(Vector{1.0})});
  SilentNode r1, r2;
  net::SyncNetwork network({&sender, &r1, &r2}, faults);
  network.run(3);
  const auto& s = network.stats();
  EXPECT_EQ(s.messages_sent, 2u);
  EXPECT_EQ(s.messages_dropped, 2u);
  EXPECT_EQ(s.messages_delivered, 0u);
  EXPECT_EQ(r1.delivered() + r2.delivered(), 0u);
  EXPECT_EQ(counter_value("net.messages_dropped"), 2u);
}

TEST_F(TelemetryTest, DelayedMessagesArriveAndConserveCounts) {
  net::LinkFaults faults;
  faults.max_delay = 3;
  faults.seed = 5;
  SilentNode sender({broadcast_msg(Vector{1.0, 2.0, 3.0})});
  std::vector<SilentNode> receivers(4);
  std::vector<net::Node*> nodes{&sender};
  for (auto& r : receivers) nodes.push_back(&r);
  net::SyncNetwork network(nodes, faults);
  // Enough rounds for every delayed copy (max 3 extra rounds) to land.
  network.run(8);
  const auto& s = network.stats();
  EXPECT_EQ(s.messages_sent, 4u);
  EXPECT_EQ(s.messages_dropped, 0u);
  EXPECT_EQ(s.messages_delivered, 4u);  // conservation: all sent arrive
  std::size_t received = 0;
  for (const auto& r : receivers) received += r.delivered();
  EXPECT_EQ(received, 4u);
  EXPECT_EQ(s.scalars_transferred, 12u);
}

TEST_F(TelemetryTest, FaultyNetworkIsReproducible) {
  auto run_once = [] {
    net::LinkFaults faults;
    faults.drop_probability = 0.4;
    faults.max_delay = 2;
    faults.seed = 9;
    SilentNode sender({broadcast_msg(Vector{1.0})});
    std::vector<SilentNode> receivers(5);
    std::vector<net::Node*> nodes{&sender};
    for (auto& r : receivers) nodes.push_back(&r);
    net::SyncNetwork network(nodes, faults);
    network.run(6);
    return network.stats();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.messages_delayed, b.messages_delayed);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
  EXPECT_EQ(a.messages_sent, a.messages_dropped + a.messages_delivered + 0u);
}
