// Tests for the exhaustive exact algorithm (Theorem 2's construction):
// exact fault-tolerance under 2f-redundancy, (f, 2 eps)-resilience under
// (2f, eps)-redundancy.
#include <gtest/gtest.h>

#include "core/exact_algorithm.h"
#include "core/least_squares_cost.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "redundancy/redundancy.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "util/error.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;

namespace {

/// Builds the received-cost vector: honest agents send their true costs,
/// Byzantine agents send @p byzantine_cost.
std::vector<core::CostPtr> with_byzantine(const std::vector<core::CostPtr>& honest_costs,
                                          const std::vector<std::size_t>& byzantine_ids,
                                          const core::CostPtr& byzantine_cost) {
  std::vector<core::CostPtr> received = honest_costs;
  for (std::size_t id : byzantine_ids) received[id] = byzantine_cost;
  return received;
}

}  // namespace

TEST(ExactAlgorithm, RecoversMinimumUnderRedundancyNoFaults) {
  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto result = core::run_exact_algorithm(inst.problem.costs, 1);
  EXPECT_NEAR(linalg::distance(result.output, Vector{1.0, 1.0}), 0.0, 1e-7);
  EXPECT_NEAR(result.chosen_score, 0.0, 1e-7);
  EXPECT_EQ(result.subsets_evaluated, 6u);  // C(6, 5)
}

TEST(ExactAlgorithm, ExactToleranceAgainstAdversarialCost) {
  // One Byzantine agent submits a cost pulling toward (100, 100); under
  // exact 2f-redundancy the output must still be x* exactly.
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{100.0, 100.0}));
  for (std::size_t byz = 0; byz < 6; ++byz) {
    const auto received = with_byzantine(inst.problem.costs, {byz}, bad);
    const auto result = core::run_exact_algorithm(received, 1);
    EXPECT_NEAR(linalg::distance(result.output, Vector{1.0, 1.0}), 0.0, 1e-6)
        << "byzantine agent " << byz;
  }
}

TEST(ExactAlgorithm, TwoFaultsWithEnoughRedundancy) {
  rng::Rng rng(3);
  const Matrix a = data::redundant_matrix(9, 2, 2, rng);
  const Vector x_star{-0.5, 2.0};
  const auto inst = data::make_regression(a, x_star, 0.0, 2, rng);
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{-50.0, 7.0}));
  const auto received = with_byzantine(inst.problem.costs, {1, 4}, bad);
  const auto result = core::run_exact_algorithm(received, 2);
  EXPECT_NEAR(linalg::distance(result.output, x_star), 0.0, 1e-6);
}

TEST(ExactAlgorithm, ResilienceBoundUnderNoisyRedundancy) {
  // Theorem 2: under (2f, eps)-redundancy the output is within 2*eps of
  // the honest aggregate argmin, for EVERY choice of Byzantine agent and
  // an adversarially chosen Byzantine cost.
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.05, 1, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  ASSERT_GT(eps, 0.0);

  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{3.0, -3.0}));
  for (std::size_t byz = 0; byz < 6; ++byz) {
    const auto received = with_byzantine(inst.problem.costs, {byz}, bad);
    const auto result = core::run_exact_algorithm(received, 1);
    // Honest set: everyone but byz.
    const auto honest = util::complement(6, {byz});
    const Vector x_h = data::regression_argmin(inst, honest);
    EXPECT_LE(linalg::distance(result.output, x_h), 2.0 * eps + 1e-9)
        << "byzantine agent " << byz;
  }
}

TEST(ExactAlgorithm, ScoreOfChosenSetBoundedByEpsilon) {
  // From the proof: r_S <= r_G <= eps for the honest set G, so the chosen
  // score never exceeds the measured redundancy epsilon.
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.08, 1, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{9.0, 9.0}));
  const auto received = with_byzantine(inst.problem.costs, {2}, bad);
  const auto result = core::run_exact_algorithm(received, 1);
  EXPECT_LE(result.chosen_score, eps + 1e-9);
}

TEST(SampledExactAlgorithm, MatchesExhaustiveWhenBudgetCoversSpace) {
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.03, 1, rng);
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{50.0, -50.0}));
  const auto received = with_byzantine(inst.problem.costs, {2}, bad);
  const auto exhaustive = core::run_exact_algorithm(received, 1);
  core::SampledExactOptions sampling;
  sampling.outer_samples = 100;  // > C(6, 1) = 6: full enumeration path
  sampling.inner_samples = 100;
  const auto sampled = core::run_sampled_exact_algorithm(received, 1, sampling);
  EXPECT_EQ(sampled.chosen_set, exhaustive.chosen_set);
  EXPECT_NEAR(linalg::distance(sampled.output, exhaustive.output), 0.0, 1e-12);
}

TEST(SampledExactAlgorithm, GuidedModeRecoversAtScale) {
  // n = 24, f = 5: exhaustive enumeration is infeasible (C(24,5) = 42504
  // outer subsets with ~1e5 inner subsets each); guided sampling nominates
  // the honest subset via argmin centrality and certifies it with the
  // revealing inner candidate.
  const std::size_t n = 24, f = 5, d = 3;
  rng::Rng rng(8);
  std::vector<core::CostPtr> costs;
  Vector honest_mean(d);
  for (std::size_t i = 0; i < n; ++i) {
    Vector center(d, 1.0);
    for (auto& c : center) c += rng.gaussian(0.0, 0.02);
    if (i >= f) honest_mean += center;
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  honest_mean /= static_cast<double>(n - f);
  for (std::size_t b = 0; b < f; ++b) {
    costs[b] = std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector(d, 40.0)));
  }
  core::SampledExactOptions sampling;
  sampling.outer_samples = 64;
  sampling.inner_samples = 64;
  sampling.guided = true;
  const auto result = core::run_sampled_exact_algorithm(costs, f, sampling);
  EXPECT_LT(linalg::distance(result.output, honest_mean), 0.05);
  // The chosen set excludes every Byzantine agent.
  for (std::size_t member : result.chosen_set) EXPECT_GE(member, f);
}

TEST(SampledExactAlgorithm, ValidatesArguments) {
  std::vector<core::CostPtr> costs;
  for (int i = 0; i < 5; ++i) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{0.0})));
  }
  core::SampledExactOptions sampling;
  sampling.outer_samples = 0;
  EXPECT_THROW(core::run_sampled_exact_algorithm(costs, 1, sampling),
               redopt::PreconditionError);
  EXPECT_THROW(core::run_sampled_exact_algorithm(costs, 0), redopt::PreconditionError);
  EXPECT_THROW(core::run_sampled_exact_algorithm(costs, 3), redopt::PreconditionError);
}

TEST(ExactAlgorithm, ValidatesArguments) {
  std::vector<core::CostPtr> costs;
  for (int i = 0; i < 3; ++i) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{0.0})));
  }
  EXPECT_THROW(core::run_exact_algorithm(costs, 0), redopt::PreconditionError);   // f = 0
  EXPECT_THROW(core::run_exact_algorithm(costs, 2), redopt::PreconditionError);   // n <= 2f
  costs[1] = nullptr;
  EXPECT_THROW(core::run_exact_algorithm(costs, 1), redopt::PreconditionError);
}

TEST(ExactAlgorithm, ChosenSetHasCorrectSize) {
  rng::Rng rng(6);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto result = core::run_exact_algorithm(inst.problem.costs, 1);
  EXPECT_EQ(result.chosen_set.size(), 5u);  // n - f
}

TEST(ExactAlgorithm, MemoizerReusesInnerArgminEvaluations) {
  // At threads = 1 the whole enumeration is one chunk with one memoizer,
  // so the counters are deterministic enough to assert on: every inner
  // lookup is a hit or a miss, distinct (n - 2f)-subsets bound the
  // misses (C(6, 4) = 15 here), and overlapping outer subsets guarantee
  // genuine hits.
  const std::size_t previous = runtime::threads();
  runtime::set_threads(1);
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto result = core::run_exact_algorithm(inst.problem.costs, 1);
  runtime::set_threads(previous);
  EXPECT_EQ(result.inner_evaluations, result.inner_cache_hits + result.inner_cache_misses);
  EXPECT_LE(result.inner_cache_misses, 15u);
  EXPECT_GT(result.inner_cache_hits, 0u);
}
