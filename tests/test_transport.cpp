// Tests for src/transport/: topology shapes, the wire codec, pure
// channel-fault streams, and — the subsystem's load-bearing contract —
// the cross-backend oracle: a pinned suite of seeded scenarios (faulty
// ones included) must produce byte-identical estimate traces on the
// in-process backend and the multi-process socket backend, over every
// reduction topology, with matching deterministic telemetry.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/properties.h"
#include "chaos/scenario.h"
#include "dgd/projection.h"
#include "dgd/schedule.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "net/server_protocol.h"
#include "telemetry/metrics.h"
#include "transport/agent_replica.h"
#include "transport/channel.h"
#include "transport/session.h"
#include "transport/socket_transport.h"
#include "transport/topology.h"
#include "util/error.h"
#include "util/frame.h"

using namespace redopt;
using transport::BackendKind;
using transport::SessionOptions;
using transport::Topology;

namespace {

SessionOptions opts(BackendKind backend, Topology topology) {
  SessionOptions o;
  o.backend = backend;
  o.topology = topology;
  return o;
}

chaos::FaultSpec byzantine(std::size_t agent, std::size_t from, std::size_t until,
                           double param = 1.0) {
  chaos::FaultSpec spec;
  spec.kind = chaos::FaultSpec::Kind::kByzantine;
  spec.agent = agent;
  spec.from = from;
  spec.until = until;
  spec.attack = "gradient_reverse";
  spec.attack_param = param;
  return spec;
}

chaos::FaultSpec crash(std::size_t agent, std::size_t from, std::size_t until) {
  chaos::FaultSpec spec;
  spec.kind = chaos::FaultSpec::Kind::kCrash;
  spec.agent = agent;
  spec.from = from;
  spec.until = until;
  return spec;
}

chaos::FaultSpec straggler(std::size_t agent, std::size_t staleness) {
  chaos::FaultSpec spec;
  spec.kind = chaos::FaultSpec::Kind::kStraggler;
  spec.agent = agent;
  spec.from = 1;
  spec.until = 0;
  spec.staleness = staleness;
  return spec;
}

chaos::Scenario base_scenario(const std::string& name, std::uint64_t seed) {
  chaos::Scenario s;
  s.name = name;
  s.seed = seed;
  s.problem = "mean";
  s.filter = "cge";
  s.n = 6;
  s.f = 1;
  s.d = 2;
  s.rounds = 30;
  return s;
}

/// The pinned cross-backend suite: clean runs, every fault kind, channel
/// faults, every problem family.  Adding a scenario here extends the
/// oracle; never weaken an existing one.
std::vector<chaos::Scenario> pinned_suite() {
  std::vector<chaos::Scenario> suite;

  suite.push_back(base_scenario("clean-cge", 11));

  chaos::Scenario s = base_scenario("clean-cwtm", 12);
  s.filter = "cwtm";
  s.n = 7;
  s.f = 2;
  s.d = 3;
  suite.push_back(s);

  s = base_scenario("byz-reverse", 13);
  s.faults = {byzantine(0, 0, 0)};
  suite.push_back(s);

  s = base_scenario("byz-window", 14);
  s.filter = "cwtm";
  s.n = 7;
  s.f = 2;
  s.faults = {byzantine(1, 5, 20, 2.0)};
  suite.push_back(s);

  s = base_scenario("crash-recover", 15);
  s.faults = {crash(2, 1, 15)};
  suite.push_back(s);

  s = base_scenario("straggler", 16);
  s.faults = {straggler(3, 2)};
  suite.push_back(s);

  s = base_scenario("channel-drop", 17);
  s.channel.drop_probability = 0.2;
  suite.push_back(s);

  s = base_scenario("channel-dup-delay", 18);
  s.filter = "cwtm";
  s.n = 7;
  s.f = 2;
  s.channel.duplicate_probability = 0.3;
  s.channel.max_delay = 2;
  suite.push_back(s);

  s = base_scenario("mixed-faults", 19);
  s.n = 8;
  s.f = 2;
  s.faults = {byzantine(0, 0, 0), crash(1, 2, 10), straggler(2, 3)};
  s.channel.drop_probability = 0.1;
  s.channel.duplicate_probability = 0.2;
  s.channel.max_delay = 2;
  suite.push_back(s);

  s = base_scenario("regression-cge", 20);
  s.problem = "regression";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.faults = {byzantine(4, 0, 0)};
  suite.push_back(s);

  s = base_scenario("block-regression-cwtm", 21);
  s.problem = "block_regression";
  s.filter = "cwtm";
  s.n = 9;
  s.f = 2;
  s.d = 3;
  s.faults = {byzantine(3, 0, 0), crash(5, 1, 0)};
  suite.push_back(s);

  return suite;
}

/// Stable (bit-identity-covered) chaos.* / transport.* counters from the
/// global registry.  net.* is deliberately out of scope: it belongs to
/// the inproc backend's internal SyncNetwork substrate, which the socket
/// backend replaces wholesale — the session-level manifest is what both
/// backends must agree on.
std::map<std::string, std::uint64_t> session_manifest() {
  std::map<std::string, std::uint64_t> manifest;
  for (const telemetry::MetricValue& m : telemetry::registry().snapshot()) {
    if (m.determinism != telemetry::Determinism::kStable) continue;
    if (m.kind != telemetry::MetricValue::Kind::kCounter) continue;
    if (m.name.rfind("chaos.", 0) != 0 && m.name.rfind("transport.", 0) != 0) continue;
    manifest[m.name] = m.counter;
  }
  return manifest;
}

void expect_sessions_identical(const transport::ScenarioSession& a,
                               const transport::ScenarioSession& b, const std::string& label) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size()) << label;
  for (std::size_t t = 0; t < a.estimates.size(); ++t) {
    EXPECT_EQ(a.estimates[t], b.estimates[t]) << label << " diverges at round " << t;
  }
  EXPECT_EQ(a.result.estimate, b.result.estimate) << label;
  EXPECT_EQ(a.result.final_distance, b.result.final_distance) << label;
  EXPECT_EQ(a.result.max_distance, b.result.max_distance) << label;
  EXPECT_EQ(a.result.byzantine_replies, b.result.byzantine_replies) << label;
  EXPECT_EQ(a.result.crashed_absences, b.result.crashed_absences) << label;
  EXPECT_EQ(a.result.stale_replies, b.result.stale_replies) << label;
  EXPECT_EQ(a.result.dropped_replies, b.result.dropped_replies) << label;
  EXPECT_EQ(a.result.delayed_replies, b.result.delayed_replies) << label;
  EXPECT_EQ(a.result.duplicated_replies, b.result.duplicated_replies) << label;
  EXPECT_EQ(a.result.superseded_replies, b.result.superseded_replies) << label;
  EXPECT_EQ(a.result.filter_rebuilds, b.result.filter_rebuilds) << label;
  // Deterministic transport traffic: same frames, same bytes, same depth.
  EXPECT_EQ(a.transport.exchanges, b.transport.exchanges) << label;
  EXPECT_EQ(a.transport.frames_delivered, b.transport.frames_delivered) << label;
  EXPECT_EQ(a.transport.bytes_on_wire, b.transport.bytes_on_wire) << label;
  EXPECT_EQ(a.transport.reduce_rounds, b.transport.reduce_rounds) << label;
}

}  // namespace

// ---------------------------------------------------------------------------
// Topologies
// ---------------------------------------------------------------------------

TEST(TransportTopology, StarPutsEveryAgentUnderTheCoordinator) {
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(transport::parent_of(Topology::kStar, i, 5), transport::kCoordinatorNode);
    EXPECT_EQ(transport::depth_of(Topology::kStar, i, 5), 1u);
    EXPECT_TRUE(transport::children_of(Topology::kStar, i, 5).empty());
  }
  EXPECT_EQ(transport::children_of(Topology::kStar, transport::kCoordinatorNode, 5),
            (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(transport::max_depth(Topology::kStar, 5), 1u);
}

TEST(TransportTopology, ChainIsASingleLine) {
  EXPECT_EQ(transport::parent_of(Topology::kChain, 0, 4), transport::kCoordinatorNode);
  EXPECT_EQ(transport::parent_of(Topology::kChain, 3, 4), 2u);
  EXPECT_EQ(transport::children_of(Topology::kChain, transport::kCoordinatorNode, 4),
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(transport::children_of(Topology::kChain, 1, 4), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(transport::children_of(Topology::kChain, 3, 4).empty());
  EXPECT_EQ(transport::depth_of(Topology::kChain, 3, 4), 4u);
  EXPECT_EQ(transport::max_depth(Topology::kChain, 4), 4u);
}

TEST(TransportTopology, TreeIsBinaryHeapOrder) {
  EXPECT_EQ(transport::parent_of(Topology::kTree, 0, 7), transport::kCoordinatorNode);
  EXPECT_EQ(transport::parent_of(Topology::kTree, 1, 7), 0u);
  EXPECT_EQ(transport::parent_of(Topology::kTree, 2, 7), 0u);
  EXPECT_EQ(transport::parent_of(Topology::kTree, 6, 7), 2u);
  EXPECT_EQ(transport::children_of(Topology::kTree, 0, 7), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(transport::children_of(Topology::kTree, 2, 7), (std::vector<std::size_t>{5, 6}));
  EXPECT_EQ(transport::max_depth(Topology::kTree, 7), 3u);
  EXPECT_EQ(transport::max_depth(Topology::kTree, 1), 1u);
}

TEST(TransportTopology, ParseIsStrictAndNamesTheValidValues) {
  EXPECT_EQ(transport::topology_from_string("chain"), Topology::kChain);
  try {
    transport::topology_from_string("ring");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ring"), std::string::npos);
    EXPECT_NE(what.find("star, chain, tree"), std::string::npos);
  }
  EXPECT_EQ(transport::topology_names(), (std::vector<std::string>{"star", "chain", "tree"}));
}

TEST(TransportBackend, ParseIsStrictAndNamesTheValidValues) {
  EXPECT_EQ(transport::backend_from_string("socket"), BackendKind::kSocket);
  try {
    transport::backend_from_string("tcp");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tcp"), std::string::npos);
    EXPECT_NE(what.find("inproc, socket"), std::string::npos);
  }
  EXPECT_EQ(transport::backend_names(), (std::vector<std::string>{"inproc", "socket"}));
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(FrameCodec, RoundTripsEveryField) {
  util::Frame frame;
  frame.type = util::FrameType::kGradient;
  frame.agent = 42;
  frame.round = 7;
  frame.emitted = 5;
  frame.hops = 3;
  frame.payload = {1.5, -2.25, 0.0, 1e300, -0.0};

  const std::string bytes = util::encode_frame(frame);
  EXPECT_EQ(bytes.size(), util::frame_wire_size(frame));
  EXPECT_EQ(bytes.size(), util::frame_wire_size_for(frame.payload.size()));

  const util::Frame back = util::decode_frame(bytes);
  EXPECT_EQ(back.type, frame.type);
  EXPECT_EQ(back.agent, frame.agent);
  EXPECT_EQ(back.round, frame.round);
  EXPECT_EQ(back.emitted, frame.emitted);
  EXPECT_EQ(back.hops, frame.hops);
  EXPECT_EQ(back.payload, frame.payload);
}

TEST(FrameCodec, RoundTripsEmptyPayloadAndControlTypes) {
  for (const util::FrameType type :
       {util::FrameType::kEstimate, util::FrameType::kRoundDone, util::FrameType::kShutdown}) {
    util::Frame frame;
    frame.type = type;
    frame.agent = util::kCoordinatorAgent;
    frame.round = 9;
    const util::Frame back = util::decode_frame(util::encode_frame(frame));
    EXPECT_EQ(back.type, type);
    EXPECT_EQ(back.agent, util::kCoordinatorAgent);
    EXPECT_TRUE(back.payload.empty());
  }
}

TEST(FrameCodec, RejectsCorruption) {
  util::Frame frame;
  frame.payload = {3.0, 4.0};
  const std::string bytes = util::encode_frame(frame);

  // Any single flipped body byte breaks the checksum (or a validated field).
  for (std::size_t i = 4; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x5a);
    EXPECT_THROW(util::decode_frame(bad), PreconditionError) << "byte " << i;
  }
  // Truncations at every length.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(util::decode_frame(bytes.substr(0, len)), PreconditionError) << "len " << len;
  }
  // Trailing garbage.
  EXPECT_THROW(util::decode_frame(bytes + "x"), PreconditionError);
}

// ---------------------------------------------------------------------------
// Channel-fault streams
// ---------------------------------------------------------------------------

TEST(TransportChannel, ZeroedFaultsAreIdentity) {
  const chaos::ChannelFaults none;
  for (std::size_t agent = 0; agent < 4; ++agent) {
    const auto decision = transport::channel_decision(none, 7, agent, agent * 3);
    EXPECT_FALSE(decision.drop);
    EXPECT_FALSE(decision.duplicate);
    EXPECT_EQ(decision.delay, 0u);
  }
}

TEST(TransportChannel, DecisionsArePureInSeedAgentRound) {
  chaos::ChannelFaults faults;
  faults.drop_probability = 0.3;
  faults.duplicate_probability = 0.3;
  faults.max_delay = 3;
  // Same key, same decision — regardless of evaluation order or count.
  for (std::size_t agent = 0; agent < 6; ++agent) {
    for (std::size_t round = 0; round < 10; ++round) {
      const auto a = transport::channel_decision(faults, 42, agent, round);
      const auto b = transport::channel_decision(faults, 42, agent, round);
      EXPECT_EQ(a.drop, b.drop);
      EXPECT_EQ(a.duplicate, b.duplicate);
      EXPECT_EQ(a.delay, b.delay);
    }
  }
  // Different seeds decouple the streams.
  bool any_difference = false;
  for (std::size_t round = 0; round < 40 && !any_difference; ++round) {
    const auto a = transport::channel_decision(faults, 1, 0, round);
    const auto b = transport::channel_decision(faults, 2, 0, round);
    any_difference = a.drop != b.drop || a.duplicate != b.duplicate || a.delay != b.delay;
  }
  EXPECT_TRUE(any_difference);
}

TEST(TransportChannel, DropShortCircuitsDuplicateAndDelay) {
  chaos::ChannelFaults faults;
  faults.drop_probability = 1.0;
  faults.duplicate_probability = 1.0;
  faults.max_delay = 3;
  for (std::size_t round = 0; round < 10; ++round) {
    const auto decision = transport::channel_decision(faults, 9, 0, round);
    EXPECT_TRUE(decision.drop);
  }
}

// ---------------------------------------------------------------------------
// AgentReplica round fates (the coordinator-side accounting oracle)
// ---------------------------------------------------------------------------

TEST(AgentReplicaFate, MirrorsTheFaultSchedule) {
  chaos::Scenario s = base_scenario("fate", 23);
  s.n = 6;
  s.faults = {byzantine(0, 2, 5), crash(1, 1, 4), straggler(2, 2)};

  EXPECT_FALSE(transport::AgentReplica::fate(s, 0, 1).byzantine);
  EXPECT_TRUE(transport::AgentReplica::fate(s, 0, 2).byzantine);
  EXPECT_FALSE(transport::AgentReplica::fate(s, 0, 5).byzantine);

  EXPECT_TRUE(transport::AgentReplica::fate(s, 1, 0).emits);
  EXPECT_FALSE(transport::AgentReplica::fate(s, 1, 3).emits);
  EXPECT_TRUE(transport::AgentReplica::fate(s, 1, 4).emits);

  // A straggler is only *stale* once an older estimate exists (round 1+).
  EXPECT_FALSE(transport::AgentReplica::fate(s, 2, 0).stale);
  EXPECT_TRUE(transport::AgentReplica::fate(s, 2, 1).stale);
  // Healthy agent, no channel faults: plain emission.
  const auto healthy = transport::AgentReplica::fate(s, 4, 3);
  EXPECT_TRUE(healthy.emits);
  EXPECT_FALSE(healthy.byzantine || healthy.stale || healthy.dropped || healthy.duplicated);
}

// ---------------------------------------------------------------------------
// The cross-backend oracle
// ---------------------------------------------------------------------------

TEST(CrossBackend, PinnedSuiteIsByteIdenticalOnBothBackends) {
  for (const chaos::Scenario& s : pinned_suite()) {
    const auto inproc = transport::run_scenario_transport(s, opts(BackendKind::kInproc,
                                                                 Topology::kStar));
    const auto socket = transport::run_scenario_transport(s, opts(BackendKind::kSocket,
                                                                  Topology::kStar));
    expect_sessions_identical(inproc, socket, s.name);
  }
}

TEST(CrossBackend, EveryTopologyMatchesOnBothBackendsForFaultyScenario) {
  chaos::Scenario s = base_scenario("mixed-topo", 31);
  s.n = 8;
  s.f = 2;
  s.faults = {byzantine(0, 0, 0), crash(3, 1, 12), straggler(5, 2)};
  s.channel.duplicate_probability = 0.25;
  s.channel.max_delay = 2;

  const auto baseline =
      transport::run_scenario_transport(s, opts(BackendKind::kInproc, Topology::kStar));
  for (const Topology topology : {Topology::kStar, Topology::kChain, Topology::kTree}) {
    for (const BackendKind backend : {BackendKind::kInproc, BackendKind::kSocket}) {
      if (backend == BackendKind::kInproc && topology == Topology::kStar) continue;
      const auto session = transport::run_scenario_transport(s, opts(backend, topology));
      const std::string label =
          transport::to_string(backend) + "/" + transport::to_string(topology);
      ASSERT_EQ(session.estimates.size(), baseline.estimates.size()) << label;
      for (std::size_t t = 0; t < session.estimates.size(); ++t) {
        EXPECT_EQ(session.estimates[t], baseline.estimates[t])
            << label << " diverges at round " << t;
      }
      // Topology changes the traffic shape (hops, reduce depth) but never
      // the delivered frame multiset.
      EXPECT_EQ(session.transport.frames_delivered, baseline.transport.frames_delivered) << label;
    }
  }
}

TEST(CrossBackend, StableTelemetryManifestsMatch) {
  const chaos::Scenario s = pinned_suite()[8];  // mixed-faults: every counter moves
  auto& reg = telemetry::registry();

  reg.reset();
  (void)transport::run_scenario_transport(s, opts(BackendKind::kInproc, Topology::kTree));
  const auto inproc_manifest = session_manifest();

  reg.reset();
  (void)transport::run_scenario_transport(s, opts(BackendKind::kSocket, Topology::kTree));
  const auto socket_manifest = session_manifest();

  EXPECT_EQ(inproc_manifest, socket_manifest);
  EXPECT_GT(socket_manifest.at("chaos.rounds"), 0u);
  EXPECT_GT(socket_manifest.at("transport.bytes_on_wire"), 0u);
}

TEST(ScenarioSession, MatchesTheChaosExecutorWithoutChannelFaults) {
  // Channel-fault randomness uses per-reply streams in the transport (the
  // executor draws sequentially), but everything else — instance, x0,
  // attack streams, staleness, aggregation — is shared.  So channel-free
  // scenarios must reproduce the executor's trajectory bit for bit,
  // anchoring the transport to the original oracle.
  std::vector<chaos::Scenario> channel_free;
  channel_free.push_back(base_scenario("exec-clean", 41));
  chaos::Scenario s = base_scenario("exec-byz", 42);
  s.faults = {byzantine(1, 0, 0)};
  channel_free.push_back(s);
  s = base_scenario("exec-crash-straggler", 43);
  s.n = 8;
  s.f = 2;
  s.faults = {crash(0, 1, 9), straggler(4, 2)};
  channel_free.push_back(s);

  for (const chaos::Scenario& scenario : channel_free) {
    const chaos::ScenarioResult expected = chaos::run_scenario(scenario);
    const auto session =
        transport::run_scenario_transport(scenario, opts(BackendKind::kInproc, Topology::kStar));
    EXPECT_EQ(session.result.estimate, expected.estimate) << scenario.name;
    EXPECT_EQ(session.result.final_distance, expected.final_distance) << scenario.name;
    EXPECT_EQ(session.result.max_distance, expected.max_distance) << scenario.name;
    EXPECT_EQ(session.result.byzantine_replies, expected.byzantine_replies) << scenario.name;
    EXPECT_EQ(session.result.crashed_absences, expected.crashed_absences) << scenario.name;
    EXPECT_EQ(session.result.stale_replies, expected.stale_replies) << scenario.name;
  }
}

// ---------------------------------------------------------------------------
// Theorem 3 over the wire
// ---------------------------------------------------------------------------

TEST(TransportTheorem3, SocketBackendConvergesUnderChannelFaultsOnEveryTopology) {
  // Guaranteed regime (2f-redundant mean instance, CGE, faults <= f,
  // mild asynchrony): Theorem 3 promises convergence to the honest
  // argmin, and chaos::check_properties asserts it.  The wire, the
  // processes, and the topology must not cost the guarantee.
  chaos::Scenario s = base_scenario("theorem3-socket", 51);
  s.n = 8;
  s.f = 1;
  s.rounds = 60;
  s.faults = {byzantine(2, 0, 0)};
  s.channel.duplicate_probability = 0.2;
  s.channel.max_delay = 2;
  ASSERT_TRUE(s.guaranteed());

  for (const Topology topology : {Topology::kStar, Topology::kChain, Topology::kTree}) {
    const auto session =
        transport::run_scenario_transport(s, opts(BackendKind::kSocket, topology));
    const chaos::PropertyReport report = chaos::check_properties(s, session.result);
    EXPECT_TRUE(report.ok) << transport::to_string(topology) << ": " << report.summary();
    EXPECT_LT(session.result.final_distance, session.result.initial_distance);
  }
}

TEST(TransportTheorem3, DroppyChannelStillDegradesGracefully) {
  // Drops leave the guaranteed regime; the property harness then asserts
  // graceful degradation (finite, bounded trajectory) — on every topology.
  chaos::Scenario s = base_scenario("droppy-socket", 52);
  s.n = 8;
  s.f = 2;
  s.faults = {byzantine(1, 0, 0)};
  s.channel.drop_probability = 0.25;
  ASSERT_FALSE(s.guaranteed());

  for (const Topology topology : {Topology::kStar, Topology::kChain, Topology::kTree}) {
    const auto session =
        transport::run_scenario_transport(s, opts(BackendKind::kSocket, topology));
    const chaos::PropertyReport report = chaos::check_properties(s, session.result);
    EXPECT_TRUE(report.ok) << transport::to_string(topology) << ": " << report.summary();
    EXPECT_FALSE(session.result.nonfinite);
  }
}

// ---------------------------------------------------------------------------
// dgd over a transport
// ---------------------------------------------------------------------------

namespace {

dgd::TrainerConfig dgd_config(std::size_t n, std::size_t f, std::size_t d,
                              std::size_t iterations) {
  dgd::TrainerConfig config;
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  config.filter = filters::FilterPtr(filters::make_filter("cge", fp));
  config.schedule = std::make_shared<dgd::HarmonicSchedule>(1.0 / (2.0 * double(n - f)));
  config.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  config.iterations = iterations;
  config.seed = 5;
  config.filter_factory = [](std::size_t n_active, std::size_t f_active) {
    filters::FilterParams p;
    p.n = n_active;
    p.f = f_active;
    return filters::FilterPtr(filters::make_filter("cge", p));
  };
  return config;
}

void expect_trains_identical(const dgd::TrainResult& a, const dgd::TrainResult& b,
                             const std::string& label) {
  EXPECT_EQ(a.estimate, b.estimate) << label;
  EXPECT_EQ(a.trace.iteration, b.trace.iteration) << label;
  EXPECT_EQ(a.trace.loss, b.trace.loss) << label;
  ASSERT_EQ(a.trace.estimates.size(), b.trace.estimates.size()) << label;
  for (std::size_t k = 0; k < a.trace.estimates.size(); ++k) {
    EXPECT_EQ(a.trace.estimates[k], b.trace.estimates[k]) << label << " iterate " << k;
  }
  EXPECT_EQ(a.final_loss, b.final_loss) << label;
  EXPECT_EQ(a.eliminated_agents, b.eliminated_agents) << label;
}

}  // namespace

TEST(DgdTransport, FaultFreeRunMatchesInProcessTrainerOnEveryBackend) {
  const auto built = chaos::materialize_scenario(base_scenario("dgd-parity", 61));
  const dgd::TrainerConfig config = dgd_config(6, 1, 2, 25);

  // Socket first: fork before anything in this process spins up threads.
  const auto socket = transport::run_dgd(built.problem, {}, nullptr, config,
                                         opts(BackendKind::kSocket, Topology::kStar),
                                         built.reference);
  const auto inproc_star = transport::run_dgd(built.problem, {}, nullptr, config,
                                              opts(BackendKind::kInproc, Topology::kStar),
                                              built.reference);
  const auto inproc_tree = transport::run_dgd(built.problem, {}, nullptr, config,
                                              opts(BackendKind::kInproc, Topology::kTree),
                                              built.reference);
  const dgd::TrainResult expected =
      dgd::train(built.problem, {}, nullptr, config, built.reference);

  expect_trains_identical(socket.train, expected, "socket/star");
  expect_trains_identical(inproc_star.train, expected, "inproc/star");
  expect_trains_identical(inproc_tree.train, expected, "inproc/tree");
  EXPECT_EQ(socket.stats.bytes_on_wire, inproc_star.stats.bytes_on_wire);
}

TEST(DgdTransport, ByzantineRunMatchesServerProtocol) {
  const auto built = chaos::materialize_scenario(base_scenario("dgd-byz", 62));
  const dgd::TrainerConfig config = dgd_config(6, 1, 2, 25);
  const auto attack = chaos::make_scenario_attack("gradient_reverse", 1.0);

  const auto socket = transport::run_dgd(built.problem, {0}, attack.get(), config,
                                         opts(BackendKind::kSocket, Topology::kTree),
                                         built.reference);
  const auto inproc = transport::run_dgd(built.problem, {0}, attack.get(), config,
                                         opts(BackendKind::kInproc, Topology::kChain),
                                         built.reference);
  const net::ServerProtocolResult expected =
      net::run_server_protocol(built.problem, {0}, attack.get(), config, built.reference);

  expect_trains_identical(socket.train, expected.train, "socket/tree");
  expect_trains_identical(inproc.train, expected.train, "inproc/chain");
}

// ---------------------------------------------------------------------------
// Agent death on the socket backend
// ---------------------------------------------------------------------------

namespace {

/// Minimal agent program: one gradient frame echoing (agent, round).
transport::AgentFn echo_agents() {
  return [](std::size_t agent, std::size_t round, const linalg::Vector& estimate) {
    util::Frame frame;
    frame.agent = static_cast<std::uint32_t>(agent);
    frame.round = round;
    frame.emitted = round;
    frame.hops = 1;
    frame.payload = {static_cast<double>(agent), estimate[0]};
    return std::vector<util::Frame>{frame};
  };
}

}  // namespace

TEST(SocketDeath, StarSurvivesAnAgentDeathAndReportsIt) {
  transport::SocketOptions socket_options;
  socket_options.timeout_ms = 2000;
  socket_options.die_at_round = {transport::kNeverDies, transport::kNeverDies, 3,
                                 transport::kNeverDies};
  transport::SocketTransport t(Topology::kStar, 4, echo_agents(), socket_options);

  const linalg::Vector estimate{1.0};
  for (std::size_t round = 0; round < 6; ++round) {
    const auto frames = t.exchange(round, estimate);
    if (round < 3) {
      EXPECT_EQ(frames.size(), 4u) << "round " << round;
    } else {
      EXPECT_EQ(frames.size(), 3u) << "round " << round;
      for (const auto& frame : frames) EXPECT_NE(frame.agent, 2u);
    }
  }
  EXPECT_EQ(t.live_root_links(), 3u);
  EXPECT_EQ(t.stats().agent_deaths, 1u);
  EXPECT_EQ(t.stats().exchanges, 6u);
}

TEST(SocketDeath, ChainDeathCostsTheSubtreeBehindIt) {
  transport::SocketOptions socket_options;
  socket_options.timeout_ms = 2000;
  socket_options.die_at_round = {transport::kNeverDies, 2, transport::kNeverDies,
                                 transport::kNeverDies};
  transport::SocketTransport t(Topology::kChain, 4, echo_agents(), socket_options);

  const linalg::Vector estimate{1.0};
  for (std::size_t round = 0; round < 4; ++round) {
    const auto frames = t.exchange(round, estimate);
    if (round < 2) {
      EXPECT_EQ(frames.size(), 4u) << "round " << round;
    } else {
      // Agent 1 relayed agents 2 and 3; its death silences all three.
      ASSERT_EQ(frames.size(), 1u) << "round " << round;
      EXPECT_EQ(frames[0].agent, 0u);
    }
  }
  // The coordinator's own link (to agent 0) stayed alive throughout.
  EXPECT_EQ(t.live_root_links(), 1u);
}

TEST(SocketDeath, DgdEliminatesTheDeadAgent) {
  const auto built = chaos::materialize_scenario(base_scenario("dgd-death", 63));
  dgd::TrainerConfig config = dgd_config(6, 1, 2, 8);

  SessionOptions options = opts(BackendKind::kSocket, Topology::kStar);
  options.socket.timeout_ms = 2000;
  options.socket.die_at_round = {transport::kNeverDies, transport::kNeverDies,
                                 transport::kNeverDies, 4,
                                 transport::kNeverDies, transport::kNeverDies};
  const auto result = transport::run_dgd(built.problem, {}, nullptr, config, options,
                                         built.reference);
  EXPECT_EQ(result.train.eliminated_agents, (std::vector<std::size_t>{3}));
  EXPECT_GE(result.stats.agent_deaths, 1u);
}

// ---------------------------------------------------------------------------
// Traffic accounting
// ---------------------------------------------------------------------------

TEST(TransportStats, TopologyTradesHopsAgainstDepth) {
  const chaos::Scenario s = base_scenario("traffic", 71);
  const auto star =
      transport::run_scenario_transport(s, opts(BackendKind::kInproc, Topology::kStar));
  const auto chain =
      transport::run_scenario_transport(s, opts(BackendKind::kInproc, Topology::kChain));
  const auto tree =
      transport::run_scenario_transport(s, opts(BackendKind::kInproc, Topology::kTree));

  // Same frames reach the root regardless of topology...
  EXPECT_EQ(star.transport.frames_delivered, chain.transport.frames_delivered);
  EXPECT_EQ(star.transport.frames_delivered, tree.transport.frames_delivered);
  // ...but relaying multiplies bytes by hop count and deepens the gather.
  EXPECT_LT(star.transport.bytes_on_wire, tree.transport.bytes_on_wire);
  EXPECT_LT(tree.transport.bytes_on_wire, chain.transport.bytes_on_wire);
  EXPECT_EQ(star.transport.reduce_rounds, s.rounds * 1u);
  EXPECT_EQ(chain.transport.reduce_rounds, s.rounds * 6u);
  EXPECT_EQ(tree.transport.reduce_rounds, s.rounds * 3u);
}
