// End-to-end tests pinning the paper-shaped results (see DESIGN.md, R-*):
// the Table-1 style regression experiment, the necessity construction from
// Theorem 1's proof, and the qualitative orderings the evaluation reports.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/error.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Vector;

namespace {

/// The paper's experimental setup: n = 6, f = 1, d = 2, x* = (1, 1),
/// observation noise, agent 0 Byzantine, initial estimate as published.
struct PaperSetup {
  data::RegressionInstance instance;
  Vector x_h;
  double epsilon = 0.0;

  explicit PaperSetup(double noise_sigma = 0.03, std::uint64_t seed = 42)
      : instance([&] {
          rng::Rng rng(seed);
          return data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, noise_sigma, 1,
                                       rng);
        }()) {
    x_h = data::regression_argmin(instance, {1, 2, 3, 4, 5});
    epsilon = redundancy::measure_redundancy(instance.problem.costs, 1).epsilon;
  }

  dgd::TrainerConfig config(const std::string& filter, std::size_t iterations = 500) const {
    filters::FilterParams fp;
    fp.n = 6;
    fp.f = 1;
    dgd::TrainerConfig cfg;
    cfg.filter = filters::make_filter(filter, fp);
    // Sum-scaled filters take a smaller step coefficient than
    // average-scaled ones (cge/sum aggregate ~n gradients).
    const double coeff = (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
    cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
    cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
    cfg.iterations = iterations;
    cfg.x0 = Vector{-0.0085, -0.5643};  // the paper's initial estimate
    cfg.trace_stride = 0;
    return cfg;
  }
};

}  // namespace

// ---------------------------------------------------------------- Table 1 shape

TEST(PaperTable1, CgeWithinEpsilonUnderGradientReverse) {
  const PaperSetup setup;
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result =
      dgd::train(setup.instance.problem, {0}, attack.get(), setup.config("cge", 2000), setup.x_h);
  // The paper's headline observation: dist(x_H, x_out) < eps.
  EXPECT_LT(result.final_distance, std::max(setup.epsilon, 1e-3));
}

TEST(PaperTable1, CwtmWithinEpsilonUnderGradientReverse) {
  const PaperSetup setup;
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result = dgd::train(setup.instance.problem, {0}, attack.get(),
                                 setup.config("cwtm", 2000), setup.x_h);
  EXPECT_LT(result.final_distance, std::max(setup.epsilon, 1e-3));
}

TEST(PaperTable1, BothFiltersWithinEpsilonUnderRandomAttack) {
  const PaperSetup setup;
  const auto attack = attacks::make_attack("random");  // sigma 200, as in the paper
  for (const char* filter : {"cge", "cwtm"}) {
    const auto result = dgd::train(setup.instance.problem, {0}, attack.get(),
                                   setup.config(filter, 2000), setup.x_h);
    EXPECT_LT(result.final_distance, std::max(setup.epsilon, 1e-3)) << filter;
  }
}

TEST(PaperFigure2, UnfilteredDgdDivergesWhereFilteredConverges) {
  const PaperSetup setup;
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto unfiltered = dgd::train(setup.instance.problem, {0}, attack.get(),
                                     setup.config("sum", 500), setup.x_h);
  const auto filtered = dgd::train(setup.instance.problem, {0}, attack.get(),
                                   setup.config("cge", 500), setup.x_h);
  EXPECT_GT(unfiltered.final_distance, 5.0 * filtered.final_distance);
}

TEST(PaperFigure2, FaultFreeBaselineIsTheFloor) {
  // The fault-free DGD run (Byzantine agent omitted) lower-bounds the
  // filtered runs' accuracy.
  const PaperSetup setup;
  // Fault-free: 5 honest agents only.
  core::MultiAgentProblem fault_free;
  fault_free.f = 0;
  for (std::size_t i = 1; i < 6; ++i) fault_free.costs.push_back(setup.instance.problem.costs[i]);
  filters::FilterParams fp;
  fp.n = 5;
  fp.f = 0;
  auto cfg = setup.config("cge", 2000);
  cfg.filter = filters::make_filter("sum", fp);
  const auto baseline = dgd::train(fault_free, {}, nullptr, cfg, setup.x_h);

  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cge = dgd::train(setup.instance.problem, {0}, attack.get(),
                              setup.config("cge", 2000), setup.x_h);
  EXPECT_LE(baseline.final_distance, cge.final_distance + 1e-6);
  EXPECT_LT(baseline.final_distance, 1e-2);
}

// ---------------------------------------------------------------- Necessity (Theorem 1)

TEST(Necessity, IndistinguishableScenariosForceError) {
  // The construction from Theorem 1's proof, instantiated with quadratic
  // scalar costs.  Agents' costs: S = {0, 1} (honest in scenario i) with
  // minimum x_S = 0; S-hat = {0}; faulty agent 2 chooses its cost so that
  // the aggregate over {0, 2} minimizes at the mirror point.  Any
  // deterministic algorithm sees the same three costs in both scenarios
  // and must output one point, which cannot be within eps of both honest
  // minima when they are more than 2 eps apart.
  const double gap = 1.0;  // = eps + delta in the proof
  // Costs: Q_0 = (x - 0)^2, Q_1 = (x + g)^2 -> x_{01} = -g/2.
  //        Q_2 = (x - 2g... chosen so x_{02} = +g/2 (mirror of x_{01}).
  auto q0 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{0.0}));
  auto q1 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{-gap}));
  auto q2 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{gap}));
  const std::vector<core::CostPtr> received = {q0, q1, q2};

  // The two scenarios' honest minima.
  const Vector x_s = core::argmin_point(core::aggregate_subset(received, {0, 1}));
  const Vector x_mirror = core::argmin_point(core::aggregate_subset(received, {0, 2}));
  const double separation = linalg::distance(x_s, x_mirror);
  EXPECT_NEAR(separation, gap, 1e-10);

  // Whatever any deterministic algorithm outputs (here: the exhaustive
  // algorithm), it is at least separation/2 away from one honest minimum.
  const auto output = core::run_exact_algorithm(received, 1).output;
  const double worst =
      std::max(linalg::distance(output, x_s), linalg::distance(output, x_mirror));
  EXPECT_GE(worst, separation / 2.0 - 1e-9);
}

TEST(Necessity, RedundancyViolationMeasuredByChecker) {
  // The same construction, fed to the redundancy checker: the instance
  // (without redundancy) must report a large epsilon, explaining why no
  // algorithm can do better.
  auto q0 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{0.0}));
  auto q1 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{-1.0}));
  auto q2 = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{1.0}));
  const auto report = redundancy::measure_redundancy({q0, q1, q2}, 1);
  EXPECT_GE(report.epsilon, 0.5);
}

// ---------------------------------------------------------------- Sufficiency regime

TEST(SufficiencyRegime, PaperInstanceSitsAtAlphaBoundary) {
  // Single-row unit-norm agents at n = 6, f = 1 cannot exceed alpha = 0:
  // gamma <= 0.8 while mu = 2, so alpha = 1 - (1/6)(1 + 2 mu/gamma) <= 0.
  // (The paper's own instance has mu = 2, gamma = 0.712 => alpha ~ -0.10;
  // its experiments — and ours — show CGE still succeeding empirically,
  // i.e. Theorem 4's condition is sufficient, not necessary.)
  const PaperSetup setup;
  const auto constants = data::regression_constants(setup.instance, {1, 2, 3, 4, 5});
  EXPECT_NEAR(constants.mu, 2.0, 1e-9);
  EXPECT_LE(constants.gamma, 0.8 + 1e-9);
  const double alpha = core::cge_alpha(6, 1, constants.mu, constants.gamma);
  EXPECT_LE(alpha, 1e-9);
  EXPECT_GT(alpha, -0.5);  // close to, not far below, the boundary
}

TEST(SufficiencyRegime, OrthonormalInstanceHasAlphaHalf) {
  // The alpha > 0 regime Theorem 4 needs is reachable with richer agents:
  // orthonormal d x d blocks give mu = gamma = 2 and alpha = 1 - 3f/n.
  rng::Rng rng(3);
  const auto inst = data::make_orthonormal_regression(6, 2, 1, 0.0, Vector{1.0, 1.0}, rng);
  const std::vector<std::size_t> honest = {1, 2, 3, 4, 5};
  const double mu = core::lipschitz_constant(inst.problem, honest, Vector(2));
  const double gamma = core::strong_convexity_constant(inst.problem, honest, Vector(2));
  EXPECT_NEAR(core::cge_alpha(6, 1, mu, gamma), 0.5, 1e-9);
}

TEST(SufficiencyRegime, ExactAlgorithmBeatsDgdOnAccuracy) {
  // The exhaustive algorithm's output obeys the 2 eps bound; DGD+CGE obeys
  // the (looser) D eps bound.  Both must hold simultaneously on the same
  // instance.
  const PaperSetup setup(0.05, 7);
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{5.0, -5.0}));
  auto received = setup.instance.problem.costs;
  received[0] = bad;
  const auto exact = core::run_exact_algorithm(received, 1);
  EXPECT_LE(linalg::distance(exact.output, setup.x_h), 2.0 * setup.epsilon + 1e-9);
}

TEST(FaultBudget, LemmaOneBoundaryEnforced) {
  // f >= n/2 makes resilience impossible (Lemma 1); the library enforces
  // the stronger machinery bound n > 2f at problem validation.
  core::MultiAgentProblem p;
  for (int i = 0; i < 4; ++i) {
    p.costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector{0.0})));
  }
  p.f = 2;  // n = 4, f = 2: n <= 2f
  EXPECT_THROW(p.validate(), redopt::PreconditionError);
  p.f = 1;
  EXPECT_NO_THROW(p.validate());
}
