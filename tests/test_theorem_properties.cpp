// Property sweeps pinned directly to the theorems:
//   * Theorem 4's D*eps bound for DGD+CGE across the alpha > 0 grid;
//   * invariance properties of the (2f, eps)-redundancy measure
//     (scale invariance of argmin, translation equivariance);
//   * the gamma <= mu ordering the paper notes.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "attacks/registry.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

// ---------------------------------------------------------------- Theorem 4 grid

namespace {

struct GridPoint {
  std::size_t n;
  std::size_t f;
  std::size_t d;
  std::string attack;
  std::uint64_t seed;
};

std::string grid_name(const testing::TestParamInfo<GridPoint>& info) {
  const auto& p = info.param;
  return "n" + std::to_string(p.n) + "_f" + std::to_string(p.f) + "_d" + std::to_string(p.d) +
         "_" + p.attack + "_s" + std::to_string(p.seed);
}

std::vector<GridPoint> theorem4_grid() {
  std::vector<GridPoint> grid;
  // All (n, f) with alpha = 1 - 3 f / n > 0 at small scale.
  const std::vector<std::pair<std::size_t, std::size_t>> shapes = {
      {4, 1}, {6, 1}, {7, 2}, {10, 2}, {10, 3}};
  for (auto [n, f] : shapes) {
    for (std::size_t d : {2u, 5u}) {
      for (const char* attack : {"gradient_reverse", "zero", "lie"}) {
        grid.push_back({n, f, d, attack, 1 + n + f + d});
      }
    }
  }
  return grid;
}

}  // namespace

class Theorem4Grid : public testing::TestWithParam<GridPoint> {};

TEST_P(Theorem4Grid, CgeErrorWithinDTimesEpsilon) {
  const auto& p = GetParam();
  rng::Rng rng(p.seed);
  Vector x_star(p.d, 1.0);
  const auto inst = data::make_orthonormal_regression(p.n, p.d, p.f, 0.05, x_star, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, p.f).epsilon;

  // Orthonormal blocks: mu = gamma = 2 exactly.
  const double alpha = core::cge_alpha(p.n, p.f, 2.0, 2.0);
  ASSERT_GT(alpha, 0.0);
  const double bound = 4.0 * 2.0 * static_cast<double>(p.f) / (alpha * 2.0) * eps;

  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < p.f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(p.n, byzantine);
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const auto attack = attacks::make_attack(p.attack);

  filters::FilterParams fp;
  fp.n = p.n;
  fp.f = p.f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.3);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(p.d, 10.0));
  cfg.iterations = 4000;
  cfg.seed = p.seed;
  cfg.trace_stride = 0;
  const auto result = dgd::train(inst.problem, byzantine, attack.get(), cfg, x_h);
  EXPECT_LE(result.final_distance, bound + 5e-3)
      << "eps=" << eps << " alpha=" << alpha << " bound=" << bound;
}

INSTANTIATE_TEST_SUITE_P(AlphaPositiveRegime, Theorem4Grid, testing::ValuesIn(theorem4_grid()),
                         grid_name);

// ---------------------------------------------------------------- Redundancy invariances

namespace {

std::vector<core::CostPtr> quadratic_family(std::size_t n, std::size_t d, double spread,
                                            std::uint64_t seed, const Vector& shift = {}) {
  rng::Rng rng(seed);
  std::vector<core::CostPtr> costs;
  for (std::size_t i = 0; i < n; ++i) {
    Vector center(d);
    for (auto& c : center) c = rng.gaussian(0.0, spread);
    if (!shift.empty()) center += shift;
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  return costs;
}

}  // namespace

class RedundancyInvariance : public testing::TestWithParam<std::uint64_t> {};

TEST_P(RedundancyInvariance, TranslationLeavesEpsilonUnchanged) {
  // Translating every cost by the same shift translates all minimizers,
  // so the Hausdorff distances — and epsilon — are unchanged.
  const auto base = quadratic_family(6, 3, 1.0, GetParam());
  const auto shifted = quadratic_family(6, 3, 1.0, GetParam(), Vector{5.0, -7.0, 11.0});
  const double eps_base = redundancy::measure_redundancy(base, 2).epsilon;
  const double eps_shifted = redundancy::measure_redundancy(shifted, 2).epsilon;
  EXPECT_NEAR(eps_base, eps_shifted, 1e-9);
}

TEST_P(RedundancyInvariance, PositiveCostScalingLeavesEpsilonUnchanged) {
  // Scaling each cost by the same positive constant leaves every argmin
  // set unchanged (the paper's argument for why minimum-point — not
  // value-based — approximation is the right notion).
  const auto base = quadratic_family(7, 2, 0.8, GetParam());
  std::vector<core::CostPtr> scaled;
  for (const auto& cost : base) {
    const auto* quad = dynamic_cast<const core::QuadraticCost*>(cost.get());
    ASSERT_NE(quad, nullptr);
    linalg::Matrix p = quad->p();
    p *= 13.0;
    scaled.push_back(std::make_shared<core::QuadraticCost>(p, quad->q() * 13.0,
                                                           quad->c() * 13.0));
  }
  EXPECT_NEAR(redundancy::measure_redundancy(base, 2).epsilon,
              redundancy::measure_redundancy(scaled, 2).epsilon, 1e-8);
}

TEST_P(RedundancyInvariance, CenterSpreadScalesEpsilonLinearly) {
  // Scaling the centers' spread scales every minimizer linearly, hence
  // epsilon too.
  const auto narrow = quadratic_family(6, 2, 0.5, GetParam());
  const auto wide = quadratic_family(6, 2, 1.5, GetParam());  // same draws, 3x spread
  const double eps_narrow = redundancy::measure_redundancy(narrow, 1).epsilon;
  const double eps_wide = redundancy::measure_redundancy(wide, 1).epsilon;
  EXPECT_NEAR(eps_wide / eps_narrow, 3.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RedundancyInvariance,
                         testing::Values(std::uint64_t{11}, std::uint64_t{22},
                                         std::uint64_t{33}, std::uint64_t{44}));

// ---------------------------------------------------------------- gamma <= mu

TEST(Constants, GammaNeverExceedsMu) {
  // The paper notes gamma <= mu under Assumptions 2 and 3; check it on a
  // batch of random regression instances.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng::Rng rng(seed);
    const auto a = data::redundant_matrix(8, 3, 2, rng);
    const auto inst = data::make_regression(a, Vector{1.0, 0.0, -1.0}, 0.05, 2, rng);
    const auto constants = data::regression_constants(inst, inst.problem.all_agents());
    EXPECT_LE(constants.gamma, constants.mu + 1e-9) << "seed " << seed;
  }
}

TEST(Constants, FaultFreeAlphaIsOne) {
  EXPECT_DOUBLE_EQ(core::cge_alpha(10, 0, 5.0, 1.0), 1.0);
}
