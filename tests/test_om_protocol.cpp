// Tests for the message-passing OM(f) protocol, cross-validated against
// the functional recursion in byzantine_broadcast.h.
#include <gtest/gtest.h>

#include "net/byzantine_broadcast.h"
#include "net/om_protocol.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;
using net::NodeId;

namespace {

/// Deterministic stateless equivocating relay (pure function of its
/// arguments, so the functional and message-passing executions see the
/// same adversary).
net::ByzantineRelay equivocator() {
  return [](const std::vector<NodeId>& path, NodeId dest, const net::Value& v) {
    net::Value out = v;
    for (std::size_t k = 0; k < out.size(); ++k) {
      out[k] += 100.0 * static_cast<double>(dest + 1) + 7.0 * static_cast<double>(path.size()) +
                static_cast<double>(path.back());
    }
    return out;
  };
}

}  // namespace

TEST(OmProtocol, ValidityNoFaults) {
  const Vector value{2.5, -1.5};
  const auto result =
      net::run_om_protocol(value, 0, 4, 1, std::vector<bool>(4, false));
  for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(result.decided[i], value) << "node " << i;
}

TEST(OmProtocol, ValidityWithByzantineLieutenant) {
  const Vector value{1.0};
  for (NodeId traitor = 1; traitor < 4; ++traitor) {
    std::vector<bool> byz(4, false);
    byz[traitor] = true;
    const auto result = net::run_om_protocol(value, 0, 4, 1, byz, equivocator());
    for (NodeId i = 0; i < 4; ++i) {
      if (i == traitor) continue;
      EXPECT_EQ(result.decided[i], value) << "traitor " << traitor << " node " << i;
    }
  }
}

TEST(OmProtocol, AgreementWithByzantineCommander) {
  const Vector value{5.0};
  std::vector<bool> byz(4, false);
  byz[0] = true;
  const auto result = net::run_om_protocol(value, 0, 4, 1, byz, equivocator());
  EXPECT_EQ(result.decided[1], result.decided[2]);
  EXPECT_EQ(result.decided[2], result.decided[3]);
}

TEST(OmProtocol, MatchesFunctionalRecursionExactly) {
  // Every fault pattern with up to f = 2 traitors at n = 7: the
  // message-passing protocol and the central recursion must decide
  // identical values at every honest node.
  const Vector value{3.0, 1.0};
  const std::size_t n = 7, f = 2;
  for (NodeId commander : {NodeId{0}, NodeId{3}}) {
    for (NodeId t1 = 0; t1 < n; ++t1) {
      for (NodeId t2 = t1; t2 < n; ++t2) {
        std::vector<bool> byz(n, false);
        byz[t1] = true;
        byz[t2] = true;  // t1 == t2 gives a single-traitor pattern
        const auto functional =
            net::byzantine_broadcast(value, commander, n, f, byz, equivocator());
        const auto protocol = net::run_om_protocol(value, commander, n, f, byz, equivocator());
        for (NodeId i = 0; i < n; ++i) {
          if (byz[i]) continue;  // Byzantine decisions are unconstrained
          EXPECT_EQ(protocol.decided[i], functional.decided[i])
              << "commander=" << commander << " traitors={" << t1 << "," << t2 << "} node="
              << i;
        }
      }
    }
  }
}

TEST(OmProtocol, MessageCountMatchesFunctionalRecursion) {
  const Vector value{1.0};
  const std::size_t n = 7;
  for (std::size_t f : {0u, 1u, 2u}) {
    const auto functional =
        net::byzantine_broadcast(value, 0, n, f, std::vector<bool>(n, false));
    const auto protocol = net::run_om_protocol(value, 0, n, f, std::vector<bool>(n, false));
    EXPECT_EQ(protocol.stats.messages_delivered, functional.messages) << "f=" << f;
  }
}

TEST(OmProtocol, RoundComplexityIsFPlusTwo) {
  const Vector value{1.0};
  const auto result = net::run_om_protocol(value, 0, 7, 2, std::vector<bool>(7, false));
  EXPECT_EQ(result.stats.rounds, 4u);  // send + f + 1 delivery rounds
}

TEST(OmProtocol, RejectsInvalidConfigurations) {
  EXPECT_THROW(net::run_om_protocol(Vector{1.0}, 0, 3, 1, std::vector<bool>(3, false)),
               redopt::PreconditionError);
  EXPECT_THROW(net::run_om_protocol(Vector{1.0}, 9, 4, 1, std::vector<bool>(4, false)),
               redopt::PreconditionError);
  EXPECT_THROW(net::run_om_protocol(Vector{}, 0, 4, 1, std::vector<bool>(4, false)),
               redopt::PreconditionError);
  EXPECT_THROW(net::run_om_protocol(Vector{1.0}, 0, 4, 1, std::vector<bool>(3, false)),
               redopt::PreconditionError);
}

TEST(OmProtocol, CommanderInputGuard) {
  net::OmNode node(1, 4, 1, /*commander=*/0, false, nullptr);
  EXPECT_THROW(node.set_input(Vector{1.0}), redopt::PreconditionError);
  net::OmNode commander(0, 4, 1, 0, false, nullptr);
  EXPECT_THROW(commander.set_input(Vector{}), redopt::PreconditionError);
}
