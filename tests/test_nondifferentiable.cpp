// Non-differentiable (L1 / weighted-median) costs: the scalar family the
// paper's Part-1 results cover beyond smooth costs.  Exercises the
// interval branch of MinimizerSet through the argmin machinery, the
// redundancy checker, the exhaustive exact algorithm, and subgradient DGD.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "core/absolute_cost.h"
#include "core/aggregate_cost.h"
#include "core/argmin.h"
#include "core/exact_algorithm.h"
#include "core/minimizer_set.h"
#include "core/problem.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/error.h"

using namespace redopt;
using core::AbsoluteCost;
using core::MinimizerSet;
using linalg::Vector;

// ---------------------------------------------------------------- Interval sets

TEST(IntervalSet, DistanceAndProjection) {
  const auto set = MinimizerSet::interval(1.0, 3.0);
  EXPECT_TRUE(set.is_interval());
  EXPECT_FALSE(set.is_singleton());
  EXPECT_DOUBLE_EQ(set.distance_to(Vector{0.0}), 1.0);
  EXPECT_DOUBLE_EQ(set.distance_to(Vector{2.5}), 0.0);
  EXPECT_DOUBLE_EQ(set.distance_to(Vector{5.0}), 2.0);
  EXPECT_EQ(set.project(Vector{-4.0}), (Vector{1.0}));
  EXPECT_EQ(set.project(Vector{2.0}), (Vector{2.0}));
  EXPECT_DOUBLE_EQ(set.representative()[0], 2.0);  // midpoint
}

TEST(IntervalSet, DegenerateIntervalIsSingleton) {
  const auto set = MinimizerSet::interval(2.0, 2.0);
  EXPECT_TRUE(set.is_singleton());
  EXPECT_DOUBLE_EQ(set.distance_to(Vector{5.0}), 3.0);
}

TEST(IntervalSet, RejectsInvertedBounds) {
  EXPECT_THROW(MinimizerSet::interval(3.0, 1.0), redopt::PreconditionError);
}

TEST(IntervalSet, HausdorffBetweenIntervals) {
  const auto a = MinimizerSet::interval(0.0, 2.0);
  const auto b = MinimizerSet::interval(1.0, 5.0);
  // max(|0-1|, |2-5|) = 3.
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, b), 3.0);
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(b, a), 3.0);
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(a, a), 0.0);
}

TEST(IntervalSet, HausdorffIntervalVersusSingleton) {
  const auto interval = MinimizerSet::interval(0.0, 4.0);
  const auto point = MinimizerSet::singleton(Vector{1.0});
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(interval, point), 3.0);  // far end
  EXPECT_DOUBLE_EQ(core::hausdorff_distance(point, interval), 3.0);
}

TEST(IntervalSet, HausdorffIntervalVersusLineDiverges) {
  linalg::Matrix e1(1, 1);
  e1(0, 0) = 1.0;
  const auto line = MinimizerSet::affine(Vector{0.0}, e1);
  const auto interval = MinimizerSet::interval(0.0, 1.0);
  EXPECT_TRUE(std::isinf(core::hausdorff_distance(interval, line)));
  EXPECT_TRUE(std::isinf(core::hausdorff_distance(line, interval)));
}

// ---------------------------------------------------------------- AbsoluteCost

TEST(AbsoluteCost, ValueAndSubgradient) {
  const AbsoluteCost cost({0.0, 2.0}, {1.0, 3.0});
  EXPECT_DOUBLE_EQ(cost.value(Vector{1.0}), 1.0 + 3.0);
  EXPECT_DOUBLE_EQ(cost.value(Vector{2.0}), 2.0);
  // Subgradient at x = 1: +1 (right of 0) - 3 (left of 2) = -2.
  EXPECT_DOUBLE_EQ(cost.gradient(Vector{1.0})[0], -2.0);
  // At a kink (x = 2) the point's own contribution is 0.
  EXPECT_DOUBLE_EQ(cost.gradient(Vector{2.0})[0], 1.0);
}

TEST(AbsoluteCost, ValidatesInput) {
  EXPECT_THROW(AbsoluteCost({}, {}), redopt::PreconditionError);
  EXPECT_THROW(AbsoluteCost({1.0}, {0.0}), redopt::PreconditionError);
  EXPECT_THROW(AbsoluteCost({1.0}, {1.0, 2.0}), redopt::PreconditionError);
  const AbsoluteCost cost({1.0});
  EXPECT_THROW(cost.value(Vector{1.0, 2.0}), redopt::PreconditionError);
}

TEST(WeightedMedian, OddCountUniquePoint) {
  const auto [lo, hi] = core::weighted_median_interval({5.0, 1.0, 3.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(lo, 3.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(WeightedMedian, EvenCountInterval) {
  const auto [lo, hi] = core::weighted_median_interval({1.0, 2.0, 3.0, 4.0},
                                                       {1.0, 1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(lo, 2.0);
  EXPECT_DOUBLE_EQ(hi, 3.0);
}

TEST(WeightedMedian, WeightsShiftTheMedian) {
  // Mass 5 at x=0 dominates mass 1+1 elsewhere.
  const auto [lo, hi] = core::weighted_median_interval({0.0, 10.0, 20.0}, {5.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(lo, 0.0);
  EXPECT_DOUBLE_EQ(hi, 0.0);
}

TEST(AbsoluteCost, ArgminSetIsWeightedMedianInterval) {
  // Two agents, aggregate over both: points {0, 4}, equal weights ->
  // minimizer set [0, 4].
  auto c0 = std::make_shared<AbsoluteCost>(std::vector<double>{0.0});
  auto c1 = std::make_shared<AbsoluteCost>(std::vector<double>{4.0});
  const auto set = core::argmin_set(core::AggregateCost({c0, c1}));
  ASSERT_TRUE(set.is_interval());
  EXPECT_DOUBLE_EQ(set.interval_lo(), 0.0);
  EXPECT_DOUBLE_EQ(set.interval_hi(), 4.0);
}

TEST(AbsoluteCost, ArgminHonorsAggregateWeights) {
  auto c0 = std::make_shared<AbsoluteCost>(std::vector<double>{0.0});
  auto c1 = std::make_shared<AbsoluteCost>(std::vector<double>{4.0});
  // Weight 3 on the first: median pinned at 0.
  const auto set = core::argmin_set(core::AggregateCost({c0, c1}, {3.0, 1.0}));
  EXPECT_DOUBLE_EQ(set.interval_lo(), 0.0);
  EXPECT_DOUBLE_EQ(set.interval_hi(), 0.0);
}

// ---------------------------------------------------------------- Redundancy / exact algorithm

namespace {

/// n agents each holding the SAME point multiset: perfectly redundant.
std::vector<core::CostPtr> replicated_l1(std::size_t n, const std::vector<double>& points) {
  std::vector<core::CostPtr> costs;
  for (std::size_t i = 0; i < n; ++i) costs.push_back(std::make_shared<AbsoluteCost>(points));
  return costs;
}

}  // namespace

TEST(NonDifferentiable, ReplicatedL1IsExactlyRedundant) {
  const auto costs = replicated_l1(5, {0.0, 1.0, 5.0});
  EXPECT_NEAR(redundancy::measure_redundancy(costs, 2).epsilon, 0.0, 1e-12);
}

TEST(NonDifferentiable, DistinctPointsGiveMeasurableEpsilon) {
  // Agents hold single distinct points 0..4 (f = 1): subsets' medians
  // disagree; the measured epsilon is finite and positive even though
  // some argmin sets are genuine intervals.
  std::vector<core::CostPtr> costs;
  for (double c : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    costs.push_back(std::make_shared<AbsoluteCost>(std::vector<double>{c}));
  }
  const auto report = redundancy::measure_redundancy(costs, 1);
  EXPECT_GT(report.epsilon, 0.5);
  EXPECT_TRUE(std::isfinite(report.epsilon));
}

TEST(NonDifferentiable, ExactAlgorithmRecoversMedianUnderAttack) {
  // Redundant L1 instance + an adversarial cost pulling far right: the
  // exhaustive algorithm must still output the honest median exactly.
  auto costs = replicated_l1(5, {0.0, 1.0, 5.0});
  costs[2] = std::make_shared<AbsoluteCost>(std::vector<double>{1000.0, 1001.0, 1002.0});
  const auto result = core::run_exact_algorithm(costs, 1);
  EXPECT_NEAR(result.output[0], 1.0, 1e-9);  // median of {0, 1, 5}
}

TEST(NonDifferentiable, SubgradientDgdWithCgeConverges) {
  // Projected subgradient descent on replicated L1 costs with one
  // gradient-reversing Byzantine agent: converges into the median set.
  core::MultiAgentProblem problem;
  problem.f = 1;
  problem.costs = replicated_l1(5, {0.0, 1.0, 5.0});
  const auto attack = attacks::make_attack("gradient_reverse");

  filters::FilterParams fp;
  fp.n = 5;
  fp.f = 1;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(1, 10.0));
  cfg.iterations = 4000;
  cfg.trace_stride = 0;
  cfg.x0 = Vector{8.0};
  const auto result = dgd::train(problem, {3}, attack.get(), cfg, Vector{1.0});
  EXPECT_LT(result.final_distance, 0.05);
}

TEST(NonDifferentiable, NecessityConstructionWithL1Costs) {
  // Theorem 1's proof scenario, instantiated with non-differentiable
  // costs: the worst-case error across the two indistinguishable honest
  // sets is at least half their minimizers' separation.
  auto q0 = std::make_shared<AbsoluteCost>(std::vector<double>{0.0});
  auto q1 = std::make_shared<AbsoluteCost>(std::vector<double>{-2.0});
  auto q2 = std::make_shared<AbsoluteCost>(std::vector<double>{2.0});
  const std::vector<core::CostPtr> received = {q0, q1, q2};
  const auto x_i = core::argmin_set(core::aggregate_subset(received, {0, 1}));
  const auto x_ii = core::argmin_set(core::aggregate_subset(received, {0, 2}));
  // Each two-agent aggregate minimizes on an interval ([-2,0] and [0,2]).
  EXPECT_TRUE(x_i.is_interval());
  const auto output = core::run_exact_algorithm(received, 1).output;
  const double worst = std::max(x_i.distance_to(output), x_ii.distance_to(output));
  // The intervals overlap only at 0; any output is >= 0 away from one of
  // them... at 0 both distances are 0 (the intervals touch), so here the
  // construction's gap is the Hausdorff gap, not the pointwise one:
  EXPECT_GE(core::hausdorff_distance(x_i, x_ii), 2.0);
  EXPECT_LE(worst, 2.0);  // and the algorithm's worst error stays bounded
}
