// Tests for the stochastic (mini-batch) extension: EmpiricalCost and
// train_sgd.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "sgd/empirical_cost.h"
#include "sgd/sgd_trainer.h"
#include "util/error.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;
using sgd::EmpiricalCost;
using sgd::Loss;

namespace {

EmpiricalCost make_cost(Loss loss, std::size_t m, std::size_t d, rng::Rng& rng,
                        double reg = 0.05) {
  Matrix x(m, d);
  Vector y(m);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t k = 0; k < d; ++k) x(j, k) = rng.gaussian();
    y[j] = loss == Loss::kSquare ? rng.gaussian() : (rng.uniform() < 0.5 ? -1.0 : 1.0);
  }
  return EmpiricalCost(std::move(x), std::move(y), loss, reg);
}

Vector fd_gradient(const core::CostFunction& cost, const Vector& w, double h = 1e-6) {
  Vector g(w.size());
  for (std::size_t k = 0; k < w.size(); ++k) {
    Vector wp = w, wm = w;
    wp[k] += h;
    wm[k] -= h;
    g[k] = (cost.value(wp) - cost.value(wm)) / (2.0 * h);
  }
  return g;
}

}  // namespace

// ---------------------------------------------------------------- EmpiricalCost

TEST(EmpiricalCost, ParseLoss) {
  EXPECT_EQ(sgd::parse_loss("square"), Loss::kSquare);
  EXPECT_EQ(sgd::parse_loss("logistic"), Loss::kLogistic);
  EXPECT_EQ(sgd::parse_loss("hinge"), Loss::kHinge);
  EXPECT_THROW(sgd::parse_loss("mse"), redopt::PreconditionError);
}

TEST(EmpiricalCost, GradientMatchesFiniteDifferenceAllLosses) {
  rng::Rng rng(1);
  for (Loss loss : {Loss::kSquare, Loss::kLogistic, Loss::kHinge}) {
    const auto cost = make_cost(loss, 12, 4, rng);
    const Vector w(rng.gaussian_vector(4));
    EXPECT_NEAR(linalg::distance(cost.gradient(w), fd_gradient(cost, w)), 0.0, 1e-4)
        << cost.describe();
  }
}

TEST(EmpiricalCost, SquareLossMatchesLeastSquaresScale) {
  // One example, square loss, no reg: value = (y - <x, w>)^2.
  const EmpiricalCost cost(Matrix{{1.0, 2.0}}, Vector{3.0}, Loss::kSquare);
  EXPECT_DOUBLE_EQ(cost.value(Vector{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(cost.value(Vector{0.0, 0.0}), 9.0);
}

TEST(EmpiricalCost, StochasticGradientIsUnbiased) {
  rng::Rng rng(2);
  const auto cost = make_cost(Loss::kLogistic, 30, 3, rng, 0.0);
  const Vector w(rng.gaussian_vector(3));
  const Vector exact = cost.gradient(w);
  Vector mean(3);
  const int draws = 20'000;
  rng::Rng sample_rng(99);
  for (int i = 0; i < draws; ++i) mean += cost.stochastic_gradient(w, 2, sample_rng);
  mean /= static_cast<double>(draws);
  EXPECT_NEAR(linalg::distance(mean, exact), 0.0, 0.02);
}

TEST(EmpiricalCost, FullBatchFallsBackToExactGradient) {
  rng::Rng rng(3);
  const auto cost = make_cost(Loss::kHinge, 8, 3, rng);
  const Vector w(rng.gaussian_vector(3));
  rng::Rng sample_rng(7);
  const auto before = sample_rng;  // copy
  const Vector g = cost.stochastic_gradient(w, 8, sample_rng);
  EXPECT_NEAR(linalg::distance(g, cost.gradient(w)), 0.0, 1e-12);
  // No randomness consumed on the full-batch path.
  rng::Rng replay = before;
  EXPECT_EQ(replay.next_u64(), sample_rng.next_u64());
}

TEST(EmpiricalCost, SmallerBatchesHaveLargerVariance) {
  rng::Rng rng(4);
  const auto cost = make_cost(Loss::kSquare, 40, 3, rng, 0.0);
  const Vector w(rng.gaussian_vector(3));
  const Vector exact = cost.gradient(w);
  auto variance_of = [&](std::size_t batch) {
    rng::Rng sample_rng(5);
    double acc = 0.0;
    const int draws = 2000;
    for (int i = 0; i < draws; ++i) {
      const Vector g = cost.stochastic_gradient(w, batch, sample_rng);
      acc += linalg::distance(g, exact) * linalg::distance(g, exact);
    }
    return acc / draws;
  };
  EXPECT_GT(variance_of(1), 2.0 * variance_of(8));
}

TEST(EmpiricalCost, ValidatesArguments) {
  EXPECT_THROW(EmpiricalCost(Matrix{{1.0}}, Vector{0.5}, Loss::kLogistic),
               redopt::PreconditionError);
  EXPECT_THROW(EmpiricalCost(Matrix{{1.0}}, Vector{1.0, 2.0}, Loss::kSquare),
               redopt::PreconditionError);
  const EmpiricalCost ok(Matrix{{1.0}}, Vector{1.0}, Loss::kSquare);
  rng::Rng rng(1);
  EXPECT_THROW(ok.stochastic_gradient(Vector{0.0}, 0, rng), redopt::PreconditionError);
}

// ---------------------------------------------------------------- train_sgd

namespace {

/// Distributed least-squares learning task where each agent holds a small
/// dataset sampled from the same linear model.
core::MultiAgentProblem make_sgd_problem(std::size_t n, std::size_t f, std::size_t d,
                                         std::size_t samples, const Vector& w_star,
                                         double noise, rng::Rng& rng) {
  core::MultiAgentProblem problem;
  problem.f = f;
  for (std::size_t i = 0; i < n; ++i) {
    Matrix x(samples, d);
    Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      double pred = 0.0;
      for (std::size_t k = 0; k < d; ++k) {
        x(j, k) = rng.gaussian();
        pred += x(j, k) * w_star[k];
      }
      y[j] = pred + rng.gaussian(0.0, noise);
    }
    problem.costs.push_back(
        std::make_shared<EmpiricalCost>(std::move(x), std::move(y), Loss::kSquare, 0.0));
  }
  problem.validate();
  return problem;
}

sgd::SgdConfig sgd_config(std::size_t n, std::size_t f, const std::string& filter,
                          std::size_t d, std::size_t iterations, std::size_t batch) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  sgd::SgdConfig cfg;
  cfg.base.filter = filters::make_filter(filter, fp);
  const double coeff = (filter == "cge" || filter == "sum") ? 0.1 : 0.5;
  cfg.base.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
  cfg.base.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  cfg.base.iterations = iterations;
  cfg.base.trace_stride = 0;
  cfg.batch_size = batch;
  return cfg;
}

}  // namespace

TEST(TrainSgd, FaultFreeConvergesNearTruth) {
  rng::Rng rng(10);
  const Vector w_star{1.0, -1.0, 0.5};
  const auto problem = make_sgd_problem(6, 1, 3, 30, w_star, 0.01, rng);
  const auto result =
      sgd::train_sgd(problem, {}, nullptr, sgd_config(6, 1, "cge", 3, 3000, 5), w_star);
  EXPECT_LT(result.final_distance, 0.05);
}

TEST(TrainSgd, CgeSurvivesLargeNormAttackUnderSampling) {
  rng::Rng rng(11);
  const Vector w_star{1.0, -1.0, 0.5};
  const auto problem = make_sgd_problem(8, 2, 3, 30, w_star, 0.01, rng);
  const auto attack = attacks::make_attack("large_norm");
  const auto cge = sgd::train_sgd(problem, {0, 1}, attack.get(),
                                  sgd_config(8, 2, "cge", 3, 3000, 5), w_star);
  const auto mean = sgd::train_sgd(problem, {0, 1}, attack.get(),
                                   sgd_config(8, 2, "mean", 3, 3000, 5), w_star);
  EXPECT_LT(cge.final_distance, 0.1);
  EXPECT_GT(mean.final_distance, 10.0 * cge.final_distance);
}

TEST(TrainSgd, LargerBatchesReduceFinalError) {
  rng::Rng rng(12);
  const Vector w_star{2.0, 0.0};
  const auto problem = make_sgd_problem(6, 1, 2, 40, w_star, 0.0, rng);
  const auto attack = attacks::make_attack("lie");
  double err_small = 0.0, err_large = 0.0;
  {
    auto cfg = sgd_config(6, 1, "cwtm", 2, 2000, 1);
    err_small = sgd::train_sgd(problem, {3}, attack.get(), cfg, w_star).final_distance;
  }
  {
    auto cfg = sgd_config(6, 1, "cwtm", 2, 2000, 40);  // full batch
    err_large = sgd::train_sgd(problem, {3}, attack.get(), cfg, w_star).final_distance;
  }
  EXPECT_LT(err_large, err_small);
}

TEST(TrainSgd, DeterministicGivenSeed) {
  rng::Rng rng(13);
  const Vector w_star{1.0, 1.0};
  const auto problem = make_sgd_problem(6, 1, 2, 20, w_star, 0.02, rng);
  const auto attack = attacks::make_attack("random");
  const auto cfg = sgd_config(6, 1, "cwtm", 2, 200, 2);
  const auto r1 = sgd::train_sgd(problem, {2}, attack.get(), cfg);
  const auto r2 = sgd::train_sgd(problem, {2}, attack.get(), cfg);
  EXPECT_EQ(r1.estimate, r2.estimate);
}

TEST(TrainSgd, MomentumAcceleratesEarlyProgress) {
  rng::Rng rng(14);
  const Vector w_star{1.0, -2.0, 0.0, 3.0};
  const auto problem = make_sgd_problem(6, 1, 4, 50, w_star, 0.01, rng);
  auto cfg_plain = sgd_config(6, 1, "cge", 4, 150, 5);
  auto cfg_momentum = cfg_plain;
  cfg_momentum.momentum = 0.8;
  const auto plain = sgd::train_sgd(problem, {}, nullptr, cfg_plain, w_star);
  const auto momentum = sgd::train_sgd(problem, {}, nullptr, cfg_momentum, w_star);
  EXPECT_LT(momentum.final_distance, plain.final_distance);
}

TEST(TrainSgd, ValidatesConfiguration) {
  rng::Rng rng(15);
  const Vector w_star{1.0};
  const auto problem = make_sgd_problem(4, 1, 1, 10, w_star, 0.0, rng);
  auto cfg = sgd_config(4, 1, "cge", 1, 10, 2);
  cfg.batch_size = 0;
  EXPECT_THROW(sgd::train_sgd(problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = sgd_config(4, 1, "cge", 1, 10, 2);
  cfg.momentum = 1.0;
  EXPECT_THROW(sgd::train_sgd(problem, {}, nullptr, cfg), redopt::PreconditionError);
  cfg = sgd_config(4, 1, "cge", 1, 10, 2);
  EXPECT_THROW(sgd::train_sgd(problem, {0, 1}, nullptr, cfg), redopt::PreconditionError);
}

TEST(TrainSgd, MixedCostTypesUseExactGradients) {
  // Non-empirical costs (plain least-squares agents) fall back to exact
  // gradients inside train_sgd; the run must converge like dgd::train.
  rng::Rng rng(16);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = sgd_config(6, 1, "cge", 2, 2000, 3);
  cfg.base.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  const auto result = sgd::train_sgd(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  EXPECT_LT(result.final_distance, 1e-3);
}
