// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "rng/rng.h"
#include "util/error.h"

namespace rr = redopt::rng;

TEST(Rng, SameSeedSameSequence) {
  rr::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  rr::Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 16; ++i) any_diff |= (a.next_u64() != b.next_u64());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformInUnitInterval) {
  rr::Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  rr::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 2.0), redopt::PreconditionError);
}

TEST(Rng, UniformMeanNearHalf) {
  rr::Rng rng(11);
  double acc = 0.0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / trials, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  rr::Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values should appear in 1000 draws
  EXPECT_THROW(rng.uniform_int(3, 2), redopt::PreconditionError);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  rr::Rng rng(17);
  const int trials = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.02);
}

TEST(Rng, GaussianScaleAndShift) {
  rr::Rng rng(19);
  const int trials = 100'000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += rng.gaussian(10.0, 0.5);
  EXPECT_NEAR(sum / trials, 10.0, 0.02);
  EXPECT_THROW(rng.gaussian(0.0, -1.0), redopt::PreconditionError);
}

TEST(Rng, UnitSphereHasUnitNorm) {
  rr::Rng rng(23);
  for (std::size_t d : {1u, 2u, 5u, 50u}) {
    const auto v = rng.unit_sphere(d);
    ASSERT_EQ(v.size(), d);
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    EXPECT_NEAR(norm2, 1.0, 1e-12);
  }
  EXPECT_THROW(rng.unit_sphere(0), redopt::PreconditionError);
}

TEST(Rng, PermutationIsPermutation) {
  rr::Rng rng(29);
  const auto p = rng.permutation(20);
  std::vector<std::size_t> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, SubsetIsSortedUniqueInRange) {
  rr::Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = rng.subset(10, 4);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    for (std::size_t i = 1; i < s.size(); ++i) EXPECT_NE(s[i - 1], s[i]);
    for (std::size_t v : s) EXPECT_LT(v, 10u);
  }
  EXPECT_THROW(rng.subset(3, 4), redopt::PreconditionError);
}

TEST(Rng, SubsetFullAndEmpty) {
  rr::Rng rng(37);
  EXPECT_EQ(rng.subset(5, 5).size(), 5u);
  EXPECT_TRUE(rng.subset(5, 0).empty());
}

TEST(Rng, ForkIsDeterministicAndLabelSensitive) {
  const rr::Rng root(99);
  rr::Rng a1 = root.fork("alpha");
  rr::Rng a2 = root.fork("alpha");
  rr::Rng b = root.fork("beta");
  EXPECT_EQ(a1.next_u64(), a2.next_u64());
  rr::Rng a3 = root.fork("alpha");
  EXPECT_NE(a3.next_u64(), b.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  rr::Rng a(5), b(5);
  (void)a.fork("child");
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, HashLabelDistinguishesLabels) {
  EXPECT_NE(rr::hash_label("agent-1"), rr::hash_label("agent-2"));
  EXPECT_EQ(rr::hash_label("x"), rr::hash_label("x"));
}

TEST(Rng, GaussianVectorLength) {
  rr::Rng rng(41);
  EXPECT_EQ(rng.gaussian_vector(17).size(), 17u);
  EXPECT_TRUE(rng.gaussian_vector(0).empty());
}
