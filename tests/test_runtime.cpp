// Tests for the deterministic parallel runtime (runtime/thread_pool.h,
// runtime/runtime.h): pool lifecycle, exception propagation, parallel_for
// coverage, the fixed-shape reduction tree, and — the contract everything
// else relies on — bit-identical library outputs at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/resilience.h"
#include "rng/rng.h"
#include "runtime/runtime.h"
#include "runtime/thread_pool.h"

using namespace redopt;
using linalg::Vector;

namespace {

/// Restores the process-wide thread count on scope exit so tests cannot
/// leak their setting into each other.
struct ThreadsGuard {
  ~ThreadsGuard() { runtime::set_threads(1); }
};

}  // namespace

TEST(ThreadPool, LazyStartJoinRestart) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  EXPECT_FALSE(pool.started());  // workers spawn on first multi-lane run

  std::atomic<int> hits{0};
  pool.run(8, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
  EXPECT_TRUE(pool.started());

  pool.join();
  EXPECT_FALSE(pool.started());

  // The pool restarts lazily after join().
  hits = 0;
  pool.run(8, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
  EXPECT_TRUE(pool.started());
}

TEST(ThreadPool, SingleLanePoolRunsInline) {
  runtime::ThreadPool pool(1);
  std::vector<int> order;
  pool.run(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_FALSE(pool.started());  // no background workers were ever needed
}

TEST(ThreadPool, PropagatesLowestIndexException) {
  runtime::ThreadPool pool(4);
  std::atomic<int> attempted{0};
  try {
    pool.run(32, [&](std::size_t i) {
      attempted.fetch_add(1);
      if (i == 7 || i == 21) throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 7");  // lowest failing index wins
  }
  EXPECT_EQ(attempted.load(), 32);  // a failure does not abandon the batch

  // The pool stays usable after a failed batch.
  std::atomic<int> hits{0};
  pool.run(16, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 16);
}

TEST(Runtime, ParallelForCoversEveryIndexOnce) {
  ThreadsGuard guard;
  runtime::set_threads(8);
  std::vector<int> counts(1000, 0);
  runtime::parallel_for(0, counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i], 1) << "index " << i;
  }
}

TEST(Runtime, OffsetRangeAndEmptyRange) {
  ThreadsGuard guard;
  runtime::set_threads(4);
  std::vector<int> slots(10, 0);
  runtime::parallel_for(3, 7, [&](std::size_t i) { slots[i] = 1; });
  EXPECT_EQ(slots, (std::vector<int>{0, 0, 0, 1, 1, 1, 1, 0, 0, 0}));
  runtime::parallel_for(5, 5, [&](std::size_t) { FAIL() << "empty range ran a task"; });
}

TEST(Runtime, NestedParallelForRunsInline) {
  ThreadsGuard guard;
  runtime::set_threads(4);
  EXPECT_FALSE(runtime::in_parallel_region());
  std::atomic<int> inner_total{0};
  runtime::parallel_for(0, 4, [&](std::size_t) {
    EXPECT_TRUE(runtime::in_parallel_region());
    // The nested region must not deadlock or re-enter the pool.
    runtime::parallel_for(0, 8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
  EXPECT_FALSE(runtime::in_parallel_region());
}

TEST(Runtime, ReduceTreeIsIdenticalAcrossThreadCounts) {
  ThreadsGuard guard;
  // Values chosen so the pairwise tree differs from a left fold in the
  // last bits: summing 1e16 with many 1.0s loses different low-order bits
  // depending on association order.
  std::vector<double> values(37, 1.0);
  values[0] = 1e16;
  auto sum = [&] {
    return runtime::parallel_reduce(
        std::size_t{0}, values.size(), 0.0, [&](std::size_t i) { return values[i]; },
        [](double a, double b) { return a + b; });
  };
  runtime::set_threads(1);
  const double serial = sum();
  runtime::set_threads(2);
  const double two = sum();
  runtime::set_threads(8);
  const double eight = sum();
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, eight);

  double fold = 0.0;
  for (double v : values) fold += v;
  // Sanity: the instance actually exercises non-associativity (the tree
  // disagrees with the fold), so the equalities above are meaningful.
  EXPECT_NE(serial, fold);
}

TEST(Runtime, ReduceEmptyRangeReturnsIdentity) {
  EXPECT_EQ(runtime::parallel_reduce(
                std::size_t{5}, std::size_t{5}, -3.5, [](std::size_t) { return 1.0; },
                [](double a, double b) { return a + b; }),
            -3.5);
}

TEST(Runtime, SetThreadsZeroMeansHardwareConcurrency) {
  ThreadsGuard guard;
  runtime::set_threads(0);
  EXPECT_GE(runtime::threads(), 1u);
}

// The determinism contract on the wired library paths: training, the
// exact algorithm, and resilience certification must produce bit-identical
// outputs for every thread count.  Each run at GetParam() threads is
// compared element-for-element (EXPECT_EQ on doubles — no tolerance)
// against a freshly computed threads = 1 baseline.
class ThreadCountDeterminism : public ::testing::TestWithParam<std::size_t> {
 protected:
  void TearDown() override { runtime::set_threads(1); }

  template <typename Fn>
  void expect_bit_identical(Fn&& observe) {
    runtime::set_threads(1);
    const Vector baseline = observe();
    runtime::set_threads(GetParam());
    const Vector parallel = observe();
    ASSERT_EQ(baseline.size(), parallel.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_EQ(baseline[i], parallel[i]) << "component " << i;
    }
  }
};

TEST_P(ThreadCountDeterminism, DgdTraining) {
  // R-T1 shape: the paper's regression instance, DGD+CGE under
  // gradient_reverse with agent 0 Byzantine.
  rng::Rng rng(42);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.03, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  expect_bit_identical([&] {
    filters::FilterParams fp;
    fp.n = 6;
    fp.f = 1;
    dgd::TrainerConfig cfg;
    cfg.filter = filters::make_filter("cge", fp);
    cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
    cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
    cfg.iterations = 400;
    cfg.trace_stride = 0;
    cfg.x0 = Vector{-0.0085, -0.5643};
    const auto result = dgd::train(inst.problem, {0}, attack.get(), cfg);
    Vector obs = result.estimate;
    obs.data().push_back(result.final_loss);
    return obs;
  });
}

TEST_P(ThreadCountDeterminism, ExactAlgorithm) {
  // R-T4 shape: one adversarial quadratic among nearly redundant costs.
  rng::Rng rng(7);
  std::vector<core::CostPtr> costs;
  for (std::size_t i = 0; i < 7; ++i) {
    Vector center(rng.gaussian_vector(2));
    center *= 0.01;
    costs.push_back(
        std::make_shared<core::QuadraticCost>(core::QuadraticCost::squared_distance(center)));
  }
  costs[2] = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{7.0, -4.0}));
  expect_bit_identical([&] {
    const auto result = core::run_exact_algorithm(costs, 2);
    Vector obs = result.output;
    obs.data().push_back(result.chosen_score);
    obs.data().push_back(static_cast<double>(result.subsets_evaluated));
    for (std::size_t id : result.chosen_set) obs.data().push_back(static_cast<double>(id));
    return obs;
  });
}

TEST_P(ThreadCountDeterminism, ResilienceCertification) {
  rng::Rng rng(11);
  std::vector<core::CostPtr> costs;
  for (std::size_t i = 0; i < 5; ++i) {
    costs.push_back(std::make_shared<core::QuadraticCost>(
        core::QuadraticCost::squared_distance(Vector(rng.gaussian_vector(2)))));
  }
  const std::vector<core::CostPtr> adversarial = {std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector{5.0, 5.0}))};
  expect_bit_identical([&] {
    const auto report = redundancy::measure_resilience(
        costs, 1,
        [](const std::vector<core::CostPtr>& received, std::size_t f) {
          return core::run_exact_algorithm(received, f).output;
        },
        adversarial);
    Vector obs{report.epsilon, static_cast<double>(report.scenarios_run)};
    for (std::size_t id : report.worst_byzantine) obs.data().push_back(static_cast<double>(id));
    for (std::size_t id : report.worst_subset) obs.data().push_back(static_cast<double>(id));
    return obs;
  });
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountDeterminism, ::testing::Values(1u, 2u, 8u));
