// Robustness fuzzing for every input surface: regression instance
// files, key = value configs, the JSON parser, chaos scenario files, and
// the transport wire codec (the one binary format).
// Each corpus starts from a valid document and applies seeded byte
// mutations; the contract under test is "success or PreconditionError" —
// parsers must never crash, hang, or silently misparse, no matter the
// input.  The suites also pin down specific malformed inputs that the
// mutation corpus might miss (overflow, negative sizes, non-finite
// values, trailing garbage).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "chaos/executor.h"
#include "chaos/generator.h"
#include "chaos/scenario.h"
#include "serving/checkpoint.h"
#include "serving/job.h"
#include "serving/runner.h"
#include "data/instance_io.h"
#include "elastic/membership.h"
#include "data/regression.h"
#include "rng/rng.h"
#include "util/config.h"
#include "util/error.h"
#include "util/frame.h"
#include "util/json.h"

using namespace redopt;

namespace {

constexpr std::size_t kMutantsPerSeed = 400;

/// Applies 1-8 seeded byte mutations (overwrite, insert, delete, truncate)
/// to @p base.  Deterministic per (base, rng state).
std::string mutate(const std::string& base, rng::Rng& rng) {
  std::string out = base;
  const auto edits = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t e = 0; e < edits && !out.empty(); ++e) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
    switch (rng.uniform_int(0, 3)) {
      case 0:  // overwrite with an arbitrary byte
        out[pos] = static_cast<char>(rng.uniform_int(0, 255));
        break;
      case 1:  // insert an arbitrary byte
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   static_cast<char>(rng.uniform_int(0, 255)));
        break;
      case 2:  // delete one byte
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(pos));
        break;
      default:  // truncate
        out.resize(pos);
        break;
    }
  }
  return out;
}

/// Runs @p parse on every mutant of @p base; anything but success or a
/// typed error is a bug (a crash fails the whole binary, which is the
/// point — the sanitizer CI job runs this same corpus under asan/ubsan).
template <typename Parse>
void fuzz_corpus(const std::string& base, std::uint64_t seed, const Parse& parse) {
  rng::Rng rng(seed);
  std::size_t survived = 0;
  for (std::size_t k = 0; k < kMutantsPerSeed; ++k) {
    const std::string mutant = mutate(base, rng);
    try {
      parse(mutant);
      ++survived;
    } catch (const PreconditionError&) {
      // expected for malformed inputs
    }
  }
  // Not an assertion target, just a sanity signal that the corpus is not
  // trivially all-rejected (some mutations hit comments/whitespace).
  (void)survived;
}

std::string valid_instance_text() {
  rng::Rng rng(5);
  const auto inst =
      data::make_regression(data::paper_matrix(), linalg::Vector{1.0, -2.0}, 0.05, 1, rng);
  return data::regression_to_string(inst);
}

}  // namespace

TEST(FuzzInstanceIo, MutatedInstancesNeverCrash) {
  const std::string base = valid_instance_text();
  fuzz_corpus(base, 101, [](const std::string& text) { data::regression_from_string(text); });
  fuzz_corpus(base, 202, [](const std::string& text) { data::regression_from_string(text); });
}

TEST(FuzzInstanceIo, ValidInstanceRoundTrips) {
  const std::string base = valid_instance_text();
  const auto parsed = data::regression_from_string(base);
  EXPECT_EQ(data::regression_to_string(parsed), base);
}

TEST(FuzzInstanceIo, RejectsHostileHeaders) {
  // Negative sizes must not wrap into huge allocations.
  EXPECT_THROW(data::regression_from_string("redopt-regression v1\nn -5 d 2 f 1\n"),
               PreconditionError);
  // Claimed sizes beyond the file contents are rejected before allocation.
  EXPECT_THROW(
      data::regression_from_string("redopt-regression v1\nn 999999 d 9999 f 1\nx_star 0 0\n"),
      PreconditionError);
  EXPECT_THROW(data::regression_from_string("redopt-regression v1\nn 99999999999999999999 d 2 f 1\n"),
               PreconditionError);
  // f > n is inconsistent.
  EXPECT_THROW(data::regression_from_string("redopt-regression v1\nn 2 d 1 f 3\n"
                                            "x_star 1\nrow 1 obs 1\nrow 1 obs 1\n"),
               PreconditionError);
}

TEST(FuzzInstanceIo, RejectsNonFiniteAndTrailingContent) {
  const std::string header = "redopt-regression v1\nn 1 d 1 f 0\n";
  EXPECT_THROW(data::regression_from_string(header + "x_star nan\nrow 1 obs 1\n"),
               PreconditionError);
  EXPECT_THROW(data::regression_from_string(header + "x_star 1\nrow inf obs 1\n"),
               PreconditionError);
  EXPECT_THROW(data::regression_from_string(header + "x_star 1\nrow 1 obs 1 extra\n"),
               PreconditionError);
  EXPECT_THROW(data::regression_from_string(header + "x_star 1\nrow 1 obs 1\ngarbage\n"),
               PreconditionError);
  EXPECT_THROW(data::regression_from_string(header + "x_star 1 2\nrow 1 obs 1\n"),
               PreconditionError);
}

TEST(FuzzConfig, MutatedConfigsNeverCrash) {
  const std::string base =
      "# experiment description\n"
      "filter = cge\n"
      "iterations = 500\n"
      "step = 0.25\n"
      "trace = true\n";
  fuzz_corpus(base, 303, [](const std::string& text) {
    const util::Config config = util::Config::parse(text);
    // Exercise the typed getters too: they must throw, not misparse.
    try {
      config.get_int("iterations", 0);
    } catch (const PreconditionError&) {
    }
    try {
      config.get_double("step", 0.0);
    } catch (const PreconditionError&) {
    }
    try {
      config.get_bool("trace", false);
    } catch (const PreconditionError&) {
    }
  });
}

TEST(FuzzConfig, TypedGettersRejectMisparses) {
  const util::Config config = util::Config::parse(
      "count = 12abc\nrate = 0.5x\nflag = maybe\nhuge = 1e999\nok = 7\n");
  EXPECT_THROW(config.get_int("count", 0), PreconditionError);
  EXPECT_THROW(config.get_double("rate", 0.0), PreconditionError);
  EXPECT_THROW(config.get_bool("flag", false), PreconditionError);
  EXPECT_THROW(config.get_double("huge", 0.0), PreconditionError);
  EXPECT_EQ(config.get_int("ok", 0), 7);
  EXPECT_EQ(config.get_int("absent", 42), 42);  // absent keys keep defaults
}

TEST(FuzzJson, MutatedDocumentsNeverCrash) {
  const std::string base =
      R"({"name":"trace","values":[1,2.5,-3e2,true,false,null],)"
      R"("nested":{"deep":["\u0041\n\"quoted\"",{}]},"count":12})";
  fuzz_corpus(base, 404, [](const std::string& text) { util::json_parse(text); });
  fuzz_corpus(base, 505, [](const std::string& text) { util::json_parse(text); });
}

TEST(FuzzJson, RejectsPathologicalDocuments) {
  EXPECT_THROW(util::json_parse(std::string(1000, '[')), PreconditionError);  // deep nesting
  EXPECT_THROW(util::json_parse("{\"a\":1,}"), PreconditionError);
  EXPECT_THROW(util::json_parse("\"\\ud800\""), PreconditionError);  // lone surrogate
  EXPECT_THROW(util::json_parse("1e999999"), PreconditionError);     // double overflow
  EXPECT_THROW(util::json_parse("{\"a\":1} {\"b\":2}"), PreconditionError);
}

TEST(FuzzJson, LargeIntegersRoundTripExactly) {
  const std::int64_t big = 8266114566950128573;  // not representable as double
  const util::JsonValue v = util::json_parse(std::to_string(big));
  EXPECT_EQ(v.as_int(0, std::numeric_limits<std::int64_t>::max()), big);
}

TEST(FuzzScenario, MutatedScenarioJsonNeverCrashes) {
  chaos::Generator generator(chaos::GeneratorSpec{}, 77);
  for (std::uint64_t seed = 606; seed <= 808; seed += 101) {
    const std::string base = generator.next().to_json();
    fuzz_corpus(base, seed,
                [](const std::string& text) { chaos::scenario_from_json(text); });
  }
}

TEST(FuzzScenario, MutatedElasticScenarioJsonNeverCrashes) {
  // Elastic documents carry two extra arrays (membership, stream) with
  // their own cross-field invariants (alternation, sort order, live-set
  // non-emptiness, family gating) — every one must degrade to a
  // PreconditionError under mutation, never a crash or a misparse that
  // validate() would then trip over as a logic error.
  const auto parse_and_validate = [](const std::string& text) {
    chaos::scenario_from_json(text).validate();
  };
  fuzz_corpus(elastic::make_churn_scenario(elastic::ChurnProfile::kJoinHeavy, 31).to_json(), 909,
              parse_and_validate);
  fuzz_corpus(elastic::make_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, 32).to_json(), 919,
              parse_and_validate);
  fuzz_corpus(elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kJoinHeavy, 33).to_json(),
              929, parse_and_validate);
  fuzz_corpus(elastic::make_redundancy_dip_scenario(34).to_json(), 939, parse_and_validate);

  chaos::GeneratorSpec spec;
  spec.elastic_probability = 1.0;
  chaos::Generator generator(spec, 88);
  for (int k = 0; k < 4; ++k) {
    fuzz_corpus(generator.next().to_json(), 949 + static_cast<std::uint64_t>(k),
                parse_and_validate);
  }
}

TEST(FuzzScenario, RejectsHostileElasticDocuments) {
  const std::string base =
      elastic::make_streaming_churn_scenario(elastic::ChurnProfile::kLeaveHeavy, 35).to_json();
  const chaos::Scenario parsed = chaos::scenario_from_json(base);
  EXPECT_NO_THROW(parsed.validate());

  // Pinned malformed documents the random corpus might miss: each takes
  // the valid base and breaks exactly one elastic invariant.
  auto broken = [&base](const std::string& from, const std::string& to) {
    std::string doc = base;
    const std::size_t at = doc.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    doc.replace(at, from.size(), to);
    EXPECT_THROW(chaos::scenario_from_json(doc).validate(), PreconditionError) << to;
  };
  // An event round at/after the horizon.
  broken("\"round\":15", "\"round\":999999");
  // An out-of-range agent id.
  broken("\"agent\":7", "\"agent\":70");
  // A zero-row stream arrival.
  {
    std::string doc = base;
    const std::size_t at = doc.find("\"rows\":");
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = doc.find_first_of(",}", at + 7);
    doc.replace(at, end - at, "\"rows\":0");
    EXPECT_THROW(chaos::scenario_from_json(doc).validate(), PreconditionError);
  }
  // Unknown members are rejected outright (strict schema).
  {
    std::string doc = base;
    doc.insert(doc.find("\"membership\""), "\"membership2\":[],");
    EXPECT_THROW(chaos::scenario_from_json(doc), PreconditionError);
  }
  // A row count that overflows the total-stream-rows cap.
  {
    std::string doc = base;
    const std::size_t at = doc.find("\"rows\":");
    ASSERT_NE(at, std::string::npos);
    const std::size_t end = doc.find_first_of(",}", at + 7);
    doc.replace(at, end - at, "\"rows\":281474976710656");
    EXPECT_THROW(chaos::scenario_from_json(doc).validate(), PreconditionError);
  }
}

namespace {

std::string valid_frame_bytes() {
  util::Frame frame;
  frame.type = util::FrameType::kGradient;
  frame.agent = 3;
  frame.round = 12;
  frame.emitted = 11;
  frame.hops = 2;
  frame.payload = {0.5, -1.25, 3e7, -0.0};
  return util::encode_frame(frame);
}

}  // namespace

TEST(FuzzFrame, MutatedWireBytesNeverCrash) {
  // The transport wire codec is a *binary* input surface: every byte a
  // peer process sends reaches decode_frame before anything trusts it.
  // Same contract as the text parsers — success or PreconditionError —
  // and the checksum means almost every mutant must be rejected.
  const std::string base = valid_frame_bytes();
  fuzz_corpus(base, 909, [](const std::string& bytes) { util::decode_frame(bytes); });
  fuzz_corpus(base, 910, [](const std::string& bytes) { util::decode_frame(bytes); });
}

TEST(FuzzFrame, MutatedBodiesNeverCrash) {
  // decode_frame_body is the path the socket reader actually takes after
  // consuming the length prefix itself; fuzz it separately so prefix
  // validation cannot mask body bugs.
  const std::string base = valid_frame_bytes().substr(4);
  fuzz_corpus(base, 911, [](const std::string& body) {
    util::decode_frame_body(reinterpret_cast<const unsigned char*>(body.data()), body.size());
  });
}

TEST(FuzzFrame, RejectsHostileLengthAndCount) {
  const std::string base = valid_frame_bytes();
  // A length prefix promising more body than exists must not over-read.
  std::string long_prefix = base;
  long_prefix[0] = static_cast<char>(0xff);
  long_prefix[1] = static_cast<char>(0xff);
  EXPECT_THROW(util::decode_frame(long_prefix), PreconditionError);
  // A huge payload count must be rejected before any allocation sized by
  // it (count * 8 would wrap or OOM).
  util::Frame frame;
  frame.payload = {1.0};
  std::string bytes = util::encode_frame(frame);
  const std::size_t count_offset = bytes.size() - 8 - 4 - 4;  // before payload + crc
  for (std::size_t k = 0; k < 4; ++k) bytes[count_offset + k] = static_cast<char>(0xff);
  EXPECT_THROW(util::decode_frame(bytes), PreconditionError);
  EXPECT_THROW(util::decode_frame(std::string()), PreconditionError);
}

namespace {

std::string valid_telemetry_frame_bytes() {
  util::Frame frame;
  frame.type = util::FrameType::kTelemetry;
  frame.agent = 3;
  frame.round = 12;
  frame.emitted = 12;
  frame.hops = 1;
  frame.payload = util::pack_blob(
      R"({"agent":3,"metrics":[{"name":"replica.rounds","value":12}],"spans":[]})");
  return util::encode_frame(frame);
}

}  // namespace

TEST(FuzzFrame, MutatedTelemetryFramesNeverCrash) {
  // kTelemetry frames add a second validation layer on top of the frame
  // codec: the blob packing's declared byte count must agree with the
  // payload size.  The corpus must only ever see success or the typed
  // error out of either layer.
  const std::string base = valid_telemetry_frame_bytes();
  fuzz_corpus(base, 912, [](const std::string& bytes) { util::decode_frame(bytes); });
  fuzz_corpus(base, 913, [](const std::string& bytes) {
    const util::Frame frame = util::decode_frame(bytes);
    if (frame.type == util::FrameType::kTelemetry) util::unpack_blob(frame.payload);
  });
}

TEST(FuzzFrame, RejectsTelemetryLengthDisagreement) {
  // A declared blob length that disagrees with the decoded payload size
  // is rejected at the codec boundary, before anything trusts the bytes.
  util::Frame frame;
  frame.type = util::FrameType::kTelemetry;
  frame.agent = 1;
  frame.payload = util::pack_blob("snapshot bytes");

  util::Frame overdeclared = frame;
  overdeclared.payload[0] = static_cast<double>(8 * frame.payload.size());
  EXPECT_THROW(util::decode_frame(util::encode_frame(overdeclared)), PreconditionError);

  util::Frame negative = frame;
  negative.payload[0] = -1.0;
  EXPECT_THROW(util::decode_frame(util::encode_frame(negative)), PreconditionError);

  util::Frame fractional = frame;
  fractional.payload[0] += 0.5;
  EXPECT_THROW(util::decode_frame(util::encode_frame(fractional)), PreconditionError);

  util::Frame sloppy = frame;  // > 7 bytes of padding: packing not minimal
  sloppy.payload.push_back(0.0);
  EXPECT_THROW(util::decode_frame(util::encode_frame(sloppy)), PreconditionError);

  util::Frame empty = frame;  // no count entry at all
  empty.payload.clear();
  EXPECT_THROW(util::unpack_blob(empty.payload), PreconditionError);

  // The same payloads on a kGradient frame are plain doubles — no blob
  // contract applies, so the codec accepts them unchanged.
  util::Frame gradient = overdeclared;
  gradient.type = util::FrameType::kGradient;
  EXPECT_EQ(util::decode_frame(util::encode_frame(gradient)).payload, gradient.payload);
}

TEST(FuzzFrame, ValidTelemetryFrameRoundTrips) {
  const std::string base = valid_telemetry_frame_bytes();
  const util::Frame frame = util::decode_frame(base);
  EXPECT_EQ(frame.type, util::FrameType::kTelemetry);
  EXPECT_EQ(util::unpack_blob(frame.payload),
            R"({"agent":3,"metrics":[{"name":"replica.rounds","value":12}],"spans":[]})");
  EXPECT_EQ(util::encode_frame(frame), base);
}

TEST(FuzzFrame, ValidFrameSurvivesItsOwnCorpus) {
  // Sanity anchor: the unmutated base parses, so corpus rejections are
  // the checksum doing its job rather than a broken encoder.
  const std::string base = valid_frame_bytes();
  const util::Frame frame = util::decode_frame(base);
  EXPECT_EQ(frame.agent, 3u);
  EXPECT_EQ(frame.payload.size(), 4u);
  EXPECT_EQ(util::encode_frame(frame), base);
}

namespace {

/// A mid-flight serving checkpoint with every section populated: faulty
/// scenario, straggler history window, in-flight delayed replies, and
/// non-zero counters — the richest JSON document the daemon reads back
/// from disk after a crash.
std::string valid_checkpoint_json() {
  chaos::Scenario s;
  s.name = "fuzz-ckpt";
  s.seed = 77;
  s.problem = "regression";
  s.filter = "cge";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.rounds = 30;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 1;
  byz.from = 2;
  byz.attack = "random";
  byz.attack_param = 40.0;
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 5;
  straggler.from = 1;
  straggler.staleness = 2;
  s.faults = {byz, straggler};
  s.channel.drop_probability = 0.1;
  s.channel.duplicate_probability = 0.1;
  s.channel.max_delay = 2;
  s.validate();

  serving::JobSpec spec;
  spec.job_id = "fuzz";
  spec.scenario = s;
  const chaos::MaterializedScenario built = chaos::materialize_scenario(s);
  serving::JobCheckpoint ck = serving::make_initial_checkpoint(spec, built);
  serving::SliceContext ctx;
  ctx.built = &built;
  serving::run_job_slice(ck, 13, ctx);
  return ck.to_json();
}

}  // namespace

TEST(FuzzCheckpoint, MutatedCheckpointBlobsNeverCrash) {
  // The daemon feeds checkpoint_from_json bytes read back from disk
  // after a crash — torn writes and corruption are exactly what the
  // mutation corpus simulates.  Contract: success or PreconditionError.
  const std::string base = valid_checkpoint_json();
  fuzz_corpus(base, 1101,
              [](const std::string& text) { serving::checkpoint_from_json(text); });
  fuzz_corpus(base, 1102,
              [](const std::string& text) { serving::checkpoint_from_json(text); });
}

TEST(FuzzCheckpoint, RejectsHostileStructuredDocuments) {
  // Structure-preserving corruptions the byte corpus is unlikely to hit:
  // each document stays valid JSON but breaks a cross-field invariant
  // the runner relies on to resume safely.
  const std::string base = valid_checkpoint_json();
  const auto tamper = [&base](const std::string& needle, const std::string& replacement) {
    const auto at = base.find(needle);
    EXPECT_NE(at, std::string::npos) << needle;
    return base.substr(0, at) + replacement + base.substr(at + needle.size());
  };
  // An agent index pushed outside the population (the first match sits
  // in the embedded spec's fault list; spec validation catches it).
  EXPECT_THROW(serving::checkpoint_from_json(tamper("\"agent\":1,", "\"agent\":99,")),
               PreconditionError);
  // Counters with an unknown member.
  EXPECT_THROW(
      serving::checkpoint_from_json(tamper("\"filter_rebuilds\"", "\"made_up_counter\"")),
      PreconditionError);
  // A null distance (the original value lands under an unknown member —
  // either defect alone is fatal).
  EXPECT_THROW(serving::checkpoint_from_json(tamper(
                   "\"initial_distance\":", "\"initial_distance\":null,\"blank_distance\":")),
               PreconditionError);
  // The unmutated base round-trips bit-exactly (corpus sanity anchor).
  EXPECT_EQ(serving::checkpoint_from_json(base).to_json(), base);
}
