// Unit tests for linalg::Matrix.
#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "util/error.h"

using redopt::linalg::Matrix;
using redopt::linalg::Vector;
namespace rl = redopt::linalg;

TEST(Matrix, ConstructionAndShape) {
  const Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(Matrix(2, 2, 7.0)(0, 1), 7.0);
  EXPECT_TRUE(Matrix().empty());
}

TEST(Matrix, NestedBracesConstruction) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), redopt::PreconditionError);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
  const Matrix d = Matrix::diagonal(Vector{2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, FromRowsStacksVectors) {
  const Matrix m = Matrix::from_rows({Vector{1.0, 2.0}, Vector{3.0, 4.0}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_THROW(Matrix::from_rows({Vector{1.0}, Vector{1.0, 2.0}}), redopt::PreconditionError);
  EXPECT_THROW(Matrix::from_rows({}), redopt::PreconditionError);
}

TEST(Matrix, RowColAccessors) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  EXPECT_EQ(m.row(1), (Vector{3.0, 4.0}));
  EXPECT_EQ(m.col(0), (Vector{1.0, 3.0, 5.0}));
  EXPECT_THROW(m.row(3), redopt::PreconditionError);
  EXPECT_THROW(m.col(2), redopt::PreconditionError);
}

TEST(Matrix, SetRowValidates) {
  Matrix m(2, 2);
  m.set_row(0, Vector{1.0, 2.0});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_THROW(m.set_row(0, Vector{1.0}), redopt::PreconditionError);
  EXPECT_THROW(m.set_row(2, Vector{1.0, 2.0}), redopt::PreconditionError);
}

TEST(Matrix, SelectRows) {
  const Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix sub = m.select_rows({2, 0});
  EXPECT_EQ(sub.rows(), 2u);
  EXPECT_EQ(sub.row(0), (Vector{5.0, 6.0}));
  EXPECT_EQ(sub.row(1), (Vector{1.0, 2.0}));
  EXPECT_THROW(m.select_rows({5}), redopt::PreconditionError);
}

TEST(Matrix, TransposeInvolution) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(Matrix, MatmulAgainstHandComputed) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = rl::matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
  EXPECT_THROW(rl::matmul(a, Matrix(3, 2)), redopt::PreconditionError);
}

TEST(Matrix, MatmulIdentityIsNeutral) {
  const Matrix a{{1.0, -2.0}, {0.5, 3.0}};
  EXPECT_EQ(rl::matmul(a, Matrix::identity(2)), a);
  EXPECT_EQ(rl::matmul(Matrix::identity(2), a), a);
}

TEST(Matrix, MatvecAndTransposedMatvec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector x{1.0, -1.0};
  EXPECT_EQ(rl::matvec(a, x), (Vector{-1.0, -1.0, -1.0}));
  const Vector y{1.0, 0.0, 1.0};
  EXPECT_EQ(rl::matvec_transposed(a, y), (Vector{6.0, 8.0}));
  EXPECT_THROW(rl::matvec(a, Vector{1.0}), redopt::PreconditionError);
  EXPECT_THROW(rl::matvec_transposed(a, Vector{1.0}), redopt::PreconditionError);
}

TEST(Matrix, GramIsTransposeTimesSelf) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix g = a.gram();
  const Matrix expected = rl::matmul(a.transposed(), a);
  EXPECT_EQ(g.rows(), 2u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_NEAR(g(i, j), expected(i, j), 1e-12);
}

TEST(Matrix, OuterProduct) {
  const Matrix o = rl::outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
  EXPECT_EQ(o.rows(), 2u);
  EXPECT_EQ(o.cols(), 3u);
  EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(Matrix, NormsAndMaxAbs) {
  const Matrix m{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}};
  const Matrix b{{3.0, 5.0}};
  EXPECT_EQ(a + b, (Matrix{{4.0, 7.0}}));
  EXPECT_EQ(b - a, (Matrix{{2.0, 3.0}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2.0, 4.0}}));
  EXPECT_EQ(2.0 * a, (Matrix{{2.0, 4.0}}));
  Matrix c = a;
  EXPECT_THROW(c += Matrix(2, 2), redopt::PreconditionError);
}

TEST(Matrix, BoundsCheckedAt) {
  Matrix m(2, 2);
  m.at(1, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 9.0);
  EXPECT_THROW(m.at(2, 0), redopt::PreconditionError);
}
