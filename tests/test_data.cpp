// Tests for the synthetic data generators.
#include <gtest/gtest.h>

#include <cmath>

#include "core/problem.h"
#include "data/classification.h"
#include "data/mean_estimation.h"
#include "data/regression.h"
#include "redundancy/redundancy.h"
#include "util/error.h"

using namespace redopt;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------- Regression

TEST(RegressionData, PaperMatrixShapeAndRedundancy) {
  const Matrix a = data::paper_matrix();
  EXPECT_EQ(a.rows(), 6u);
  EXPECT_EQ(a.cols(), 2u);
  EXPECT_TRUE(redundancy::regression_rank_condition(a, 1));
}

TEST(RegressionData, RedundantMatrixSatisfiesRankCondition) {
  rng::Rng rng(1);
  for (auto [n, d, f] : {std::tuple<std::size_t, std::size_t, std::size_t>{8, 3, 2},
                         {10, 4, 2},
                         {6, 2, 2}}) {
    const Matrix a = data::redundant_matrix(n, d, f, rng);
    EXPECT_EQ(a.rows(), n);
    EXPECT_EQ(a.cols(), d);
    EXPECT_TRUE(redundancy::regression_rank_condition(a, f));
  }
}

TEST(RegressionData, RedundantMatrixRejectsInfeasibleShapes) {
  rng::Rng rng(2);
  EXPECT_THROW(data::redundant_matrix(5, 2, 2, rng), redopt::PreconditionError);  // n-2f < d
  EXPECT_THROW(data::redundant_matrix(4, 1, 2, rng), redopt::PreconditionError);  // n <= 2f
}

TEST(RegressionData, NoiselessObservationsMatchGroundTruth) {
  rng::Rng rng(3);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  EXPECT_NEAR(linalg::distance(inst.b, linalg::matvec(inst.a, inst.x_star)), 0.0, 1e-15);
  // Every cost is zero at x_star.
  for (const auto& cost : inst.problem.costs) {
    EXPECT_NEAR(cost->value(inst.x_star), 0.0, 1e-15);
  }
}

TEST(RegressionData, NoiseLevelReflectedInObservations) {
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.5, 1, rng);
  const Vector residual = inst.b - linalg::matvec(inst.a, inst.x_star);
  EXPECT_GT(residual.norm(), 1e-3);
  EXPECT_LT(residual.norm_inf(), 5.0);  // ~ sigma * few
}

TEST(RegressionData, ArgminSolvesHonestSystem) {
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const Vector x_h = data::regression_argmin(inst, {1, 2, 3, 4, 5});
  EXPECT_NEAR(linalg::distance(x_h, Vector{1.0, 1.0}), 0.0, 1e-10);
  EXPECT_THROW(data::regression_argmin(inst, {}), redopt::PreconditionError);
}

TEST(RegressionData, ConstantsMatchDirectEigenComputation) {
  rng::Rng rng(6);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const std::vector<std::size_t> honest = {1, 2, 3, 4, 5};
  const auto constants = data::regression_constants(inst, honest);
  // mu = max 2||A_i||^2 over honest rows: all rows are unit norm -> 2.
  EXPECT_NEAR(constants.mu, 2.0, 1e-12);
  EXPECT_GT(constants.gamma, 0.0);
  EXPECT_LE(constants.gamma, constants.mu);  // gamma <= mu always
  // Cross-check gamma against core::strong_convexity_constant.
  const double gamma2 =
      core::strong_convexity_constant(inst.problem, honest, Vector(2));
  EXPECT_NEAR(constants.gamma, gamma2, 1e-9);
  const double mu2 = core::lipschitz_constant(inst.problem, honest, Vector(2));
  EXPECT_NEAR(constants.mu, mu2, 1e-9);
}

TEST(RegressionData, CgeAlphaFormula) {
  EXPECT_NEAR(core::cge_alpha(6, 0, 2.0, 1.0), 1.0, 1e-12);
  // alpha = 1 - (1/6)(1 + 2*2/0.5) = 1 - 1.5 = -0.5.
  EXPECT_NEAR(core::cge_alpha(6, 1, 2.0, 0.5), -0.5, 1e-12);
  EXPECT_THROW(core::cge_alpha(0, 0, 1.0, 1.0), redopt::PreconditionError);
  EXPECT_THROW(core::cge_alpha(6, 1, 1.0, 0.0), redopt::PreconditionError);
}

TEST(RegressionData, OrthonormalBlocksAreOrthonormal) {
  rng::Rng rng(20);
  const auto inst = data::make_orthonormal_regression(6, 3, 1, 0.0, Vector{1.0, 2.0, 3.0}, rng);
  EXPECT_EQ(inst.problem.num_agents(), 6u);
  for (const auto& block : inst.blocks) {
    const Matrix gram = block.gram();
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = 0; j < 3; ++j)
        EXPECT_NEAR(gram(i, j), i == j ? 1.0 : 0.0, 1e-10);
  }
}

TEST(RegressionData, OrthonormalInstanceHasAlphaPositive) {
  // mu = gamma = 2 exactly, so alpha = 1 - 3 f / n = 0.5 at n = 6, f = 1.
  rng::Rng rng(21);
  const auto inst = data::make_orthonormal_regression(6, 2, 1, 0.0, Vector{1.0, 1.0}, rng);
  const std::vector<std::size_t> honest = {1, 2, 3, 4, 5};
  const double mu = core::lipschitz_constant(inst.problem, honest, Vector(2));
  const double gamma = core::strong_convexity_constant(inst.problem, honest, Vector(2));
  EXPECT_NEAR(mu, 2.0, 1e-9);
  EXPECT_NEAR(gamma, 2.0, 1e-9);
  EXPECT_NEAR(core::cge_alpha(6, 1, mu, gamma), 0.5, 1e-9);
}

TEST(RegressionData, BlockArgminRecoversTruthNoiseless) {
  rng::Rng rng(22);
  const Vector x_star{0.5, -1.5};
  const auto inst = data::make_orthonormal_regression(7, 2, 2, 0.0, x_star, rng);
  const Vector x_h = data::block_regression_argmin(inst, {0, 2, 3, 5, 6});
  EXPECT_NEAR(linalg::distance(x_h, x_star), 0.0, 1e-10);
}

// ---------------------------------------------------------------- Classification

TEST(ClassificationData, ShapesAndLabels) {
  rng::Rng rng(7);
  data::ClassificationConfig cfg;
  cfg.n = 6;
  cfg.f = 1;
  cfg.d = 4;
  cfg.samples_per_agent = 20;
  cfg.test_samples = 100;
  const auto inst = data::make_classification(cfg, rng);
  EXPECT_EQ(inst.problem.num_agents(), 6u);
  EXPECT_EQ(inst.problem.dimension(), 4u);
  EXPECT_EQ(inst.test_features.rows(), 100u);
  for (std::size_t i = 0; i < inst.test_labels.size(); ++i) {
    EXPECT_TRUE(inst.test_labels[i] == 1.0 || inst.test_labels[i] == -1.0);
  }
  EXPECT_NEAR(inst.class_direction.norm(), 1.0, 1e-12);
}

TEST(ClassificationData, TrueDirectionClassifiesWell) {
  rng::Rng rng(8);
  data::ClassificationConfig cfg;
  cfg.separation = 3.0;
  const auto inst = data::make_classification(cfg, rng);
  // The generating direction itself should reach high accuracy.
  EXPECT_GT(data::test_accuracy(inst, inst.class_direction), 0.95);
  // A random orthogonal-ish direction should hover near chance.
  Vector junk(cfg.d);
  junk[0] = inst.class_direction[1];
  junk[1] = -inst.class_direction[0];
  EXPECT_LT(data::test_accuracy(inst, junk), 0.8);
}

TEST(ClassificationData, HingeVariantBuildsHingeCosts) {
  rng::Rng rng(9);
  data::ClassificationConfig cfg;
  cfg.loss = "hinge";
  cfg.n = 5;
  cfg.f = 1;
  const auto inst = data::make_classification(cfg, rng);
  EXPECT_NE(inst.problem.costs[0]->describe().find("smoothed_hinge"), std::string::npos);
}

TEST(ClassificationData, ValidatesConfig) {
  rng::Rng rng(10);
  data::ClassificationConfig cfg;
  cfg.loss = "mse";
  EXPECT_THROW(data::make_classification(cfg, rng), redopt::PreconditionError);
  cfg = {};
  cfg.n = 4;
  cfg.f = 2;
  EXPECT_THROW(data::make_classification(cfg, rng), redopt::PreconditionError);
}

TEST(ClassificationData, HeterogeneityShiftsAgentData) {
  rng::Rng rng_a(11), rng_b(11);
  data::ClassificationConfig homo;
  homo.heterogeneity = 0.0;
  data::ClassificationConfig hetero = homo;
  hetero.heterogeneity = 5.0;
  const auto inst_homo = data::make_classification(homo, rng_a);
  const auto inst_hetero = data::make_classification(hetero, rng_b);
  // Heterogeneous agents' local optima differ more: compare local gradient
  // spread at the origin as a cheap proxy.
  auto spread = [](const core::MultiAgentProblem& p) {
    std::vector<Vector> gs;
    for (const auto& c : p.costs) gs.push_back(c->gradient(Vector(p.dimension())));
    const Vector mean = linalg::mean(gs);
    double acc = 0.0;
    for (const auto& g : gs) acc += linalg::distance(g, mean);
    return acc / static_cast<double>(gs.size());
  };
  EXPECT_GT(spread(inst_hetero.problem), spread(inst_homo.problem));
}

// ---------------------------------------------------------------- Mean estimation

TEST(MeanEstimationData, HonestAggregateMinimizesAtSampleMean) {
  rng::Rng rng(12);
  const auto inst = data::make_mean_estimation(Vector{1.0, -1.0}, 0.5, 7, 2, rng);
  EXPECT_EQ(inst.problem.num_agents(), 7u);
  const std::vector<std::size_t> honest = {0, 1, 2, 3, 4};
  const Vector mean = data::honest_sample_mean(inst, honest);
  // The honest aggregate's gradient vanishes at the sample mean.
  const auto agg = inst.problem.aggregate(honest);
  EXPECT_NEAR(agg.gradient(mean).norm(), 0.0, 1e-10);
}

TEST(MeanEstimationData, SamplesConcentrateAroundTrueMean) {
  rng::Rng rng(13);
  const auto inst = data::make_mean_estimation(Vector{3.0}, 0.1, 9, 1, rng);
  const Vector mean = data::honest_sample_mean(inst, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_NEAR(mean[0], 3.0, 0.2);
}

TEST(MeanEstimationData, ValidatesArguments) {
  rng::Rng rng(14);
  EXPECT_THROW(data::make_mean_estimation(Vector{}, 1.0, 5, 1, rng), redopt::PreconditionError);
  EXPECT_THROW(data::make_mean_estimation(Vector{1.0}, -1.0, 5, 1, rng),
               redopt::PreconditionError);
  EXPECT_THROW(data::make_mean_estimation(Vector{1.0}, 1.0, 4, 2, rng),
               redopt::PreconditionError);
}
