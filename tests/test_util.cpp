// Unit tests for util: CSV writer, table printer, CLI parser, subsets.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "util/cli.h"
#include "util/config.h"
#include "util/csv.h"
#include "util/error.h"
#include "util/json.h"
#include "util/stopwatch.h"
#include "util/subsets.h"
#include "util/table.h"

namespace ru = redopt::util;

// ---------------------------------------------------------------- CSV

TEST(Csv, EscapePlainCellUnchanged) { EXPECT_EQ(ru::CsvWriter::escape("hello"), "hello"); }

TEST(Csv, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(ru::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(ru::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(ru::CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "redopt_csv_test.csv";
  {
    ru::CsvWriter w(path, {"x", "y"});
    w.write_row(std::vector<std::string>{"1", "2"});
    w.write_row(std::vector<double>{3.5, 4.25});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.25");
  std::remove(path.c_str());
}

TEST(Csv, RejectsArityMismatch) {
  const std::string path = testing::TempDir() + "redopt_csv_arity.csv";
  ru::CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.write_row(std::vector<std::string>{"only-one"}), redopt::PreconditionError);
  std::remove(path.c_str());
}

TEST(Csv, RejectsUnopenablePath) {
  EXPECT_THROW(ru::CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}), redopt::PreconditionError);
}

// ---------------------------------------------------------------- Table

TEST(Table, AlignsColumns) {
  ru::TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("longer-name  22"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, PadsShortRows) {
  ru::TablePrinter t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, NumFormatsSignificantDigits) {
  EXPECT_EQ(ru::TablePrinter::num(1.23456789, 3), "1.23");
  EXPECT_EQ(ru::TablePrinter::num(1000.0, 6), "1000");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(ru::TablePrinter({}), redopt::PreconditionError);
}

// ---------------------------------------------------------------- CLI

TEST(Cli, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--flag"};
  ru::Cli cli(5, argv, {"alpha", "beta", "flag"});
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
}

TEST(Cli, ReturnsDefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  ru::Cli cli(1, argv, {"alpha"});
  EXPECT_EQ(cli.get_int("alpha", 7), 7);
  EXPECT_EQ(cli.get_string("alpha", "d"), "d");
  EXPECT_FALSE(cli.get("alpha").has_value());
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(ru::Cli(2, argv, {"alpha"}), redopt::PreconditionError);
}

TEST(Cli, RejectsNonFlagToken) {
  const char* argv[] = {"prog", "bare"};
  EXPECT_THROW(ru::Cli(2, argv, {"alpha"}), redopt::PreconditionError);
}

TEST(Cli, ParseChoiceReturnsIndexInDeclarationOrder) {
  const std::vector<std::string> choices = {"star", "chain", "tree"};
  EXPECT_EQ(ru::parse_choice("topology", "star", choices), 0u);
  EXPECT_EQ(ru::parse_choice("topology", "chain", choices), 1u);
  EXPECT_EQ(ru::parse_choice("topology", "tree", choices), 2u);
}

TEST(Cli, ParseChoiceErrorNamesTheFlagAndListsEveryValue) {
  const std::vector<std::string> choices = {"inproc", "socket"};
  try {
    ru::parse_choice("backend", "carrier-pigeon", choices);
    FAIL() << "expected PreconditionError";
  } catch (const redopt::PreconditionError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown backend 'carrier-pigeon'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("inproc, socket"), std::string::npos) << msg;
  }
}

TEST(Cli, ParseChoiceIsCaseSensitiveAndWholeToken) {
  const std::vector<std::string> choices = {"star", "chain", "tree"};
  EXPECT_THROW(ru::parse_choice("topology", "Star", choices), redopt::PreconditionError);
  EXPECT_THROW(ru::parse_choice("topology", "st", choices), redopt::PreconditionError);
  EXPECT_THROW(ru::parse_choice("topology", "", choices), redopt::PreconditionError);
}

TEST(Cli, ParseChoiceRejectsEmptyChoiceList) {
  EXPECT_THROW(ru::parse_choice("thing", "x", {}), redopt::PreconditionError);
}

// ---------------------------------------------------------------- Config

TEST(Config, ParsesKeyValuePairs) {
  const auto config = ru::Config::parse(
      "# a comment\n"
      "alpha = 3\n"
      "\n"
      "  beta=4.5  \n"
      "name = hello world\n"
      "flag = yes\n");
  EXPECT_EQ(config.size(), 4u);
  EXPECT_EQ(config.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(config.get_double("beta", 0.0), 4.5);
  EXPECT_EQ(config.get_string("name", ""), "hello world");
  EXPECT_TRUE(config.get_bool("flag", false));
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_FALSE(config.get("missing").has_value());
}

TEST(Config, LaterAssignmentsOverride) {
  const auto config = ru::Config::parse("x = 1\nx = 2\n");
  EXPECT_EQ(config.get_int("x", 0), 2);
  EXPECT_EQ(config.size(), 1u);
}

TEST(Config, RejectsMalformedLines) {
  EXPECT_THROW(ru::Config::parse("no equals sign\n"), redopt::PreconditionError);
  EXPECT_THROW(ru::Config::parse("= value\n"), redopt::PreconditionError);
}

TEST(Config, LoadsFromFileAndRejectsMissing) {
  const std::string path = testing::TempDir() + "redopt_config_test.cfg";
  {
    std::ofstream out(path);
    out << "k = v\n";
  }
  EXPECT_EQ(ru::Config::load(path).get_string("k", ""), "v");
  std::remove(path.c_str());
  EXPECT_THROW(ru::Config::load("/nonexistent-dir-xyz/a.cfg"), redopt::PreconditionError);
}

// ---------------------------------------------------------------- JSON

TEST(Json, EscapePlainStringUnchanged) {
  EXPECT_EQ(ru::json_escape("hello world"), "hello world");
  EXPECT_EQ(ru::json_escape(""), "");
}

TEST(Json, EscapeQuotesAndBackslashes) {
  EXPECT_EQ(ru::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(ru::json_escape("a\\b"), "a\\\\b");
}

TEST(Json, EscapeShortFormControlCharacters) {
  EXPECT_EQ(ru::json_escape("a\nb\tc\rd\be\ff"), "a\\nb\\tc\\rd\\be\\ff");
}

TEST(Json, EscapeOtherControlCharactersAsUnicode) {
  // Control bytes with no short form must survive as \uXXXX — replacing
  // them with spaces would make two distinct inputs collide.
  EXPECT_EQ(ru::json_escape("a\x01z"), "a\\u0001z");
  EXPECT_EQ(ru::json_escape(std::string("x\x1f")), "x\\u001f");
  EXPECT_EQ(ru::json_escape(std::string("n\0l", 3)), "n\\u0000l");
  // 0x20 and above pass through.
  EXPECT_EQ(ru::json_escape("\x7f"), "\x7f");
}

TEST(Json, NumberIntegralValuesPrintWithoutExponent) {
  EXPECT_EQ(ru::json_number(0.0), "0");
  EXPECT_EQ(ru::json_number(3.0), "3");
  EXPECT_EQ(ru::json_number(-42.0), "-42");
  EXPECT_EQ(ru::json_number(123456789.0), "123456789");
}

TEST(Json, NumberFractionalValuesRoundTrip) {
  EXPECT_EQ(ru::json_number(0.5), "0.5");
  EXPECT_EQ(std::stod(ru::json_number(0.1)), 0.1);
  EXPECT_EQ(std::stod(ru::json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_EQ(std::stod(ru::json_number(1e300)), 1e300);
}

TEST(Json, NumberNonFiniteBecomesNull) {
  EXPECT_EQ(ru::json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(ru::json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(ru::json_number(-std::numeric_limits<double>::infinity()), "null");
}

// ---------------------------------------------------------------- Stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
  ru::Stopwatch watch;
  // Burn a little CPU deterministically.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
  EXPECT_GE(watch.elapsed_seconds(), 0.0);
  EXPECT_GE(watch.elapsed_ms(), 1000.0 * watch.elapsed_seconds() * 0.0);  // non-negative ms
  const double before_reset = watch.elapsed_seconds();
  watch.reset();
  EXPECT_LE(watch.elapsed_seconds(), before_reset + 1.0);
}

// ---------------------------------------------------------------- Subsets

TEST(Subsets, BinomialKnownValues) {
  EXPECT_EQ(ru::binomial(6, 0), 1u);
  EXPECT_EQ(ru::binomial(6, 1), 6u);
  EXPECT_EQ(ru::binomial(6, 3), 20u);
  EXPECT_EQ(ru::binomial(6, 6), 1u);
  EXPECT_EQ(ru::binomial(3, 5), 0u);
  EXPECT_EQ(ru::binomial(52, 5), 2598960u);
}

TEST(Subsets, EnumeratesAllUniqueSorted) {
  std::set<std::vector<std::size_t>> seen;
  ru::for_each_subset(6, 3, [&](const std::vector<std::size_t>& s) {
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(seen.insert(s).second) << "duplicate subset";
    return true;
  });
  EXPECT_EQ(seen.size(), ru::binomial(6, 3));
}

TEST(Subsets, EnumerationMatchesBinomialAcrossSizes) {
  for (std::size_t n = 0; n <= 8; ++n) {
    for (std::size_t k = 0; k <= n; ++k) {
      std::size_t count = 0;
      ru::for_each_subset(n, k, [&](const auto&) {
        ++count;
        return true;
      });
      EXPECT_EQ(count, ru::binomial(n, k)) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Subsets, EarlyStopReturnsFalse) {
  std::size_t count = 0;
  const bool completed = ru::for_each_subset(5, 2, [&](const auto&) { return ++count < 3; });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 3u);
}

TEST(Subsets, SubsetOfPoolPreservesElements) {
  const std::vector<std::size_t> pool = {10, 20, 30};
  std::vector<std::vector<std::size_t>> out;
  ru::for_each_subset_of(pool, 2, [&](const std::vector<std::size_t>& s) {
    out.push_back(s);
    return true;
  });
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (std::vector<std::size_t>{10, 20}));
  EXPECT_EQ(out[2], (std::vector<std::size_t>{20, 30}));
}

TEST(Subsets, ComplementIsSetComplement) {
  EXPECT_EQ(ru::complement(5, {1, 3}), (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(ru::complement(3, {}), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(ru::complement(3, {0, 1, 2}), (std::vector<std::size_t>{}));
}

TEST(Subsets, ZeroSizedSubsetInvokedOnce) {
  std::size_t count = 0;
  ru::for_each_subset(4, 0, [&](const std::vector<std::size_t>& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}
