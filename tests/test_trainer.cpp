// Integration tests for the in-process DGD trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "util/error.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Vector;

namespace {

dgd::TrainerConfig default_config(std::size_t n, std::size_t f, const std::string& filter,
                                  std::size_t iterations = 600) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  // Sum-scaled filters (cge, sum) aggregate ~n gradients, so they take a
  // smaller coefficient than average-scaled filters (cwtm, mean, ...).
  const double coeff = (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = iterations;
  return cfg;
}

}  // namespace

TEST(Trainer, FaultFreeConvergesToHonestMinimum) {
  rng::Rng rng(1);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto cfg = default_config(6, 1, "cge", 2000);
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  EXPECT_LT(result.final_distance, 1e-3);
  EXPECT_LT(result.final_loss, 1e-5);
}

TEST(Trainer, HonestIdsComplement) {
  EXPECT_EQ(dgd::honest_ids(5, {1, 3}), (std::vector<std::size_t>{0, 2, 4}));
  EXPECT_EQ(dgd::honest_ids(3, {}), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_THROW(dgd::honest_ids(3, {5}), redopt::PreconditionError);
  EXPECT_THROW(dgd::honest_ids(3, {1, 1}), redopt::PreconditionError);
}

TEST(Trainer, CgeSurvivesGradientReverse) {
  rng::Rng rng(2);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  const auto result =
      dgd::train(inst.problem, {0}, attack.get(), default_config(6, 1, "cge", 2000), x_h);
  // Exact 2f-redundancy (noiseless): CGE converges to x_H itself.
  EXPECT_LT(result.final_distance, 1e-2);
}

TEST(Trainer, CwtmSurvivesGradientReverse) {
  rng::Rng rng(3);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  const auto result =
      dgd::train(inst.problem, {0}, attack.get(), default_config(6, 1, "cwtm", 3000), x_h);
  EXPECT_LT(result.final_distance, 5e-3);
}

TEST(Trainer, PlainMeanFailsUnderLargeNormAttack) {
  rng::Rng rng(4);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("large_norm");
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  const auto no_filter = dgd::train(inst.problem, {0}, attack.get(),
                                    default_config(6, 1, "mean", 600), x_h);
  const auto with_cge = dgd::train(inst.problem, {0}, attack.get(),
                                   default_config(6, 1, "cge", 600), x_h);
  // The robust filter must beat the non-robust one by a wide margin.
  EXPECT_GT(no_filter.final_distance, 10.0 * with_cge.final_distance);
  EXPECT_GT(no_filter.final_distance, 0.5);  // mean is dragged away
}

TEST(Trainer, TraceRecordsRequestedIterations) {
  rng::Rng rng(5);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = default_config(6, 1, "cge", 100);
  cfg.trace_stride = 10;
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg, Vector{1.0, 1.0});
  ASSERT_EQ(result.trace.iteration.size(), 11u);  // 0, 10, ..., 100
  EXPECT_EQ(result.trace.iteration.front(), 0u);
  EXPECT_EQ(result.trace.iteration.back(), 100u);
  EXPECT_EQ(result.trace.loss.size(), result.trace.iteration.size());
  EXPECT_EQ(result.trace.estimates.size(), result.trace.iteration.size());
  // Loss trace should (weakly) decrease overall in the fault-free run.
  EXPECT_LT(result.trace.loss.back(), result.trace.loss.front());
}

TEST(Trainer, NoTraceWhenStrideZero) {
  rng::Rng rng(6);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = default_config(6, 1, "cge", 50);
  cfg.trace_stride = 0;
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg);
  EXPECT_TRUE(result.trace.iteration.empty());
  EXPECT_TRUE(std::isnan(result.final_distance));  // no reference given
}

TEST(Trainer, GoldenExecutionIsStableAcrossBuilds) {
  // Pins one canonical randomized execution (generator draws, attack
  // noise, full DGD pipeline) to golden values: any unintended change to
  // the RNG streams, sampling order, or update arithmetic shows up here.
  rng::Rng rng(2024);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  // Golden observation vector (generator determinism).
  EXPECT_NEAR(inst.b[0], 1.0157554099749166, 1e-14);
  EXPECT_NEAR(inst.b[3], 0.97076969348082687, 1e-14);
  EXPECT_NEAR(inst.b[5], -0.37850691064372677, 1e-14);

  const auto attack = attacks::make_attack("random");
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cwtm", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(2.0);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 100;
  cfg.seed = 99;
  cfg.trace_stride = 0;
  const auto result = dgd::train(inst.problem, {5}, attack.get(), cfg);
  EXPECT_NEAR(result.estimate[0], 0.99965774433927335, 1e-13);
  EXPECT_NEAR(result.estimate[1], 0.98201807307075828, 1e-13);
}

TEST(Trainer, DeterministicAcrossRuns) {
  rng::Rng rng(7);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("random");
  const auto cfg = default_config(6, 1, "cwtm", 200);
  const auto r1 = dgd::train(inst.problem, {2}, attack.get(), cfg);
  const auto r2 = dgd::train(inst.problem, {2}, attack.get(), cfg);
  EXPECT_EQ(r1.estimate, r2.estimate);
}

TEST(Trainer, SeedChangesRandomAttackTrajectory) {
  rng::Rng rng(8);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.01, 1, rng);
  const auto attack = attacks::make_attack("random");
  auto cfg1 = default_config(6, 1, "cwtm", 50);
  auto cfg2 = cfg1;
  cfg2.seed = 999;
  const auto r1 = dgd::train(inst.problem, {2}, attack.get(), cfg1);
  const auto r2 = dgd::train(inst.problem, {2}, attack.get(), cfg2);
  EXPECT_NE(r1.estimate, r2.estimate);
}

TEST(Trainer, EstimatesStayInProjectionSet) {
  rng::Rng rng(9);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto attack = attacks::make_attack("large_norm");
  auto cfg = default_config(6, 1, "mean", 100);  // no robustness: big kicks
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 2.0));
  const auto result = dgd::train(inst.problem, {0}, attack.get(), cfg);
  for (const auto& x : result.trace.estimates) {
    EXPECT_TRUE(cfg.projection->contains(x, 1e-9));
  }
}

TEST(Trainer, CustomInitialPoint) {
  rng::Rng rng(10);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = default_config(6, 1, "cge", 0);  // zero iterations: output = x0
  cfg.x0 = Vector{-0.0085, -0.5643};          // the paper's initial estimate
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg);
  EXPECT_EQ(result.estimate, cfg.x0);
}

TEST(OnlineTrainer, StepwiseMatchesBatchTrain) {
  // N calls of OnlineTrainer::step() must be bit-identical to
  // dgd::train(iterations = N) — train() is built on the class.
  rng::Rng rng(21);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const auto attack = attacks::make_attack("random");
  const auto cfg = default_config(6, 1, "cwtm", 120);

  dgd::OnlineTrainer online(inst.problem, {3}, attack.get(), cfg);
  online.run(120);
  const auto batch = dgd::train(inst.problem, {3}, attack.get(), cfg);
  EXPECT_EQ(online.estimate(), batch.estimate);
  EXPECT_EQ(online.iteration(), 120u);
  EXPECT_DOUBLE_EQ(online.honest_loss(), batch.final_loss);
}

TEST(OnlineTrainer, StepReturnsAppliedDirection) {
  rng::Rng rng(22);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = default_config(6, 1, "cge", 1);
  dgd::OnlineTrainer online(inst.problem, {}, nullptr, cfg);
  const Vector before = online.estimate();
  const Vector direction = online.step();
  // Without projection clamping (interior point), x1 = x0 - eta0 * dir.
  const Vector expected = before - direction * cfg.schedule->step(0);
  EXPECT_NEAR(linalg::distance(online.estimate(), expected), 0.0, 1e-12);
}

TEST(OnlineTrainer, SupportsAdaptiveStopping) {
  // The step-wise API exists so callers can stop on their own criteria.
  rng::Rng rng(23);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  dgd::OnlineTrainer online(inst.problem, {}, nullptr, default_config(6, 1, "cge", 0));
  std::size_t steps = 0;
  while (online.honest_loss() > 1e-8 && steps < 5000) {
    online.step();
    ++steps;
  }
  EXPECT_LT(online.honest_loss(), 1e-8);
  EXPECT_LT(steps, 5000u);
  EXPECT_EQ(online.iteration(), steps);
}

TEST(Trainer, ValidatesConfiguration) {
  rng::Rng rng(11);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  auto cfg = default_config(6, 1, "cge", 10);
  const auto attack = attacks::make_attack("zero");

  auto broken = cfg;
  broken.filter = nullptr;
  EXPECT_THROW(dgd::train(inst.problem, {}, nullptr, broken), redopt::PreconditionError);

  broken = cfg;
  broken.schedule = nullptr;
  EXPECT_THROW(dgd::train(inst.problem, {}, nullptr, broken), redopt::PreconditionError);

  // Too many byzantine agents for the fault budget f = 1.
  EXPECT_THROW(dgd::train(inst.problem, {0, 1}, attack.get(), cfg), redopt::PreconditionError);
  // Byzantine agents without an attack.
  EXPECT_THROW(dgd::train(inst.problem, {0}, nullptr, cfg), redopt::PreconditionError);
  // Filter sized for the wrong n.
  filters::FilterParams fp;
  fp.n = 7;
  fp.f = 1;
  broken = cfg;
  broken.filter = filters::make_filter("cge", fp);
  EXPECT_THROW(dgd::train(inst.problem, {}, nullptr, broken), redopt::PreconditionError);
  // Wrong-dimension x0 and reference.
  broken = cfg;
  broken.x0 = Vector{1.0};
  EXPECT_THROW(dgd::train(inst.problem, {}, nullptr, broken), redopt::PreconditionError);
  EXPECT_THROW(dgd::train(inst.problem, {}, nullptr, cfg, Vector{1.0}),
               redopt::PreconditionError);
}

TEST(Trainer, DropoutAgentIsEliminated) {
  rng::Rng rng(13);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto honest = dgd::honest_ids(6, {4});
  const Vector x_h = data::regression_argmin(inst, honest);

  attacks::AttackParams params;
  params.drop_after = 50;  // behaves honestly, then goes silent
  const auto attack = attacks::make_attack("dropout", params);

  auto cfg = default_config(6, 1, "cge", 2000);
  cfg.filter_factory = [](std::size_t n, std::size_t f) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    return filters::FilterPtr(filters::make_filter("cge", fp));
  };
  const auto result = dgd::train(inst.problem, {4}, attack.get(), cfg, x_h);
  EXPECT_EQ(result.eliminated_agents, (std::vector<std::size_t>{4}));
  // After elimination the run is fault-free over the honest agents.
  EXPECT_LT(result.final_distance, 1e-2);
}

TEST(Trainer, DropoutWithoutFactoryThrows) {
  rng::Rng rng(14);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  attacks::AttackParams params;
  params.drop_after = 0;  // never responds
  const auto attack = attacks::make_attack("dropout", params);
  const auto cfg = default_config(6, 1, "cge", 10);  // no filter_factory
  EXPECT_THROW(dgd::train(inst.problem, {2}, attack.get(), cfg), redopt::PreconditionError);
}

TEST(Trainer, ImmediateDropoutBecomesFaultFreeRun) {
  rng::Rng rng(15);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto honest = dgd::honest_ids(6, {0});
  const Vector x_h = data::regression_argmin(inst, honest);
  attacks::AttackParams params;
  params.drop_after = 0;
  const auto attack = attacks::make_attack("dropout", params);
  auto cfg = default_config(6, 1, "cge", 2000);
  cfg.filter_factory = [](std::size_t n, std::size_t f) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    return filters::FilterPtr(filters::make_filter("cge", fp));
  };
  const auto result = dgd::train(inst.problem, {0}, attack.get(), cfg, x_h);
  EXPECT_EQ(result.eliminated_agents.size(), 1u);
  EXPECT_LT(result.final_distance, 1e-3);  // exactly the fault-free dynamics
}

TEST(Trainer, FewerActualFaultsThanBudgetIsAllowed) {
  // The fault budget is an upper bound; executions may have 0..f faults.
  rng::Rng rng(12);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const auto result = dgd::train(inst.problem, {}, nullptr, default_config(6, 1, "cge", 100));
  EXPECT_EQ(result.estimate.size(), 2u);
}
