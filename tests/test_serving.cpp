// Behavioral tests for the serving subsystem: job specs, checkpoints,
// the resumable slice runner, the scheduler's admission control and
// fairness, cross-job gradient stacking, and the daemon's wire protocol
// end to end over a real Unix-domain socket.
//
// The load-bearing claims are all byte-equality claims, asserted as
// such: a checkpoint round-trips through JSON bit-exactly, a job sliced
// 1 round at a time (with a serialize/reload between every slice — a
// simulated crash at every boundary) ends in the same bytes as an
// uninterrupted run, a fault-free serving trajectory equals the chaos
// executor's, and the cross-job stacked evaluator equals the virtual
// cost path down to the final manifest.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "chaos/executor.h"
#include "chaos/scenario.h"
#include "core/batch_gradient.h"
#include "linalg/vector.h"
#include "runtime/runtime.h"
#include "serving/checkpoint.h"
#include "serving/client.h"
#include "serving/daemon.h"
#include "serving/job.h"
#include "serving/runner.h"
#include "serving/scheduler.h"
#include "telemetry/events.h"
#include "telemetry/metrics.h"
#include "telemetry/ship.h"
#include "util/error.h"
#include "util/json.h"

using namespace redopt;
using linalg::Vector;

namespace {

namespace fs = std::filesystem;

/// A scenario that exercises every runner path: Byzantine window with an
/// rng-consuming attack, a crash window, a straggler, and a lossy
/// delaying/duplicating channel.
chaos::Scenario faulty_scenario(std::uint64_t seed) {
  chaos::Scenario s;
  s.name = "serving-faulty";
  s.seed = seed;
  s.problem = "regression";
  s.filter = "cge";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.rounds = 40;
  chaos::FaultSpec byz;
  byz.kind = chaos::FaultSpec::Kind::kByzantine;
  byz.agent = 1;
  byz.from = 5;
  byz.until = 0;
  byz.attack = "random";
  byz.attack_param = 50.0;
  chaos::FaultSpec crash;
  crash.kind = chaos::FaultSpec::Kind::kCrash;
  crash.agent = 3;
  crash.from = 10;
  crash.until = 20;
  chaos::FaultSpec straggler;
  straggler.kind = chaos::FaultSpec::Kind::kStraggler;
  straggler.agent = 5;
  straggler.from = 2;
  straggler.until = 0;
  straggler.staleness = 3;
  s.faults = {byz, crash, straggler};
  s.channel.drop_probability = 0.1;
  s.channel.duplicate_probability = 0.1;
  s.channel.max_delay = 2;
  s.validate();
  return s;
}

/// No faults, no channel randomness: the serving runner must match
/// chaos::run_scenario bit for bit on these.
chaos::Scenario clean_scenario(std::uint64_t seed) {
  chaos::Scenario s;
  s.name = "serving-clean";
  s.seed = seed;
  s.problem = "regression";
  s.filter = "cge";
  s.n = 8;
  s.f = 2;
  s.d = 2;
  s.rounds = 30;
  s.validate();
  return s;
}

serving::JobSpec make_job(const std::string& id, const chaos::Scenario& scenario) {
  serving::JobSpec spec;
  spec.job_id = id;
  spec.scenario = scenario;
  return spec;
}

/// Runs a job to completion in `slice` -round slices, optionally
/// serializing + reloading the checkpoint between every slice (a
/// simulated crash at each boundary).
serving::JobCheckpoint run_sliced(const serving::JobSpec& spec,
                                  const chaos::MaterializedScenario& built, std::size_t slice,
                                  bool reload_between_slices) {
  serving::JobCheckpoint ck = serving::make_initial_checkpoint(spec, built);
  serving::SliceContext ctx;
  ctx.built = &built;
  while (!ck.finished()) {
    serving::run_job_slice(ck, slice, ctx);
    if (reload_between_slices) ck = serving::checkpoint_from_json(ck.to_json());
  }
  return ck;
}

void expect_bytes_equal(const Vector& a, const Vector& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i];
    const double xb = b[i];
    ASSERT_EQ(std::memcmp(&xa, &xb, sizeof(double)), 0) << "coordinate " << i;
  }
}

std::string temp_dir(const std::string& tag) {
  return (fs::temp_directory_path() / ("redopt_serving_" + tag)).string();
}

}  // namespace

TEST(JobSpec, RoundTripsThroughJsonBitExactly) {
  const serving::JobSpec spec = make_job("exp-01.a", faulty_scenario(7));
  const std::string json = spec.to_json();
  const serving::JobSpec back = serving::job_spec_from_json(json);
  EXPECT_EQ(back.job_id, "exp-01.a");
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.scenario.to_json(), spec.scenario.to_json());
}

TEST(JobSpec, RejectsIdsThatCannotNameStateFiles) {
  for (const std::string bad :
       {std::string(""), std::string("has space"), std::string("a/b"), std::string(".hidden"),
        std::string(101, 'x')}) {
    serving::JobSpec spec = make_job(bad, clean_scenario(1));
    EXPECT_THROW(spec.validate(), PreconditionError) << "id: '" << bad << "'";
  }
  serving::JobSpec ok = make_job("A-z.0_9", clean_scenario(1));
  EXPECT_NO_THROW(ok.validate());
}

TEST(JobSpec, RejectsElasticScenarios) {
  chaos::Scenario s = clean_scenario(1);
  chaos::MembershipEvent leave;
  leave.kind = chaos::MembershipEvent::Kind::kLeave;
  leave.agent = 7;
  leave.round = 3;
  s.membership = {leave};
  s.validate();  // valid as a scenario —
  serving::JobSpec spec = make_job("churny", s);
  EXPECT_THROW(spec.validate(), PreconditionError);  // — but not as a serving job
}

TEST(JobSpec, ParserRejectsUnknownMembers) {
  const std::string json = make_job("a", clean_scenario(1)).to_json();
  const std::string extra = "{\"extra\":1," + json.substr(1);
  EXPECT_THROW(serving::job_spec_from_json(extra), PreconditionError);
}

TEST(Checkpoint, RoundTripsThroughJsonBitExactly) {
  const serving::JobSpec spec = make_job("ck", faulty_scenario(11));
  const chaos::MaterializedScenario built = chaos::materialize_scenario(spec.scenario);
  serving::JobCheckpoint ck = serving::make_initial_checkpoint(spec, built);
  serving::SliceContext ctx;
  ctx.built = &built;
  serving::run_job_slice(ck, 17, ctx);  // mid-flight: history + pending populated
  ASSERT_FALSE(ck.finished());

  const std::string json = ck.to_json();
  const serving::JobCheckpoint back = serving::checkpoint_from_json(json);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.next_round, ck.next_round);
  EXPECT_EQ(back.counters, ck.counters);
  EXPECT_EQ(back.pending.size(), ck.pending.size());
  expect_bytes_equal(back.x, ck.x);
}

TEST(Checkpoint, ParserRejectsHostileDocuments) {
  const serving::JobSpec spec = make_job("ck", faulty_scenario(11));
  const chaos::MaterializedScenario built = chaos::materialize_scenario(spec.scenario);
  serving::JobCheckpoint ck = serving::make_initial_checkpoint(spec, built);
  serving::SliceContext ctx;
  ctx.built = &built;
  serving::run_job_slice(ck, 9, ctx);
  const std::string json = ck.to_json();

  // Unknown member.
  EXPECT_THROW(serving::checkpoint_from_json("{\"bogus\":1," + json.substr(1)),
               PreconditionError);
  // Truncated document.
  EXPECT_THROW(serving::checkpoint_from_json(json.substr(0, json.size() - 2)),
               PreconditionError);
  // Round index beyond the scenario's schedule.
  const std::string marker = "\"next_round\":" + std::to_string(ck.next_round);
  const auto at = json.find(marker);
  ASSERT_NE(at, std::string::npos);
  const std::string beyond = json.substr(0, at) + "\"next_round\":" +
                             std::to_string(spec.scenario.rounds + 5) +
                             json.substr(at + marker.size());
  EXPECT_THROW(serving::checkpoint_from_json(beyond), PreconditionError);
  // Empty document / non-object.
  EXPECT_THROW(serving::checkpoint_from_json(""), PreconditionError);
  EXPECT_THROW(serving::checkpoint_from_json("[1,2]"), PreconditionError);
}

TEST(Runner, SliceSizeAndReloadBoundariesDoNotChangeTheTrajectory) {
  const serving::JobSpec spec = make_job("slices", faulty_scenario(13));
  const chaos::MaterializedScenario built = chaos::materialize_scenario(spec.scenario);

  const serving::JobCheckpoint whole = run_sliced(spec, built, spec.scenario.rounds, false);
  const serving::JobCheckpoint by_one = run_sliced(spec, built, 1, true);
  const serving::JobCheckpoint by_seven = run_sliced(spec, built, 7, true);

  ASSERT_TRUE(whole.finished());
  // A crash (serialize + reload) at every single round boundary, and a
  // different slice partition, both end in the same bytes.
  EXPECT_EQ(by_one.to_json(), whole.to_json());
  EXPECT_EQ(by_seven.to_json(), whole.to_json());
  // The run exercised what it claims: faults and channel noise fired.
  EXPECT_GT(whole.counters.byzantine_replies, 0u);
  EXPECT_GT(whole.counters.crashed_absences, 0u);
  EXPECT_GT(whole.counters.stale_replies, 0u);
  EXPECT_GT(whole.counters.dropped_replies + whole.counters.delayed_replies +
                whole.counters.duplicated_replies,
            0u);
}

TEST(Runner, FaultFreeTrajectoryMatchesTheChaosExecutorBitForBit) {
  const chaos::Scenario scenario = clean_scenario(17);
  const chaos::ScenarioResult oracle = chaos::run_scenario(scenario);

  const serving::JobSpec spec = make_job("oracle", scenario);
  const chaos::MaterializedScenario built = chaos::materialize_scenario(scenario);
  const serving::JobCheckpoint ck = run_sliced(spec, built, 5, true);

  expect_bytes_equal(ck.x, oracle.estimate);
  const double a = ck.initial_distance;
  const double b = oracle.initial_distance;
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
  const double ma = ck.max_distance;
  const double mb = oracle.max_distance;
  EXPECT_EQ(std::memcmp(&ma, &mb, sizeof(double)), 0);
}

TEST(Runner, ManifestIsStableAcrossThreadCountsAndWallClock) {
  const serving::JobSpec spec = make_job("threads", faulty_scenario(19));
  const chaos::MaterializedScenario built = chaos::materialize_scenario(spec.scenario);

  const std::size_t before = runtime::threads();
  runtime::set_threads(1);
  const serving::JobCheckpoint one = run_sliced(spec, built, 6, false);
  runtime::set_threads(4);
  const serving::JobCheckpoint four = run_sliced(spec, built, 6, false);
  runtime::set_threads(before);

  const std::string stable_one =
      telemetry::stable_json_projection(serving::job_manifest_json(one, built, 0.25));
  const std::string stable_four =
      telemetry::stable_json_projection(serving::job_manifest_json(four, built, 99.0));
  // Different thread counts AND different wall-clock readings: the
  // stable projection strips the latter, the runtime contract kills the
  // former, so the manifests agree byte for byte.
  EXPECT_EQ(stable_one, stable_four);
}

TEST(BatchGradient, GroupedEvaluationMatchesPerGroupAndVirtualPaths) {
  const chaos::MaterializedScenario a = chaos::materialize_scenario(clean_scenario(23));
  const chaos::MaterializedScenario b = chaos::materialize_scenario(clean_scenario(29));
  const std::vector<std::vector<core::CostPtr>> groups = {a.problem.costs, b.problem.costs};

  auto grouped = core::BatchGradientEvaluator::try_create_grouped(groups);
  ASSERT_NE(grouped, nullptr);
  ASSERT_EQ(grouped->num_groups(), 2u);
  ASSERT_EQ(grouped->group_agents(0), a.problem.costs.size());
  ASSERT_EQ(grouped->group_offset(1), a.problem.costs.size());

  // Two distinct iterates, one per group.
  Vector xa(2), xb(2);
  xa[0] = 0.75;
  xa[1] = -2.5;
  xb[0] = -1.125;
  xb[1] = 3.0;

  std::vector<std::vector<Vector>> stacked;
  grouped->evaluate_groups({xa, xb}, stacked);
  ASSERT_EQ(stacked.size(), 2u);

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Vector& x = g == 0 ? xa : xb;
    auto single = core::BatchGradientEvaluator::try_create(groups[g]);
    ASSERT_NE(single, nullptr);
    std::vector<Vector> per_group;
    single->evaluate_all(x, per_group);
    ASSERT_EQ(stacked[g].size(), per_group.size());
    for (std::size_t i = 0; i < per_group.size(); ++i) {
      expect_bytes_equal(stacked[g][i], per_group[i]);
      expect_bytes_equal(stacked[g][i], groups[g][i]->gradient(x));
      // The per-agent path at the global index agrees too.
      Vector ws, out;
      grouped->evaluate_agent(grouped->group_offset(g) + i, x, ws, out);
      expect_bytes_equal(stacked[g][i], out);
    }
  }
}

TEST(Scheduler, CrossJobStackingIsBitIdenticalToTheVirtualPath) {
  telemetry::registry().reset();
  // Two concurrent least-squares jobs stack into one grouped evaluator;
  // their manifests must match jobs run alone through the virtual path.
  serving::SchedulerOptions options;
  options.slice_rounds = 7;
  serving::Scheduler scheduler(options);
  const serving::JobSpec job_a = make_job("stack-a", faulty_scenario(31));
  const serving::JobSpec job_b = make_job("stack-b", faulty_scenario(37));
  ASSERT_EQ(scheduler.submit(job_a), "");
  ASSERT_EQ(scheduler.submit(job_b), "");
  ASSERT_NE(scheduler.group_evaluator(), nullptr);
  ASSERT_EQ(scheduler.group_evaluator()->num_groups(), 2u);

  while (!scheduler.idle()) scheduler.step(nullptr);

  for (const serving::JobSpec& spec : {job_a, job_b}) {
    const serving::JobCheckpoint* stacked = scheduler.finished_checkpoint(spec.job_id);
    ASSERT_NE(stacked, nullptr);
    // Same job, alone, virtual cost path, different slice partition.
    const chaos::MaterializedScenario built = chaos::materialize_scenario(spec.scenario);
    const serving::JobCheckpoint alone = run_sliced(spec, built, 11, true);
    EXPECT_EQ(stacked->to_json(), alone.to_json()) << spec.job_id;
  }
}

TEST(Scheduler, AdmissionControlRejectsWithExactReasons) {
  telemetry::registry().reset();
  serving::SchedulerOptions options;
  options.max_jobs = 1;
  options.max_rounds_per_job = 50;
  options.max_dimension = 4;
  serving::Scheduler scheduler(options);

  ASSERT_EQ(scheduler.submit(make_job("only", clean_scenario(1))), "");
  EXPECT_EQ(scheduler.submit(make_job("only", clean_scenario(2))),
            "job id already known: only");
  EXPECT_EQ(scheduler.submit(make_job("late", clean_scenario(2))),
            "admission: job table full (1 live jobs)");

  serving::Scheduler roomy({/*max_jobs=*/8, /*max_rounds_per_job=*/50, /*max_dimension=*/4,
                            /*slice_rounds=*/16});
  chaos::Scenario long_run = clean_scenario(3);
  long_run.rounds = 51;
  EXPECT_EQ(roomy.submit(make_job("long", long_run)),
            "admission: rounds 51 exceed the per-job budget 50");
  chaos::Scenario wide = clean_scenario(4);
  wide.d = 5;
  wide.n = 12;  // keep n - 2f >= d
  EXPECT_EQ(roomy.submit(make_job("wide", wide)),
            "admission: dimension 5 exceeds the cap 4");
  // Rejected jobs never enter the table.
  EXPECT_FALSE(roomy.status("long").has_value());
  EXPECT_FALSE(roomy.status("wide").has_value());
  EXPECT_EQ(telemetry::registry().counter("serving.jobs_rejected").value(), 4u);
  EXPECT_EQ(telemetry::registry().counter("serving.jobs_admitted").value(), 1u);
}

TEST(Scheduler, RoundRobinSharesSlicesFairly) {
  serving::SchedulerOptions options;
  options.slice_rounds = 4;
  serving::Scheduler scheduler(options);
  chaos::Scenario ten = clean_scenario(5);
  ten.rounds = 10;
  ASSERT_EQ(scheduler.submit(make_job("a", ten)), "");
  ASSERT_EQ(scheduler.submit(make_job("b", ten)), "");

  // 10 rounds at 4 per slice = 3 slices each, strictly alternating.
  std::vector<std::string> order;
  for (int i = 0; i < 6; ++i) order.push_back(scheduler.step(nullptr));
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.step(nullptr), "");
  EXPECT_EQ(scheduler.live_jobs(), 0u);
  for (const serving::JobStatus& status : scheduler.list()) {
    EXPECT_EQ(status.state, serving::JobState::kDone);
    EXPECT_EQ(status.rounds_done, 10u);
  }
}

TEST(Daemon, ServesTheFullJobLifecycleOverTheSocket) {
  const std::string root = temp_dir("daemon");
  fs::remove_all(root);
  fs::create_directories(root);
  serving::DaemonOptions options;
  options.socket_path = root + "/d.sock";
  options.state_dir = root + "/state";
  options.scheduler.slice_rounds = 8;

  serving::Daemon daemon(options);
  EXPECT_EQ(daemon.recover(), 0u);
  std::thread server([&daemon] { daemon.serve(); });

  serving::Client client(options.socket_path);
  const serving::JobSpec spec = make_job("wire", faulty_scenario(41));
  const util::JsonValue accepted = util::json_parse(client.submit(spec));
  ASSERT_TRUE(accepted.at("ok").as_bool());
  EXPECT_EQ(accepted.at("state").as_string(), "queued");
  // Resubmission of a live id is rejected over the wire, too.
  const util::JsonValue dup = util::json_parse(client.submit(spec));
  EXPECT_FALSE(dup.at("ok").as_bool());

  std::string state;
  for (int i = 0; i < 2000 && state != "done"; ++i) {
    state = util::json_parse(client.status("wire")).at("state").as_string();
  }
  ASSERT_EQ(state, "done");

  const util::JsonValue result = util::json_parse(client.result("wire"));
  ASSERT_TRUE(result.at("ok").as_bool());
  const util::JsonValue& manifest = result.at("manifest");
  EXPECT_EQ(manifest.at("job").as_string(), "wire");
  EXPECT_EQ(manifest.at("rounds").as_int(0, 1000000), 40);
  EXPECT_NE(manifest.find("result"), nullptr);
  EXPECT_NE(manifest.find("telemetry"), nullptr);

  const util::JsonValue unknown = util::json_parse(client.status("nope"));
  EXPECT_FALSE(unknown.at("ok").as_bool());

  client.shutdown_daemon();
  server.join();
  EXPECT_TRUE(daemon.shutdown_requested());
  // The finished job left a manifest and no checkpoint behind.
  EXPECT_TRUE(fs::exists(options.state_dir + "/wire.manifest.json"));
  EXPECT_FALSE(fs::exists(options.state_dir + "/wire.ckpt.json"));
  fs::remove_all(root);
}

TEST(Daemon, KillAndResumeProducesByteIdenticalManifests) {
  const std::string root = temp_dir("resume");
  fs::remove_all(root);
  fs::create_directories(root);
  const serving::JobSpec spec = make_job("revive", faulty_scenario(43));

  // Reference: one daemon instance runs the job to completion.
  std::string reference;
  {
    serving::DaemonOptions options;
    options.socket_path = root + "/ref.sock";
    options.state_dir = root + "/ref";
    options.scheduler.slice_rounds = 8;
    serving::Daemon daemon(options);
    util::json_parse(daemon.handle_request("{\"op\":\"submit\",\"job\":" + spec.to_json() + "}"));
    while (!daemon.scheduler().idle()) daemon.poll_once();
    std::ifstream in(options.state_dir + "/revive.manifest.json", std::ios::binary);
    reference.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    ASSERT_FALSE(reference.empty());
  }

  // Crash: a daemon dies (destructor — the persisted checkpoint is all
  // that survives) after a few slices; a fresh instance over the same
  // state dir adopts the checkpoint and finishes the job.
  {
    serving::DaemonOptions options;
    options.socket_path = root + "/cr.sock";
    options.state_dir = root + "/cr";
    options.scheduler.slice_rounds = 8;
    {
      serving::Daemon daemon(options);
      util::json_parse(
          daemon.handle_request("{\"op\":\"submit\",\"job\":" + spec.to_json() + "}"));
      daemon.poll_once();
      daemon.poll_once();  // a couple of slices, then "crash"
    }
    ASSERT_TRUE(fs::exists(options.state_dir + "/revive.ckpt.json"));
    serving::Daemon revived(options);
    EXPECT_EQ(revived.recover(), 1u);
    // recover() must resume mid-job, not restart: the adopted
    // checkpoint carries the progress already made.
    ASSERT_GT(revived.scheduler().checkpoint("revive")->next_round, 0u);
    while (!revived.scheduler().idle()) revived.poll_once();
  }
  std::ifstream in(root + "/cr/revive.manifest.json", std::ios::binary);
  const std::string resumed((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(resumed, reference);
  EXPECT_FALSE(fs::exists(root + "/cr/revive.ckpt.json"));
  fs::remove_all(root);
}

TEST(Daemon, HandleRequestTurnsEveryFailureIntoAStructuredError) {
  const std::string root = temp_dir("errors");
  fs::remove_all(root);
  fs::create_directories(root);
  serving::DaemonOptions options;
  options.socket_path = root + "/e.sock";
  options.state_dir = root + "/state";
  serving::Daemon daemon(options);

  for (const std::string request :
       {std::string("{\"op\":\"nope\"}"), std::string("not json at all"),
        std::string("{\"op\":\"status\",\"job\":\"ghost\"}"),
        std::string("{\"op\":\"result\",\"job\":\"ghost\"}"),
        std::string("{\"op\":\"submit\",\"job\":{\"job\":\"x\"}}")}) {
    const util::JsonValue response = util::json_parse(daemon.handle_request(request));
    EXPECT_FALSE(response.at("ok").as_bool()) << request;
    EXPECT_NE(response.find("error"), nullptr) << request;
  }
  fs::remove_all(root);
}
