// Unit tests for linalg::Vector.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "linalg/vector.h"
#include "util/error.h"

using redopt::linalg::Vector;
namespace rl = redopt::linalg;

TEST(Vector, ConstructionVariants) {
  EXPECT_TRUE(Vector().empty());
  EXPECT_EQ(Vector(3).size(), 3u);
  EXPECT_DOUBLE_EQ(Vector(3)[1], 0.0);
  EXPECT_DOUBLE_EQ(Vector(2, 1.5)[0], 1.5);
  const Vector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
  EXPECT_EQ(Vector(std::vector<double>{4.0, 5.0}).size(), 2u);
}

TEST(Vector, BoundsCheckedAccess) {
  Vector v{1.0};
  EXPECT_DOUBLE_EQ(v.at(0), 1.0);
  EXPECT_THROW(v.at(1), redopt::PreconditionError);
  const Vector& cv = v;
  EXPECT_THROW(cv.at(5), redopt::PreconditionError);
}

TEST(Vector, Arithmetic) {
  const Vector a{1.0, 2.0};
  const Vector b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vector{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vector{-2.0, 3.0}));
  EXPECT_EQ(-a, (Vector{-1.0, -2.0}));
  EXPECT_EQ(a * 2.0, (Vector{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vector{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vector{0.5, 1.0}));
}

TEST(Vector, InPlaceArithmetic) {
  Vector v{1.0, 1.0};
  v += Vector{1.0, 2.0};
  EXPECT_EQ(v, (Vector{2.0, 3.0}));
  v -= Vector{1.0, 1.0};
  EXPECT_EQ(v, (Vector{1.0, 2.0}));
  v *= 3.0;
  EXPECT_EQ(v, (Vector{3.0, 6.0}));
  v /= 3.0;
  EXPECT_EQ(v, (Vector{1.0, 2.0}));
}

TEST(Vector, DimensionMismatchThrows) {
  Vector a{1.0, 2.0};
  const Vector b{1.0};
  EXPECT_THROW(a += b, redopt::PreconditionError);
  EXPECT_THROW(a -= b, redopt::PreconditionError);
  EXPECT_THROW(rl::dot(a, b), redopt::PreconditionError);
  EXPECT_THROW(rl::distance(a, b), redopt::PreconditionError);
}

TEST(Vector, DivisionByZeroThrows) {
  Vector v{1.0};
  EXPECT_THROW(v /= 0.0, redopt::PreconditionError);
}

TEST(Vector, Norms) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm_squared(), 25.0);
  EXPECT_DOUBLE_EQ(v.norm_l1(), 7.0);
  EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
}

TEST(Vector, DotAndDistance) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(rl::dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(rl::distance(Vector{0.0, 0.0}, Vector{3.0, 4.0}), 5.0);
}

TEST(Vector, CauchySchwarzHolds) {
  // Property: |<a,b>| <= ||a|| ||b|| for arbitrary vectors.
  const Vector a{0.3, -1.7, 2.2, 0.0};
  const Vector b{-5.0, 0.1, 0.4, 9.9};
  EXPECT_LE(std::abs(rl::dot(a, b)), a.norm() * b.norm() + 1e-12);
}

TEST(Vector, CwiseMinMax) {
  const Vector a{1.0, 5.0};
  const Vector b{2.0, 3.0};
  EXPECT_EQ(rl::cwise_min(a, b), (Vector{1.0, 3.0}));
  EXPECT_EQ(rl::cwise_max(a, b), (Vector{2.0, 5.0}));
}

TEST(Vector, SumAndMean) {
  const std::vector<Vector> vs = {{1.0, 0.0}, {3.0, 2.0}, {2.0, 4.0}};
  EXPECT_EQ(rl::sum(vs), (Vector{6.0, 6.0}));
  EXPECT_EQ(rl::mean(vs), (Vector{2.0, 2.0}));
  EXPECT_THROW(rl::sum({}), redopt::PreconditionError);
}

TEST(Vector, IsZeroWithTolerance) {
  EXPECT_TRUE(Vector(3).is_zero());
  EXPECT_FALSE((Vector{1e-6, 0.0}).is_zero());
  EXPECT_TRUE((Vector{1e-6, 0.0}).is_zero(1e-5));
}

TEST(Vector, ToStringAndStream) {
  const Vector v{1.0, 2.5};
  EXPECT_EQ(v.to_string(), "(1, 2.5)");
  std::ostringstream os;
  os << v;
  EXPECT_EQ(os.str(), "(1, 2.5)");
}
