// Unit and property tests for the matrix decompositions.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/decompose.h"
#include "rng/rng.h"
#include "util/error.h"

using redopt::linalg::Matrix;
using redopt::linalg::Vector;
namespace rl = redopt::linalg;

namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, redopt::rng::Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.gaussian();
  return m;
}

Matrix random_spd(std::size_t n, redopt::rng::Rng& rng) {
  // A^T A + I is symmetric positive definite.
  const Matrix a = random_matrix(n + 2, n, rng);
  Matrix spd = a.gram();
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  return spd;
}

}  // namespace

// ---------------------------------------------------------------- Cholesky

TEST(Cholesky, ReconstructsSpdMatrix) {
  redopt::rng::Rng rng(1);
  const Matrix a = random_spd(5, rng);
  const auto l = rl::cholesky(a);
  ASSERT_TRUE(l.has_value());
  const Matrix reconstructed = rl::matmul(*l, l->transposed());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 5; ++j) EXPECT_NEAR(reconstructed(i, j), a(i, j), 1e-9);
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(rl::cholesky(indefinite).has_value());
}

TEST(Cholesky, RejectsNonSquare) {
  EXPECT_THROW(rl::cholesky(Matrix(2, 3)), redopt::PreconditionError);
}

TEST(SolveSpd, RecoversKnownSolution) {
  redopt::rng::Rng rng(2);
  const Matrix a = random_spd(6, rng);
  const Vector x_true(rng.gaussian_vector(6));
  const Vector b = rl::matvec(a, x_true);
  const auto x = rl::solve_spd(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(rl::distance(*x, x_true), 0.0, 1e-8);
}

TEST(SolveSpd, ReturnsNulloptForIndefinite) {
  const Matrix indefinite{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_FALSE(rl::solve_spd(indefinite, Vector{1.0, 1.0}).has_value());
}

// ---------------------------------------------------------------- QR

TEST(Qr, QtPreservesNorm) {
  redopt::rng::Rng rng(3);
  const Matrix a = random_matrix(8, 5, rng);
  const rl::QrDecomposition qr(a);
  const Vector b(rng.gaussian_vector(8));
  EXPECT_NEAR(qr.apply_qt(b).norm(), b.norm(), 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  redopt::rng::Rng rng(4);
  const Matrix a = random_matrix(10, 4, rng);
  const Vector b(rng.gaussian_vector(10));
  const rl::QrDecomposition qr(a);
  const Vector x = qr.solve_least_squares(b);
  // Normal equations: A^T A x = A^T b.
  const Vector lhs = rl::matvec(a.gram(), x);
  const Vector rhs = rl::matvec_transposed(a, b);
  EXPECT_NEAR(rl::distance(lhs, rhs), 0.0, 1e-8);
}

TEST(Qr, ExactSolutionForConsistentSystem) {
  redopt::rng::Rng rng(5);
  const Matrix a = random_matrix(7, 3, rng);
  const Vector x_true(rng.gaussian_vector(3));
  const Vector b = rl::matvec(a, x_true);
  EXPECT_NEAR(rl::distance(rl::QrDecomposition(a).solve_least_squares(b), x_true), 0.0, 1e-9);
}

TEST(Qr, FullRankDetected) {
  redopt::rng::Rng rng(6);
  const Matrix a = random_matrix(6, 4, rng);
  EXPECT_EQ(rl::rank(a), 4u);
}

TEST(Qr, RankDeficiencyDetected) {
  // Third column = first + second.
  Matrix a(5, 3);
  redopt::rng::Rng rng(7);
  for (std::size_t r = 0; r < 5; ++r) {
    a(r, 0) = rng.gaussian();
    a(r, 1) = rng.gaussian();
    a(r, 2) = a(r, 0) + a(r, 1);
  }
  EXPECT_EQ(rl::rank(a), 2u);
}

TEST(Qr, ZeroMatrixHasRankZero) { EXPECT_EQ(rl::rank(Matrix(4, 3)), 0u); }

TEST(Qr, WideMatrixRank) {
  redopt::rng::Rng rng(8);
  const Matrix a = random_matrix(3, 7, rng);
  EXPECT_EQ(rl::rank(a), 3u);
}

TEST(Qr, RFactorIsUpperTriangular) {
  redopt::rng::Rng rng(9);
  const rl::QrDecomposition qr(random_matrix(6, 4, rng));
  const Matrix r = qr.r();
  for (std::size_t i = 1; i < r.rows(); ++i)
    for (std::size_t j = 0; j < std::min<std::size_t>(i, r.cols()); ++j)
      EXPECT_DOUBLE_EQ(r(i, j), 0.0);
}

TEST(Solve, SquareSystemRoundTrip) {
  redopt::rng::Rng rng(10);
  const Matrix a = random_matrix(5, 5, rng);
  const Vector x_true(rng.gaussian_vector(5));
  EXPECT_NEAR(rl::distance(rl::solve(a, rl::matvec(a, x_true)), x_true), 0.0, 1e-8);
}

TEST(Solve, SingularSystemThrows) {
  const Matrix singular{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(rl::solve(singular, Vector{1.0, 2.0}), redopt::PreconditionError);
}

// ---------------------------------------------------------------- Eigen

TEST(Eigen, DiagonalMatrixEigenvaluesSorted) {
  const auto eig = rl::symmetric_eigen(Matrix::diagonal(Vector{3.0, -1.0, 2.0}));
  EXPECT_NEAR(eig.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(Eigen, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const auto eig = rl::symmetric_eigen(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
}

TEST(Eigen, SatisfiesDefinitionOnRandomSymmetric) {
  redopt::rng::Rng rng(11);
  const Matrix a = random_spd(6, rng);
  const auto eig = rl::symmetric_eigen(a);
  // Check A v_k = lambda_k v_k for every k, and orthonormality of V.
  for (std::size_t k = 0; k < 6; ++k) {
    const Vector v = eig.eigenvectors.col(k);
    const Vector av = rl::matvec(a, v);
    EXPECT_NEAR(rl::distance(av, v * eig.eigenvalues[k]), 0.0, 1e-8);
    EXPECT_NEAR(v.norm(), 1.0, 1e-10);
    for (std::size_t j = k + 1; j < 6; ++j) {
      EXPECT_NEAR(rl::dot(v, eig.eigenvectors.col(j)), 0.0, 1e-9);
    }
  }
}

TEST(Eigen, TraceEqualsEigenvalueSum) {
  redopt::rng::Rng rng(12);
  const Matrix a = random_spd(5, rng);
  double trace = 0.0;
  for (std::size_t i = 0; i < 5; ++i) trace += a(i, i);
  const auto eig = rl::symmetric_eigen(a);
  double sum = 0.0;
  for (double l : eig.eigenvalues) sum += l;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Eigen, RejectsAsymmetric) {
  EXPECT_THROW(rl::symmetric_eigen(Matrix{{1.0, 2.0}, {0.0, 1.0}}), redopt::PreconditionError);
  EXPECT_THROW(rl::symmetric_eigen(Matrix(2, 3)), redopt::PreconditionError);
}

TEST(Eigen, MinMaxEigenvalueHelpers) {
  const Matrix a{{4.0, 0.0}, {0.0, 9.0}};
  EXPECT_NEAR(rl::min_eigenvalue(a), 4.0, 1e-12);
  EXPECT_NEAR(rl::max_eigenvalue(a), 9.0, 1e-12);
}

TEST(Eigen, PsdGramHasNonNegativeEigenvalues) {
  redopt::rng::Rng rng(13);
  const Matrix a = random_matrix(4, 6, rng);  // wide => gram is singular PSD
  const auto eig = rl::symmetric_eigen(a.gram());
  for (double l : eig.eigenvalues) EXPECT_GE(l, -1e-9);
  EXPECT_NEAR(eig.eigenvalues[0], 0.0, 1e-9);  // rank <= 4 < 6
}
