// Tests for util::Stopwatch: monotonicity, restart semantics, and unit
// consistency.  Wall-clock assertions use generous one-sided bounds so the
// suite stays reliable on loaded CI machines.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/stopwatch.h"

namespace ru = redopt::util;

TEST(Stopwatch, ElapsedIsNonNegativeAndNonDecreasing) {
  ru::Stopwatch watch;
  double previous = watch.elapsed_seconds();
  EXPECT_GE(previous, 0.0);
  for (int i = 0; i < 100; ++i) {
    const double now = watch.elapsed_seconds();
    EXPECT_GE(now, previous);  // steady_clock never goes backwards
    previous = now;
  }
}

TEST(Stopwatch, ObservesARealSleep) {
  ru::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // sleep_for guarantees *at least* the requested duration.
  EXPECT_GE(watch.elapsed_seconds(), 0.010);
  EXPECT_GE(watch.elapsed_ms(), 10.0);
}

TEST(Stopwatch, ResetRestartsTheWindow) {
  ru::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double before_reset = watch.elapsed_seconds();
  watch.reset();
  const double after_reset = watch.elapsed_seconds();
  // The new window excludes the sleep: it must be strictly shorter than the
  // old window was at reset time (reading the clock takes far less than the
  // 10ms the first window contains).
  EXPECT_LT(after_reset, before_reset);
  // And the window keeps growing after the restart.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.elapsed_seconds(), 0.005);
}

TEST(Stopwatch, MillisecondsMatchSeconds) {
  ru::Stopwatch watch;
  // Not an exact equality check: elapsed_ms() and elapsed_seconds() read the
  // clock independently, so the later read sees a slightly larger window.
  const double seconds = watch.elapsed_seconds();
  const double ms = watch.elapsed_ms();
  EXPECT_GE(ms, seconds * 1e3);
  EXPECT_LT(ms - seconds * 1e3, 1000.0);  // the two reads are within 1s
}
