// Tests for tools/redopt-lint: one violating and one clean fixture per
// rule, suppression-directive handling, and the comment/string stripping
// that keeps doc comments and these very fixtures from firing.
//
// Fixtures are passed to lint_lines() as in-memory snippets under
// pseudo-paths; the banned tokens below live inside string literals, so
// the repo-wide `redopt_lint` ctest scan (which blanks literals) never
// trips over this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.h"

using redopt::lint::Finding;
using redopt::lint::lint_lines;

namespace {

/// Count of findings for @p rule.
std::size_t count_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return static_cast<std::size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const Finding& f) { return f.rule == rule; }));
}

const Finding* find_rule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const auto& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

}  // namespace

TEST(LintRuleTable, EveryRuleHasIdSummaryRationale) {
  const auto& rules = redopt::lint::rules();
  ASSERT_EQ(rules.size(), 7u);
  std::vector<std::string> ids;
  for (const auto& r : rules) {
    ids.emplace_back(r.id);
    EXPECT_NE(std::string(r.summary), "");
    EXPECT_NE(std::string(r.rationale), "");
  }
  EXPECT_EQ(ids, (std::vector<std::string>{"D1", "D2", "D3", "H1", "N1", "T1", "T2"}));
}

// ---------------------------------------------------------------------------
// D1: banned nondeterminism sources in src/
// ---------------------------------------------------------------------------

TEST(LintD1, FlagsRandomDeviceInSrc) {
  const auto findings = lint_lines("src/core/foo.cpp", {"std::random_device rd;"});
  ASSERT_EQ(count_rule(findings, "D1"), 1u);
  const auto* f = find_rule(findings, "D1");
  EXPECT_EQ(f->line, 1u);
  EXPECT_NE(f->message.find("std::random_device"), std::string::npos);
}

TEST(LintD1, FlagsRandSrandTimeClockAndThreadId) {
  const std::vector<std::string> lines = {
      "int x = std::rand();",
      "srand(42);",
      "std::uint64_t seed = std::time(nullptr);",
      "auto t0 = std::chrono::steady_clock::now();",
      "auto id = std::this_thread::get_id();",
  };
  const auto findings = lint_lines("src/dgd/foo.cpp", lines);
  EXPECT_EQ(count_rule(findings, "D1"), 5u);
}

TEST(LintD1, CleanOutsideSrcAndInStopwatchCarveout) {
  // bench/ may time things however it likes; D1 guards src/ only.
  EXPECT_TRUE(lint_lines("bench/foo.cpp", {"auto t = std::chrono::steady_clock::now();"}).empty());
  // The one sanctioned wall-clock wrapper.
  EXPECT_TRUE(
      lint_lines("src/util/stopwatch.h",
                 {"#pragma once", "using Clock = std::chrono::steady_clock;"})
          .empty());
}

TEST(LintD1, IgnoresBannedTokensInCommentsAndStrings) {
  const std::vector<std::string> lines = {
      "// never use std::random_device here",
      "/* rand() and time() are banned */",
      "const char* msg = \"std::random_device is banned\";",
      "int elapsed_time(int x);  // identifier containing 'time(' must not fire",
  };
  EXPECT_TRUE(lint_lines("src/core/foo.cpp", lines).empty());
}

// ---------------------------------------------------------------------------
// D2: unordered containers in snapshot/serialization code
// ---------------------------------------------------------------------------

TEST(LintD2, FlagsUnorderedMapInTelemetry) {
  const auto findings =
      lint_lines("src/telemetry/foo.cpp", {"std::unordered_map<std::string, int> by_name;"});
  ASSERT_EQ(count_rule(findings, "D2"), 1u);
  EXPECT_NE(find_rule(findings, "D2")->message.find("hash layout"), std::string::npos);
}

TEST(LintD2, FlagsUnorderedSetInFileThatSnapshots) {
  // Content-level surface detection: any src/ file producing snapshots.
  const std::vector<std::string> lines = {
      "std::unordered_set<int> seen;",
      "auto snap = registry.snapshot();",
  };
  EXPECT_EQ(count_rule(lint_lines("src/core/foo.cpp", lines), "D2"), 1u);
}

TEST(LintD2, CleanInNonSerializationCode) {
  // An unordered map in plain algorithm code (no snapshot/serialize
  // surface) is fine — only serialized bytes must be order-stable.
  EXPECT_TRUE(
      lint_lines("src/filters/foo.cpp", {"std::unordered_map<int, int> scratch;"}).empty());
}

// ---------------------------------------------------------------------------
// D3: pointer-keyed ordering / address-dependent hashing
// ---------------------------------------------------------------------------

TEST(LintD3, FlagsPointerKeyedMapAndAddressHash) {
  const std::vector<std::string> lines = {
      "std::map<Node*, int> order;",
      "std::hash<const Agent*> hasher;",
      "auto key = reinterpret_cast<std::uintptr_t>(ptr);",
  };
  EXPECT_EQ(count_rule(lint_lines("src/net/foo.cpp", lines), "D3"), 3u);
}

TEST(LintD3, CleanForValueKeyedContainers) {
  const std::vector<std::string> lines = {
      "std::map<std::string, std::size_t> by_name;",
      "std::set<std::pair<int, int>> edges;",
  };
  EXPECT_TRUE(lint_lines("src/net/foo.cpp", lines).empty());
}

// ---------------------------------------------------------------------------
// H1: include hygiene
// ---------------------------------------------------------------------------

TEST(LintH1, FlagsMissingPragmaOnceAndUsingNamespace) {
  const auto missing = lint_lines("src/core/foo.h", {"int f();"});
  ASSERT_EQ(count_rule(missing, "H1"), 1u);
  EXPECT_NE(find_rule(missing, "H1")->message.find("#pragma once"), std::string::npos);

  const auto dumped =
      lint_lines("src/core/bar.h", {"#pragma once", "using namespace std;"});
  ASSERT_EQ(count_rule(dumped, "H1"), 1u);
  EXPECT_EQ(find_rule(dumped, "H1")->line, 2u);
}

TEST(LintH1, CleanHeaderAndCppFileScopeUsing) {
  EXPECT_TRUE(lint_lines("src/core/foo.h", {"#pragma once", "int f();"}).empty());
  // Include guards count too.
  EXPECT_TRUE(
      lint_lines("src/core/g.h", {"#ifndef REDOPT_G_H", "#define REDOPT_G_H", "#endif"}).empty());
  // `using namespace` in a .cpp is the repo's normal style (tests, benches).
  EXPECT_TRUE(lint_lines("src/core/foo.cpp", {"using namespace redopt;"}).empty());
}

// ---------------------------------------------------------------------------
// N1: raw socket / byte-order calls outside src/transport/
// ---------------------------------------------------------------------------

TEST(LintN1, FlagsSocketCallsAndHeadersOutsideTransport) {
  const std::vector<std::string> lines = {
      "#include <sys/socket.h>",
      "int fd = socket(AF_UNIX, SOCK_STREAM, 0);",
      "::send(fd, buf, len, 0);",
      "auto port = htons(8080);",
  };
  const auto findings = lint_lines("src/net/foo.cpp", lines);
  EXPECT_EQ(count_rule(findings, "N1"), 4u);
  const auto* f = find_rule(findings, "N1");
  EXPECT_NE(f->message.find("src/transport/"), std::string::npos);
}

TEST(LintN1, CleanInsideTransportAndOutsideSrc) {
  const std::vector<std::string> lines = {
      "#include <sys/socket.h>",
      "::recv(fd, buf, len, 0);",
  };
  // src/transport/ owns the process boundary; the rule exempts it.
  EXPECT_TRUE(lint_lines("src/transport/socket_transport.cpp", lines).empty());
  // tools/ and tests/ drive sockets as they like (e.g. CI smoke harness).
  EXPECT_TRUE(lint_lines("tools/foo/main.cpp", lines).empty());
}

TEST(LintN1, IgnoresLookalikeIdentifiersAndMemberCalls) {
  const std::vector<std::string> lines = {
      "websocket(url);",              // identifier merely containing 'socket'
      "queue.send(message);",         // member call, not the raw syscall
      "channel->recv(frame);",        // likewise through a pointer
      "int message_sendto_count;",    // no call at all
  };
  EXPECT_TRUE(lint_lines("src/net/foo.cpp", lines).empty());
}

TEST(LintN1, SuppressibleWithAllowDirective) {
  const auto findings = lint_lines(
      "src/net/foo.cpp",
      {"int fd = socket(AF_UNIX, SOCK_STREAM, 0);  // redopt-lint: allow(N1) — fixture"});
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// T1: telemetry metric-name convention
// ---------------------------------------------------------------------------

TEST(LintT1, FlagsBadMetricNames) {
  const std::vector<std::string> lines = {
      "auto a = reg.counter(\"BadName\");",          // uppercase
      "auto b = reg.counter(\"noprefix\");",         // no subsystem segment
      "auto c = reg.gauge(\"net.Mixed.case\");",     // uppercase segment
  };
  EXPECT_EQ(count_rule(lint_lines("src/net/foo.cpp", lines), "T1"), 3u);
}

TEST(LintT1, FlagsWallClockMetricWithoutUnstableFlag) {
  const auto findings = lint_lines(
      "src/telemetry/foo.cpp",
      {"seconds_ = reg.histogram(name + \".seconds\", layout);"});
  ASSERT_EQ(count_rule(findings, "T1"), 1u);
  EXPECT_NE(find_rule(findings, "T1")->message.find("kUnstable"), std::string::npos);
}

TEST(LintT1, CleanConventionalAndFlaggedRegistrations) {
  const std::vector<std::string> lines = {
      "auto a = reg.counter(\"net.messages_sent\");",
      "auto b = reg.histogram(\"dgd.direction_norm\", layout);",
      "seconds_ = reg.histogram(name + \".seconds\", layout,",
      "                         telemetry::Determinism::kUnstable);",
  };
  EXPECT_TRUE(lint_lines("src/net/foo.cpp", lines).empty());
}

TEST(LintT1, DoesNotApplyOutsideSrc) {
  // Tests and benches register short throwaway names ("h", "c") freely.
  EXPECT_TRUE(lint_lines("tests/test_foo.cpp", {"auto h = r.counter(\"h\");"}).empty());
}

// ---------------------------------------------------------------------------
// T2: duration-valued telemetry must ride the nd channel
// ---------------------------------------------------------------------------

TEST(LintT2, FlagsDurationEventFieldInStableSlot) {
  const auto findings = lint_lines(
      "src/dgd/foo.cpp", {"event.with(\"step_elapsed_ms\", elapsed);"});
  ASSERT_EQ(count_rule(findings, "T2"), 1u);
  EXPECT_NE(find_rule(findings, "T2")->message.find("with_nd"), std::string::npos);
}

TEST(LintT2, CleanWhenDurationFieldUsesWithNd) {
  // with_nd routes the value into the nd object that sinks strip; the
  // .with regex must not match the longer method name.
  EXPECT_TRUE(
      lint_lines("src/dgd/foo.cpp", {"event.with_nd(\"step_elapsed_ms\", elapsed);"}).empty());
}

TEST(LintT2, FlagsDurationSpanAttribute) {
  const auto findings =
      lint_lines("src/transport/foo.cpp", {"span.attr(\"exchange_duration_us\", us);"});
  ASSERT_EQ(count_rule(findings, "T2"), 1u);
  EXPECT_NE(find_rule(findings, "T2")->message.find("deterministic-only"), std::string::npos);
}

TEST(LintT2, FlagsSubSecondMetricWithoutUnstableFlag) {
  const auto findings = lint_lines(
      "src/net/foo.cpp", {"auto h = reg.histogram(\"net.rpc_elapsed_us\", layout);"});
  ASSERT_EQ(count_rule(findings, "T2"), 1u);
  EXPECT_NE(find_rule(findings, "T2")->message.find("kUnstable"), std::string::npos);
}

TEST(LintT2, CleanRegistrationsAndNonDurationKeys) {
  const std::vector<std::string> lines = {
      // Deterministic keys in stable slots are the normal case.
      "event.with(\"round\", t).with(\"frames\", n);",
      "span.attr(\"round\", t);",
      // Flagged sub-second registration, multi-line statement.
      "auto h = reg.histogram(\"net.rpc_elapsed_us\", layout,",
      "                       telemetry::Determinism::kUnstable);",
  };
  EXPECT_TRUE(lint_lines("src/net/foo.cpp", lines).empty());
}

TEST(LintT2, LeavesWallClockSuffixesToT1AndSkipsNonSrc) {
  // A bare ".seconds" registration is T1's finding, not a T2 double-report.
  const auto findings = lint_lines(
      "src/telemetry/foo.cpp", {"seconds_ = reg.histogram(name + \".seconds\", layout);"});
  EXPECT_EQ(count_rule(findings, "T1"), 1u);
  EXPECT_EQ(count_rule(findings, "T2"), 0u);
  // tests/ and bench/ stamp durations however they like.
  EXPECT_TRUE(
      lint_lines("tests/test_foo.cpp", {"event.with(\"elapsed_ms\", ms);"}).empty());
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesThatRuleOnly) {
  const auto same_line = lint_lines(
      "src/core/foo.cpp",
      {"std::random_device rd;  // redopt-lint: allow(D1) — fixture, never executed"});
  EXPECT_TRUE(same_line.empty());

  // allow(D2) does not silence a D1 finding.
  const auto wrong_rule =
      lint_lines("src/core/foo.cpp", {"std::random_device rd;  // redopt-lint: allow(D2)"});
  EXPECT_EQ(count_rule(wrong_rule, "D1"), 1u);
}

TEST(LintSuppression, PreviousLineAndListForms) {
  const std::vector<std::string> lines = {
      "// redopt-lint: allow(D1,D3) — seeding fixture",
      "std::random_device rd;",
      "auto key = reinterpret_cast<std::uintptr_t>(&rd);",
  };
  // The directive covers only the next line: D1 on line 2 is silenced,
  // D3 on line 3 still fires.
  const auto findings = lint_lines("src/core/foo.cpp", lines);
  EXPECT_EQ(count_rule(findings, "D1"), 0u);
  EXPECT_EQ(count_rule(findings, "D3"), 1u);
}

TEST(LintSuppression, AllowFileSilencesWholeFile) {
  const std::vector<std::string> lines = {
      "// redopt-lint: allow-file(D1) — this module wraps the OS entropy source",
      "std::random_device a;",
      "std::random_device b;",
  };
  EXPECT_TRUE(lint_lines("src/core/foo.cpp", lines).empty());
}

TEST(LintFormat, FindingRendersAsFileLineRuleMessage) {
  const auto findings = lint_lines("src/core/foo.cpp", {"std::random_device rd;"});
  ASSERT_EQ(findings.size(), 1u);
  const std::string text = redopt::lint::format_finding(findings[0]);
  EXPECT_EQ(text.rfind("src/core/foo.cpp:1: [D1] ", 0), 0u);
}
