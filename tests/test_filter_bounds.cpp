// Property sweep: the bounded-output condition of Theorems 4(1)/5(1).
//
// A gradient-filter can only confer fault-tolerance if a bounded honest
// majority keeps its output bounded no matter what the f Byzantine inputs
// are.  For each robust filter, this sweep feeds n - f bounded honest
// gradients plus f arbitrarily large adversarial ones and checks the
// output norm against a filter-appropriate bound.  The non-robust
// baselines (mean, sum, fixed-radius normclip is bounded by construction
// but included for contrast) are checked for the *opposite*: their output
// escapes any bound.
#include <gtest/gtest.h>

#include <string>

#include "filters/registry.h"
#include "rng/rng.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

constexpr std::size_t kN = 11;
constexpr std::size_t kF = 2;
constexpr std::size_t kD = 4;
constexpr double kHonestBound = 3.0;

/// n - f honest gradients with norm <= kHonestBound plus f huge ones.
std::vector<Vector> adversarial_inputs(double magnitude, std::uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<Vector> gs;
  for (std::size_t i = 0; i < kN - kF; ++i) {
    Vector g(rng.gaussian_vector(kD));
    const double norm = g.norm();
    if (norm > kHonestBound) g *= kHonestBound / norm;
    gs.push_back(std::move(g));
  }
  for (std::size_t i = 0; i < kF; ++i) {
    Vector g(rng.unit_sphere(kD));
    gs.push_back(g * magnitude);
  }
  return gs;
}

std::unique_ptr<filters::GradientFilter> make(const std::string& name) {
  filters::FilterParams p;
  p.n = kN;
  p.f = kF;
  p.multikrum_m = kN - kF - 2;
  p.clip_tau = kHonestBound;
  return filters::make_filter(name, p);
}

}  // namespace

class RobustFilterBoundedness : public testing::TestWithParam<std::string> {};

TEST_P(RobustFilterBoundedness, OutputBoundedDespiteArbitraryByzantineInputs) {
  const auto filter = make(GetParam());
  // Sum-scaled filters may legitimately output up to (n - f) * bound;
  // everything robust must stay within that regardless of the adversary's
  // magnitude.
  const double allowed = static_cast<double>(kN - kF) * kHonestBound + 1e-9;
  for (double magnitude : {1e3, 1e6, 1e12}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const auto gs = adversarial_inputs(magnitude, seed);
      const double out_norm = filter->apply(gs).norm();
      EXPECT_LE(out_norm, allowed)
          << GetParam() << " magnitude=" << magnitude << " seed=" << seed;
    }
  }
}

TEST_P(RobustFilterBoundedness, OutputInvariantToByzantineMagnitudeGrowth) {
  // Once the adversarial gradients are far outside the honest cluster,
  // growing them further must not change the output at all (elimination /
  // trimming / selection has already discarded them) — or change it only
  // boundedly (clipping).
  const auto filter = make(GetParam());
  const auto small = filter->apply(adversarial_inputs(1e6, 7));
  const auto large = filter->apply(adversarial_inputs(1e12, 7));
  EXPECT_LE(linalg::distance(small, large), 2.0 * kHonestBound)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RobustFilters, RobustFilterBoundedness,
                         testing::Values("cge", "cge_avg", "cwtm", "cwmed", "krum",
                                         "multikrum", "geomed", "gmom", "bulyan", "mda",
                                         "normclip", "normclip_adaptive", "cclip"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(NonRobustBaselines, MeanAndSumEscapeEveryBound) {
  for (const char* name : {"mean", "sum"}) {
    const auto filter = make(name);
    const double out = filter->apply(adversarial_inputs(1e9, 5)).norm();
    EXPECT_GT(out, 1e6) << name;  // dominated by the adversarial inputs
  }
}
