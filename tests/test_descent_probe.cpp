// Tests for the Theorem-3 descent-condition probe.
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/descent_probe.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

struct Fixture {
  data::BlockRegressionInstance instance;
  std::vector<std::size_t> byzantine{0, 1};
  Vector x_h;

  explicit Fixture(double noise = 0.03)
      : instance([&] {
          rng::Rng rng(5);
          return data::make_orthonormal_regression(9, 3, 2, noise, Vector(3, 1.0), rng);
        }()) {
    x_h = data::block_regression_argmin(instance, dgd::honest_ids(9, byzantine));
  }
};

std::unique_ptr<filters::GradientFilter> make(const std::string& name) {
  filters::FilterParams fp;
  fp.n = 9;
  fp.f = 2;
  return filters::make_filter(name, fp);
}

dgd::DescentProbeConfig default_probe() {
  dgd::DescentProbeConfig probe;
  probe.radii = {0.05, 0.2, 1.0};
  probe.samples_per_radius = 32;
  probe.seed = 3;
  return probe;
}

}  // namespace

TEST(DescentProbe, FaultFreeSumIsPositiveOnAllShells) {
  // With no faults, the plain gradient sum of a strongly convex aggregate
  // satisfies phi(x) >= gamma' ||x - x*||^2 > 0 away from the minimum.
  const Fixture fx(0.0);
  const auto filter = make("sum");
  const auto result = dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter,
                                                   fx.x_h, default_probe());
  for (const auto& shell : result.shells) {
    EXPECT_GT(shell.min_phi, 0.0) << "radius " << shell.radius;
  }
  EXPECT_DOUBLE_EQ(result.empirical_d_star, 0.05);
}

TEST(DescentProbe, CgePositiveOutsideSmallRadiusUnderAttack) {
  const Fixture fx;
  const auto filter = make("cge");
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result = dgd::probe_descent_condition(fx.instance.problem, fx.byzantine,
                                                   attack.get(), *filter, fx.x_h,
                                                   default_probe());
  EXPECT_LE(result.empirical_d_star, 0.2);
  // The shells beyond D* are positive by definition of the probe.
  EXPECT_GT(result.shells.back().min_phi, 0.0);
}

TEST(DescentProbe, MeanNegativeUnderStrongIpm) {
  const Fixture fx;
  const auto filter = make("mean");
  attacks::AttackParams params;
  params.c = 4.0;
  const auto attack = attacks::make_attack("ipm", params);
  const auto result = dgd::probe_descent_condition(fx.instance.problem, fx.byzantine,
                                                   attack.get(), *filter, fx.x_h,
                                                   default_probe());
  EXPECT_TRUE(std::isinf(result.empirical_d_star));
  for (const auto& shell : result.shells) EXPECT_LT(shell.min_phi, 0.0);
}

TEST(DescentProbe, MeanPhiGrowsWithRadius) {
  // phi scales ~ radius^2 for quadratic aggregates; the shells' mean phi
  // must be increasing for the fault-free sum.
  const Fixture fx(0.0);
  const auto filter = make("sum");
  const auto result = dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter,
                                                   fx.x_h, default_probe());
  EXPECT_LT(result.shells[0].mean_phi, result.shells[1].mean_phi);
  EXPECT_LT(result.shells[1].mean_phi, result.shells[2].mean_phi);
}

TEST(DescentProbe, DeterministicGivenSeed) {
  const Fixture fx;
  const auto filter = make("cwtm");
  const auto attack = attacks::make_attack("random");
  const auto r1 = dgd::probe_descent_condition(fx.instance.problem, fx.byzantine, attack.get(),
                                               *filter, fx.x_h, default_probe());
  const auto r2 = dgd::probe_descent_condition(fx.instance.problem, fx.byzantine, attack.get(),
                                               *filter, fx.x_h, default_probe());
  for (std::size_t k = 0; k < r1.shells.size(); ++k) {
    EXPECT_DOUBLE_EQ(r1.shells[k].min_phi, r2.shells[k].min_phi);
  }
}

TEST(DescentProbe, ValidatesArguments) {
  const Fixture fx;
  const auto filter = make("cge");
  auto probe = default_probe();
  probe.radii.clear();
  EXPECT_THROW(dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter, fx.x_h,
                                            probe),
               redopt::PreconditionError);
  probe = default_probe();
  probe.radii = {0.0};
  EXPECT_THROW(dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter, fx.x_h,
                                            probe),
               redopt::PreconditionError);
  probe = default_probe();
  probe.samples_per_radius = 0;
  EXPECT_THROW(dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter, fx.x_h,
                                            probe),
               redopt::PreconditionError);
  // Byzantine agents without an attack.
  EXPECT_THROW(dgd::probe_descent_condition(fx.instance.problem, fx.byzantine, nullptr,
                                            *filter, fx.x_h, default_probe()),
               redopt::PreconditionError);
  // Wrong-dimension reference.
  EXPECT_THROW(dgd::probe_descent_condition(fx.instance.problem, {}, nullptr, *filter,
                                            Vector{1.0}, default_probe()),
               redopt::PreconditionError);
}
