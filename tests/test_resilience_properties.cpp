// Property-based sweeps over (filter, attack, seed): the theorems'
// resilience guarantees, exercised as executable properties.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/subsets.h"

using namespace redopt;
using linalg::Vector;

namespace {

struct Sweep {
  std::string filter;
  std::string attack;
  std::uint64_t seed;
};

std::string sweep_name(const testing::TestParamInfo<Sweep>& info) {
  return info.param.filter + "_" + info.param.attack + "_s" +
         std::to_string(info.param.seed);
}

dgd::TrainerConfig sweep_config(std::size_t n, std::size_t f, const std::string& filter,
                                std::size_t iterations, std::uint64_t seed) {
  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter(filter, fp);
  // Sum-scaled filters take a smaller step coefficient than average-scaled.
  const double coeff = (filter == "cge" || filter == "sum") ? 0.5 : 2.0;
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = iterations;
  cfg.seed = seed;
  cfg.trace_stride = 0;
  return cfg;
}

}  // namespace

/// On an exactly 2f-redundant instance (noiseless regression), every robust
/// filter must land near the honest minimum under every attack.  This is
/// the (f, 0)-resilience property of Theorems 4/5 at epsilon = 0.
class RobustFilterResilience : public testing::TestWithParam<Sweep> {};

TEST_P(RobustFilterResilience, ExactRedundancyImpliesNearExactRecovery) {
  const auto& param = GetParam();
  rng::Rng rng(param.seed);
  const auto inst = data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.0, 1, rng);
  const std::size_t byz = param.seed % 6;  // vary the Byzantine agent with the seed
  const auto honest = dgd::honest_ids(6, {byz});
  const Vector x_h = data::regression_argmin(inst, honest);

  const auto attack = attacks::make_attack(param.attack);
  const auto cfg = sweep_config(6, 1, param.filter, 3000, param.seed);
  const auto result = dgd::train(inst.problem, {byz}, attack.get(), cfg, x_h);
  EXPECT_LT(result.final_distance, 0.02)
      << "filter=" << param.filter << " attack=" << param.attack << " byz=" << byz;
}

namespace {

std::vector<Sweep> make_sweeps() {
  std::vector<Sweep> sweeps;
  for (const char* filter : {"cge", "cwtm"}) {
    for (const char* attack :
         {"gradient_reverse", "random", "zero", "large_norm", "lie", "ipm"}) {
      for (std::uint64_t seed : {1u, 2u, 5u}) {
        sweeps.push_back({filter, attack, seed});
      }
    }
  }
  return sweeps;
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(Sweep, RobustFilterResilience, testing::ValuesIn(make_sweeps()),
                         sweep_name);

/// Under (2f, eps)-redundancy (noisy observations), the asymptotic error of
/// DGD+CGE is bounded by (4 mu f / (alpha gamma)) * eps  (Theorem 4).  The
/// property checks the *measured* error against the *measured* constants.
class CgeEpsilonBound : public testing::TestWithParam<std::uint64_t> {};

TEST_P(CgeEpsilonBound, ErrorWithinTheoreticalBound) {
  // Single-row agents cannot reach alpha > 0 at n = 6, f = 1, so the bound
  // is checked on the orthonormal-block family where mu = gamma = 2 and
  // alpha = 1 - 3 f / n = 1/2 exactly (see data/regression.h).
  rng::Rng rng(GetParam());
  const auto inst =
      data::make_orthonormal_regression(6, 2, 1, 0.05, Vector{1.0, 1.0}, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  const std::size_t byz = GetParam() % 6;
  const auto honest = dgd::honest_ids(6, {byz});
  const Vector x_h = data::block_regression_argmin(inst, honest);
  const double mu = core::lipschitz_constant(inst.problem, honest, Vector(2));
  const double gamma = core::strong_convexity_constant(inst.problem, honest, Vector(2));
  const double alpha = core::cge_alpha(6, 1, mu, gamma);
  ASSERT_GT(alpha, 0.0) << "instance outside CGE's guarantee regime";
  const double bound = 4.0 * mu * 1.0 / (alpha * gamma) * eps;  // D * eps, Theorem 4

  const auto attack = attacks::make_attack("gradient_reverse");
  const auto cfg = sweep_config(6, 1, "cge", 4000, GetParam());
  const auto result = dgd::train(inst.problem, {byz}, attack.get(), cfg, x_h);
  EXPECT_LE(result.final_distance, bound + 1e-3)
      << "eps=" << eps << " bound=" << bound;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgeEpsilonBound,
                         testing::Values(std::uint64_t{3}, std::uint64_t{7}, std::uint64_t{11},
                                         std::uint64_t{19}, std::uint64_t{23}));

/// (f, eps)-resilience quantifies over EVERY (n - f)-subset of honest
/// agents: when fewer than f agents actually misbehave, the output must be
/// near the minimum of every such subset's aggregate.
TEST(ResilienceDefinition, OutputCloseToEveryNMinusFSubsetMinimum) {
  rng::Rng rng(31);
  const auto inst =
      data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, 0.02, 1, rng);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
  // Zero actual faults, budget f = 1.
  const auto cfg = sweep_config(6, 1, "cge", 4000, 1);
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg);
  util::for_each_subset(6, 5, [&](const std::vector<std::size_t>& s) {
    const Vector x_s = data::regression_argmin(inst, s);
    // Allow the Theorem-4 style slack: a small multiple of eps.
    EXPECT_LT(linalg::distance(result.estimate, x_s), 10.0 * eps + 0.02);
    return true;
  });
}

/// Monotonicity: more observation noise => weaker redundancy (larger eps)
/// and larger final error for CGE.  The "zero" attack is used because a
/// muted agent always survives norm-based elimination, displacing one
/// honest gradient — the error it induces scales with the redundancy gap
/// (a gradient-reverse gradient instead gets eliminated once its norm
/// exceeds the honest ones, which hides the effect).
TEST(ResilienceScaling, ErrorGrowsWithRedundancyRelaxation) {
  double prev_eps = 0.0;
  std::vector<double> errors;
  for (double sigma : {0.0, 0.05, 0.2}) {
    rng::Rng rng(77);  // same noise shape, scaled
    const auto inst =
        data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, sigma, 1, rng);
    const double eps = redundancy::measure_redundancy(inst.problem.costs, 1).epsilon;
    EXPECT_GE(eps, prev_eps - 1e-12);
    prev_eps = eps;

    const auto honest = dgd::honest_ids(6, {0});
    const Vector x_h = data::regression_argmin(inst, honest);
    const auto attack = attacks::make_attack("zero");
    const auto cfg = sweep_config(6, 1, "cge", 3000, 5);
    errors.push_back(
        dgd::train(inst.problem, {0}, attack.get(), cfg, x_h).final_distance);
  }
  EXPECT_LT(errors.front(), errors[1]);
  EXPECT_LT(errors[1], errors.back());
}

/// The fault-free special case f = 0: D = 0 in Theorem 4, so CGE (= plain
/// sum) converges to the exact minimum even with noisy observations.
TEST(ResilienceScaling, FaultFreeCaseIsExact) {
  rng::Rng rng(13);
  const auto a = data::paper_matrix();
  const auto inst = data::make_regression(a, Vector{1.0, 1.0}, 0.1, 0, rng);
  const Vector x_all = data::regression_argmin(inst, {0, 1, 2, 3, 4, 5});
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 0;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 5000;
  cfg.trace_stride = 0;
  const auto result = dgd::train(inst.problem, {}, nullptr, cfg, x_all);
  EXPECT_LT(result.final_distance, 5e-3);
}
