// Tests for instance serialization: exact round-trips and format errors.
#include <gtest/gtest.h>

#include <cstdio>

#include "attacks/registry.h"
#include "data/instance_io.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/error.h"

using namespace redopt;
using linalg::Vector;

namespace {

data::RegressionInstance sample_instance(double noise = 0.03, std::uint64_t seed = 5) {
  rng::Rng rng(seed);
  return data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, noise, 1, rng);
}

}  // namespace

TEST(InstanceIo, StringRoundTripIsBitExact) {
  const auto original = sample_instance();
  const auto text = data::regression_to_string(original);
  const auto restored = data::regression_from_string(text);

  EXPECT_EQ(restored.problem.f, original.problem.f);
  EXPECT_EQ(restored.a, original.a);          // exact matrix equality
  EXPECT_EQ(restored.b, original.b);          // exact observations
  EXPECT_EQ(restored.x_star, original.x_star);
  ASSERT_EQ(restored.problem.num_agents(), original.problem.num_agents());
  // The rebuilt costs evaluate identically.
  const Vector probe{0.3, -0.7};
  for (std::size_t i = 0; i < original.problem.num_agents(); ++i) {
    EXPECT_DOUBLE_EQ(restored.problem.costs[i]->value(probe),
                     original.problem.costs[i]->value(probe));
  }
}

TEST(InstanceIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "redopt_instance_test.txt";
  const auto original = sample_instance(0.05, 9);
  data::save_regression(original, path);
  const auto restored = data::load_regression(path);
  EXPECT_EQ(restored.a, original.a);
  EXPECT_EQ(restored.b, original.b);
  std::remove(path.c_str());
}

TEST(InstanceIo, RoundTripPreservesMeasuredRedundancy) {
  // The point of the format: downstream analyses of a saved instance give
  // the same numbers as the original run.
  const auto original = sample_instance(0.04, 11);
  const auto restored = data::regression_from_string(data::regression_to_string(original));
  const double eps_original =
      redundancy::measure_redundancy(original.problem.costs, 1).epsilon;
  const double eps_restored =
      redundancy::measure_redundancy(restored.problem.costs, 1).epsilon;
  EXPECT_DOUBLE_EQ(eps_original, eps_restored);
}

TEST(InstanceIo, SerializedFormIsStable) {
  const auto text = data::regression_to_string(sample_instance());
  EXPECT_EQ(text.rfind("redopt-regression v1\n", 0), 0u);
  EXPECT_NE(text.find("n 6 d 2 f 1"), std::string::npos);
  EXPECT_NE(text.find("x_star 1 1"), std::string::npos);
  // One "row ... obs ..." line per agent.
  std::size_t rows = 0;
  for (std::size_t pos = text.find("row "); pos != std::string::npos;
       pos = text.find("row ", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 6u);
}

TEST(InstanceIo, RestoredInstanceReplaysIdenticalExecution) {
  // The reproducibility contract end to end: a DGD run on the restored
  // instance is bit-identical to a run on the original.
  const auto original = sample_instance(0.03, 21);
  const auto restored = data::regression_from_string(data::regression_to_string(original));

  const auto attack = attacks::make_attack("lie");
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::TrainerConfig cfg;
  cfg.filter = filters::make_filter("cge", fp);
  cfg.schedule = std::make_shared<dgd::HarmonicSchedule>(0.3);
  cfg.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  cfg.iterations = 80;
  cfg.trace_stride = 0;
  const auto run_original = dgd::train(original.problem, {3}, attack.get(), cfg);
  const auto run_restored = dgd::train(restored.problem, {3}, attack.get(), cfg);
  EXPECT_EQ(run_original.estimate, run_restored.estimate);
}

TEST(InstanceIo, RejectsMalformedInput) {
  EXPECT_THROW(data::regression_from_string(""), redopt::PreconditionError);
  EXPECT_THROW(data::regression_from_string("wrong header\n"), redopt::PreconditionError);
  EXPECT_THROW(data::regression_from_string("redopt-regression v1\nn 2 d 1\n"),
               redopt::PreconditionError);  // missing f
  EXPECT_THROW(
      data::regression_from_string("redopt-regression v1\nn 3 d 1 f 1\nx_star 1\nrow 1 obs\n"),
      redopt::PreconditionError);  // truncated row
  EXPECT_THROW(data::load_regression("/nonexistent-dir-xyz/inst.txt"),
               redopt::PreconditionError);
}

TEST(InstanceIo, RejectsUnwritablePath) {
  EXPECT_THROW(data::save_regression(sample_instance(), "/nonexistent-dir-xyz/out.txt"),
               redopt::PreconditionError);
}
