// Distributed learning with Byzantine agents (the paper's Section 1.3
// application), on synthetic two-class data.
//
// Ten agents train a shared linear classifier; two of them send poisoned
// gradients.  The example trains with and without a gradient-filter and
// reports test accuracy, then repeats at higher data heterogeneity to show
// the redundancy/accuracy trade-off the paper's discussion predicts.
#include <iostream>

#include "attacks/registry.h"
#include "data/classification.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace redopt;
  using linalg::Vector;

  const util::Cli cli(argc, argv, {"seed", "loss", "attack", "iterations"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  const std::string loss = cli.get_string("loss", "hinge");  // SVM-style, as in the paper
  const std::string attack_name = cli.get_string("attack", "gradient_reverse");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 2000));

  std::cout << "distributed learning (" << loss << " loss, " << attack_name
            << " faults)\n\n";
  util::TablePrinter table(
      {"heterogeneity", "series", "test accuracy", "honest train loss"});

  for (double heterogeneity : {0.0, 0.5, 1.5}) {
    data::ClassificationConfig cfg_data;
    cfg_data.n = 10;
    cfg_data.f = 2;
    cfg_data.d = 8;
    cfg_data.samples_per_agent = 40;
    cfg_data.separation = 1.5;
    cfg_data.heterogeneity = heterogeneity;
    cfg_data.loss = loss;
    rng::Rng rng(seed);
    const auto instance = data::make_classification(cfg_data, rng);
    const std::vector<std::size_t> byzantine = {0, 1};
    const auto attack = attacks::make_attack(attack_name);

    for (const std::string filter : {"mean", "cge"}) {
      filters::FilterParams fp;
      fp.n = 10;
      fp.f = 2;
      dgd::TrainerConfig config;
      config.filter = filters::make_filter(filter, fp);
      config.schedule =
          std::make_shared<dgd::HarmonicSchedule>(filter == "cge" ? 0.5 : 2.0);
      config.projection =
          std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(8, 10.0));
      config.iterations = iterations;
      config.trace_stride = 0;
      const auto result = dgd::train(instance.problem, byzantine, attack.get(), config);
      const double accuracy = data::test_accuracy(instance, result.estimate);
      table.add_row({util::TablePrinter::num(heterogeneity, 2),
                     filter == "mean" ? "no filter" : "CGE",
                     util::TablePrinter::num(accuracy, 4),
                     util::TablePrinter::num(result.final_loss, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nThe gradient-filter recovers near-clean accuracy; the accuracy gap\n"
               "grows with heterogeneity (weaker inter-agent data correlation =\n"
               "weaker redundancy), matching the paper's discussion.\n";
  return 0;
}
