// Distributed linear regression under Byzantine faults, end to end:
// redundancy measurement, theoretical constants, DGD with every filter,
// and the exhaustive exact algorithm — the full workflow a user of this
// library would run on their own instance.
#include <iostream>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace redopt;
  using linalg::Vector;

  const util::Cli cli(argc, argv, {"n", "d", "f", "noise", "seed", "attack", "iterations"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 8));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 3));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 2));
  const double noise = cli.get_double("noise", 0.05);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const std::string attack_name = cli.get_string("attack", "gradient_reverse");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));

  std::cout << "distributed regression: n=" << n << " d=" << d << " f=" << f
            << " noise=" << noise << " attack=" << attack_name << "\n\n";

  // Build an instance whose noiseless version is exactly 2f-redundant.
  rng::Rng rng(seed);
  const auto a = data::redundant_matrix(n, d, f, rng);
  Vector x_star(d);
  for (std::size_t k = 0; k < d; ++k) x_star[k] = (k % 2 == 0) ? 1.0 : -1.0;
  const auto instance = data::make_regression(a, x_star, noise, f, rng);

  // Measure how far the noise pushed it from exact redundancy.
  const auto redundancy_report = redundancy::measure_redundancy(instance.problem.costs, f);
  std::cout << "rank condition holds on noiseless rows: "
            << (redundancy::regression_rank_condition(a, f) ? "yes" : "no") << "\n"
            << "measured (2f, eps)-redundancy: eps = " << redundancy_report.epsilon << "\n";

  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::regression_argmin(instance, honest);
  const auto constants = data::regression_constants(instance, honest);
  std::cout << "mu = " << constants.mu << ", gamma = " << constants.gamma
            << ", alpha = " << core::cge_alpha(n, f, constants.mu, constants.gamma) << "\n"
            << "honest minimum x_H = " << x_h << "\n\n";

  // DGD with every filter applicable at this (n, f).
  const auto attack = attacks::make_attack(attack_name);
  util::TablePrinter table({"filter", "dist(x_H, x_out)", "within eps?"});
  for (const auto& name : filters::applicable_filter_names(n, f)) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    fp.multikrum_m = n > f + 3 ? n - f - 3 : 1;
    dgd::TrainerConfig config;
    config.filter = filters::make_filter(name, fp);
    const double coeff = (name == "cge" || name == "sum") ? 0.5 : 2.0;
    config.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
    config.projection =
        std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
    config.iterations = iterations;
    config.trace_stride = 0;
    const auto result = dgd::train(instance.problem, byzantine, attack.get(), config, x_h);
    table.add_row({name, util::TablePrinter::num(result.final_distance, 4),
                   result.final_distance < redundancy_report.epsilon ? "yes" : "no"});
  }
  table.print(std::cout);

  // The exhaustive exact algorithm on the same instance, with the
  // Byzantine agents submitting an adversarial cost function.
  auto received = instance.problem.costs;
  const auto bad = std::make_shared<core::QuadraticCost>(
      core::QuadraticCost::squared_distance(Vector(d, 50.0)));
  for (std::size_t b : byzantine) received[b] = bad;
  const auto exact = core::run_exact_algorithm(received, f);
  std::cout << "\nexhaustive exact algorithm: dist(x_H, out) = "
            << linalg::distance(exact.output, x_h) << "  (bound: 2*eps = "
            << 2.0 * redundancy_report.epsilon << ", subsets evaluated: "
            << exact.subsets_evaluated << ")\n";
  return 0;
}
