// redopt_cli — command-line driver for the library's main workflows.
//
//   redopt_cli check   [--n --d --f --noise --seed]
//       build a regression instance; report the rank condition, measured
//       (2f, eps)-redundancy, and the (mu, gamma, alpha) constants.
//   redopt_cli train   [--n --d --f --noise --seed --filter --attack --iterations]
//       run fault-tolerant DGD and report the output and error.
//   redopt_cli certify [--n --d --f --noise --seed]
//       certify the exhaustive exact algorithm's (f, eps)-resilience
//       empirically over every Byzantine placement.
#include <iostream>

#include "attacks/registry.h"
#include "core/exact_algorithm.h"
#include "core/quadratic_cost.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "redundancy/resilience.h"
#include "util/cli.h"
#include "util/error.h"
#include "util/table.h"

namespace {

using namespace redopt;
using linalg::Vector;

struct CommonArgs {
  std::size_t n, d, f;
  double noise;
  std::uint64_t seed;
};

CommonArgs parse_common(const util::Cli& cli) {
  CommonArgs args;
  args.n = static_cast<std::size_t>(cli.get_int("n", 8));
  args.d = static_cast<std::size_t>(cli.get_int("d", 2));
  args.f = static_cast<std::size_t>(cli.get_int("f", 2));
  args.noise = cli.get_double("noise", 0.02);
  args.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  return args;
}

data::RegressionInstance build_instance(const CommonArgs& args) {
  rng::Rng rng(args.seed);
  const auto a = data::redundant_matrix(args.n, args.d, args.f, rng);
  Vector x_star(args.d, 1.0);
  return data::make_regression(a, x_star, args.noise, args.f, rng);
}

int cmd_check(const util::Cli& cli) {
  const auto args = parse_common(cli);
  const auto inst = build_instance(args);
  const auto honest = inst.problem.all_agents();
  const auto constants = data::regression_constants(inst, honest);
  const auto report = redundancy::measure_redundancy(inst.problem.costs, args.f);

  std::cout << "instance: n=" << args.n << " d=" << args.d << " f=" << args.f
            << " noise=" << args.noise << " seed=" << args.seed << "\n"
            << "2f-redundancy rank condition (noiseless): "
            << (redundancy::regression_rank_condition(inst.a, args.f) ? "holds" : "FAILS")
            << "\n"
            << "measured (2f, eps)-redundancy: eps = " << report.epsilon << "\n"
            << "constants: mu = " << constants.mu << ", gamma = " << constants.gamma
            << ", alpha = " << core::cge_alpha(args.n, args.f, constants.mu, constants.gamma)
            << "\n"
            << "(alpha > 0 means Theorem 4 guarantees DGD+CGE on this instance)\n";
  return 0;
}

int cmd_train(const util::Cli& cli) {
  const auto args = parse_common(cli);
  const std::string filter = cli.get_string("filter", "cge");
  const std::string attack_name = cli.get_string("attack", "gradient_reverse");
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 3000));

  const auto inst = build_instance(args);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < args.f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(args.n, byzantine);
  const Vector x_h = data::regression_argmin(inst, honest);

  filters::FilterParams fp;
  fp.n = args.n;
  fp.f = args.f;
  dgd::TrainerConfig config;
  config.filter = filters::make_filter(filter, fp);
  config.schedule = std::make_shared<dgd::HarmonicSchedule>(
      (filter == "cge" || filter == "sum") ? 0.3 : 2.0);
  config.projection =
      std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(args.d, 10.0));
  config.iterations = iterations;
  config.seed = args.seed;
  config.trace_stride = 0;

  const auto attack = attacks::make_attack(attack_name);
  const auto result = dgd::train(inst.problem, byzantine, attack.get(), config, x_h);
  std::cout << "filter=" << filter << " attack=" << attack_name << " byzantine={0.."
            << args.f - 1 << "}\n"
            << "honest minimum x_H = " << x_h << "\n"
            << "output             = " << result.estimate << "\n"
            << "error              = " << result.final_distance << "\n";
  return 0;
}

int cmd_certify(const util::Cli& cli) {
  const auto args = parse_common(cli);
  const auto inst = build_instance(args);
  const double eps = redundancy::measure_redundancy(inst.problem.costs, args.f).epsilon;

  std::vector<core::CostPtr> adversarial = {
      std::make_shared<core::QuadraticCost>(
          core::QuadraticCost::squared_distance(Vector(args.d, 20.0))),
      std::make_shared<core::QuadraticCost>(
          core::QuadraticCost::squared_distance(Vector(args.d, -20.0)))};
  const auto report = redundancy::measure_resilience(
      inst.problem.costs, args.f,
      [](const std::vector<core::CostPtr>& received, std::size_t f) {
        return core::run_exact_algorithm(received, f).output;
      },
      adversarial);

  std::cout << "exhaustive exact algorithm on n=" << args.n << " f=" << args.f
            << " (noise " << args.noise << "):\n"
            << "scenarios run        : " << report.scenarios_run << "\n"
            << "certified epsilon    : " << report.epsilon << "\n"
            << "theoretical bound    : 2 * eps(2f) = " << 2.0 * eps << "\n"
            << "bound respected      : " << (report.epsilon <= 2.0 * eps + 1e-9 ? "yes" : "NO")
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {"n", "d", "f", "noise", "seed",
                                          "filter", "attack", "iterations"};
  try {
    if (argc < 2) {
      std::cerr << "usage: redopt_cli <check|train|certify> [--flags]\n";
      return 2;
    }
    const std::string command = argv[1];
    const redopt::util::Cli cli(argc - 1, argv + 1, known);
    if (command == "check") return cmd_check(cli);
    if (command == "train") return cmd_train(cli);
    if (command == "certify") return cmd_certify(cli);
    std::cerr << "unknown command: " << command << "\n";
    return 2;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
