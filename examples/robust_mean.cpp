// Robust mean estimation as fault-tolerant distributed optimization
// (Section 2.3 of the paper family).
//
// Each honest agent holds Q_i(x) = ||x - x_i||^2 for a private sample
// x_i ~ N(mu, sigma^2 I); the honest aggregate minimizes at the honest
// sample mean.  Byzantine agents try to drag the estimate away.  The
// example compares plain averaging against CGE and the coordinate-wise
// trimmed mean, and against the centralized trimmed estimate.
#include <iostream>

#include "attacks/registry.h"
#include "data/mean_estimation.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace redopt;
  using linalg::Vector;

  const util::Cli cli(argc, argv, {"n", "d", "f", "sigma", "seed"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 15));
  const auto d = static_cast<std::size_t>(cli.get_int("d", 4));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 3));
  const double sigma = cli.get_double("sigma", 0.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));

  Vector mu(d);
  for (std::size_t k = 0; k < d; ++k) mu[k] = static_cast<double>(k) - 1.0;

  rng::Rng rng(seed);
  const auto instance = data::make_mean_estimation(mu, sigma, n, f, rng);
  std::vector<std::size_t> byzantine;
  for (std::size_t b = 0; b < f; ++b) byzantine.push_back(b);
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector honest_mean = data::honest_sample_mean(instance, honest);

  std::cout << "robust mean estimation: n=" << n << " f=" << f << " d=" << d
            << " sigma=" << sigma << "\n"
            << "true mean         = " << mu << "\n"
            << "honest sample mean = " << honest_mean << "\n\n";

  // Byzantine agents report samples far away (modelled by the large-norm
  // gradient fault, which is what an adversarially placed sample induces).
  const auto attack = attacks::make_attack("large_norm");

  util::TablePrinter table({"aggregator", "estimate error vs honest mean"});
  for (const std::string name : {"mean", "cge", "cwtm", "geomed"}) {
    filters::FilterParams fp;
    fp.n = n;
    fp.f = f;
    dgd::TrainerConfig config;
    config.filter = filters::make_filter(name, fp);
    const double coeff = (name == "cge" || name == "sum") ? 0.2 : 1.0;
    config.schedule = std::make_shared<dgd::HarmonicSchedule>(coeff);
    config.projection =
        std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 20.0));
    config.iterations = 2000;
    config.trace_stride = 0;
    const auto result =
        dgd::train(instance.problem, byzantine, attack.get(), config, honest_mean);
    table.add_row({name, util::TablePrinter::num(result.final_distance, 4)});
  }
  table.print(std::cout);

  std::cout << "\nNote: the distributed estimate never needed the agents to share\n"
               "their samples — only gradients of their private costs.\n";
  return 0;
}
