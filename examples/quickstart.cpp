// Quickstart: Byzantine fault-tolerant distributed optimization in ~40
// lines.
//
// Six agents each observe one row of a linear system; one of them is
// Byzantine and reverses its gradients.  Plain distributed gradient
// descent would be steered away; equipping the server with the CGE
// gradient-filter recovers the honest agents' minimum.
#include <iostream>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"

int main() {
  using namespace redopt;
  using linalg::Vector;

  // 1. A distributed linear-regression problem: n = 6 agents, up to f = 1
  //    Byzantine, d = 2, ground truth x* = (1, 1), noisy observations.
  rng::Rng rng(/*seed=*/7);
  const auto instance =
      data::make_regression(data::paper_matrix(), Vector{1.0, 1.0}, /*noise=*/0.02,
                            /*f=*/1, rng);

  // 2. The honest agents' aggregate minimum (what we want to recover).
  const std::vector<std::size_t> byzantine = {0};
  const auto honest = dgd::honest_ids(6, byzantine);
  const Vector x_h = data::regression_argmin(instance, honest);

  // 3. Configure DGD with the CGE gradient-filter, a diminishing step
  //    schedule, and a compact constraint box W.
  filters::FilterParams fp;
  fp.n = 6;
  fp.f = 1;
  dgd::TrainerConfig config;
  config.filter = filters::make_filter("cge", fp);
  config.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  config.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(2, 10.0));
  config.iterations = 1000;

  // 4. Run with agent 0 Byzantine (gradient-reverse fault).
  const auto attack = attacks::make_attack("gradient_reverse");
  const auto result = dgd::train(instance.problem, byzantine, attack.get(), config, x_h);

  std::cout << "honest minimum x_H   = " << x_h << "\n"
            << "DGD + CGE output     = " << result.estimate << "\n"
            << "approximation error  = " << result.final_distance << "\n";
  return result.final_distance < 0.05 ? 0 : 1;
}
