// Fault-tolerant distributed state estimation (the paper's Section on
// distributed sensing): each sensor observes a linear function of an
// unknown system state; compromised sensors report garbage; the fusion
// center recovers the state with DGD + CGE.
//
// The paper's observation: f-fault-tolerant state estimation is possible
// iff the system is "2f-sparse observable" — the state is determined by
// any n - 2f sensors — which is exactly the 2f-redundancy property of the
// sensors' least-squares costs.  This example checks sparse observability
// with the redundancy rank condition, then runs the estimator under two
// kinds of sensor compromise.
#include <iostream>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace redopt;
  using linalg::Vector;

  const util::Cli cli(argc, argv, {"sensors", "state_dim", "f", "noise", "seed"});
  const auto n = static_cast<std::size_t>(cli.get_int("sensors", 12));
  const auto d = static_cast<std::size_t>(cli.get_int("state_dim", 3));
  const auto f = static_cast<std::size_t>(cli.get_int("f", 3));
  const double noise = cli.get_double("noise", 0.01);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  // The unknown system state (say, position + temperature of a tracked
  // object).  Each sensor takes a full noisy snapshot of the state in its
  // own (orthonormal) calibration frame — the redundant-sensing setup
  // where every single sensor could identify the state alone, and the
  // fusion problem is purely about trusting the right ones.  This is the
  // alpha > 0 regime of Theorem 4 (mu = gamma = 2, alpha = 1 - 3f/n).
  rng::Rng rng(seed);
  Vector state(d);
  for (std::size_t k = 0; k < d; ++k) state[k] = 1.0 + 0.5 * static_cast<double>(k);
  const auto instance = data::make_orthonormal_regression(n, d, f, noise, state, rng);

  std::cout << "distributed state estimation: " << n << " sensors, state dim " << d
            << ", up to " << f << " compromised\n";
  std::cout << "2f-sparse observable: yes (every sensor block has full rank)\n";
  const double eps = redundancy::measure_redundancy(instance.problem.costs, f).epsilon;
  std::cout << "measurement-noise redundancy gap: eps = " << eps << "\n\n";

  // Compromised sensors 0..f-1.
  std::vector<std::size_t> compromised;
  for (std::size_t b = 0; b < f; ++b) compromised.push_back(b);
  const auto honest = dgd::honest_ids(n, compromised);
  const Vector true_estimate = data::block_regression_argmin(instance, honest);

  util::TablePrinter table({"sensor fault", "estimator", "state error"});
  for (const std::string attack_name : {"random", "ipm"}) {
    const auto attack = attacks::make_attack(attack_name);
    for (const std::string filter : {"mean", "cge", "cwtm"}) {
      filters::FilterParams fp;
      fp.n = n;
      fp.f = f;
      dgd::TrainerConfig config;
      config.filter = filters::make_filter(filter, fp);
      config.schedule =
          std::make_shared<dgd::HarmonicSchedule>(filter == "cge" ? 0.2 : 2.0);
      config.projection =
          std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
      config.iterations = 2500;
      config.trace_stride = 0;
      const auto result =
          dgd::train(instance.problem, compromised, attack.get(), config, true_estimate);
      table.add_row({attack_name, filter == "mean" ? "naive fusion" : filter + " fusion",
                     util::TablePrinter::num(result.final_distance, 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\ntrue state " << state << "; honest-sensor estimate " << true_estimate
            << "\nCGE fusion tracks the honest estimate; naive fusion is hijacked.\n";
  return 0;
}
