// Config-file driven experiment runner.
//
//   run_config --config examples/configs/regression.cfg
//
// Describes an experiment (instance family, fault model, filter, schedule)
// in a small key = value file that can live in a repository next to its
// results, and runs it end to end: redundancy measurement, DGD execution,
// error report.  See examples/configs/ for annotated samples.
#include <iostream>

#include "attacks/registry.h"
#include "data/regression.h"
#include "data/replicated_regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "redundancy/redundancy.h"
#include "util/cli.h"
#include "util/config.h"
#include "util/error.h"

namespace {

using namespace redopt;
using linalg::Vector;

struct Experiment {
  core::MultiAgentProblem problem;
  Vector x_h;  // honest aggregate minimum
  std::size_t n;
  std::size_t f;
  std::size_t d;
};

Experiment build_instance(const util::Config& config, rng::Rng& rng,
                          const std::vector<std::size_t>& byzantine) {
  const std::string family = config.get_string("instance", "regression");
  const auto n = static_cast<std::size_t>(config.get_int("n", 6));
  const auto d = static_cast<std::size_t>(config.get_int("d", 2));
  const auto f = static_cast<std::size_t>(config.get_int("f", 1));
  const double noise = config.get_double("noise", 0.02);
  Vector x_star(d, 1.0);

  Experiment experiment;
  experiment.n = n;
  experiment.f = f;
  experiment.d = d;
  const auto honest = dgd::honest_ids(n, byzantine);

  if (family == "paper") {
    REDOPT_REQUIRE(n == 6 && d == 2 && f == 1, "instance=paper fixes n=6, d=2, f=1");
    const auto inst = data::make_regression(data::paper_matrix(), x_star, noise, f, rng);
    experiment.problem = inst.problem;
    experiment.x_h = data::regression_argmin(inst, honest);
  } else if (family == "regression") {
    const auto a = data::redundant_matrix(n, d, f, rng);
    const auto inst = data::make_regression(a, x_star, noise, f, rng);
    experiment.problem = inst.problem;
    experiment.x_h = data::regression_argmin(inst, honest);
  } else if (family == "orthonormal") {
    const auto inst = data::make_orthonormal_regression(n, d, f, noise, x_star, rng);
    experiment.problem = inst.problem;
    experiment.x_h = data::block_regression_argmin(inst, honest);
  } else if (family == "replicated") {
    const auto shards = static_cast<std::size_t>(config.get_int("shards", n));
    const auto replication =
        static_cast<std::size_t>(config.get_int("replication", 2 * f + 1));
    const auto inst =
        data::make_replicated_regression(shards, d, n, f, replication, noise, x_star, rng);
    experiment.problem = inst.problem;
    experiment.x_h = data::replicated_regression_argmin(inst, honest);
  } else {
    REDOPT_REQUIRE(false, "unknown instance family: " + family);
  }
  return experiment;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv, {"config"});
    const std::string path = cli.get_string("config", "");
    REDOPT_REQUIRE(!path.empty(), "usage: run_config --config <file>");
    const auto config = util::Config::load(path);

    const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 1));
    rng::Rng rng(seed);

    const auto f = static_cast<std::size_t>(config.get_int("f", 1));
    const auto actual_faults =
        static_cast<std::size_t>(config.get_int("actual_faults", f));
    std::vector<std::size_t> byzantine;
    for (std::size_t b = 0; b < actual_faults; ++b) byzantine.push_back(b);

    const auto experiment = build_instance(config, rng, byzantine);

    std::cout << "experiment from " << path << ":\n";
    for (const auto& [key, value] : config.values()) {
      std::cout << "  " << key << " = " << value << "\n";
    }

    if (config.get_bool("measure_redundancy", true)) {
      const double eps =
          redundancy::measure_redundancy(experiment.problem.costs, experiment.f).epsilon;
      std::cout << "measured (2f, eps)-redundancy: eps = " << eps << "\n";
    }

    const std::string filter_name = config.get_string("filter", "cge");
    filters::FilterParams fp;
    fp.n = experiment.n;
    fp.f = experiment.f;
    fp.multikrum_m = static_cast<std::size_t>(config.get_int("multikrum_m", 1));
    fp.clip_tau = config.get_double("clip_tau", 1.0);

    dgd::TrainerConfig trainer_config;
    trainer_config.filter = filters::make_filter(filter_name, fp);
    const double default_coeff =
        (filter_name == "cge" || filter_name == "sum") ? 0.3 : 2.0;
    trainer_config.schedule =
        dgd::make_schedule(config.get_string("schedule", "harmonic"),
                           config.get_double("step_coefficient", default_coeff));
    trainer_config.projection = std::make_shared<dgd::BoxProjection>(
        dgd::BoxProjection::cube(experiment.d, config.get_double("box_half_width", 10.0)));
    trainer_config.iterations =
        static_cast<std::size_t>(config.get_int("iterations", 3000));
    trainer_config.seed = seed;
    trainer_config.trace_stride = 0;

    const auto attack = attacks::make_attack(config.get_string("attack", "gradient_reverse"));
    const auto result = dgd::train(experiment.problem, byzantine, attack.get(),
                                   trainer_config, experiment.x_h);
    std::cout << "honest minimum x_H = " << experiment.x_h << "\n"
              << "output             = " << result.estimate << "\n"
              << "error              = " << result.final_distance << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
