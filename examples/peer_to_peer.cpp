// Peer-to-peer fault-tolerant optimization without a trusted server
// (Figure 1b of the paper): the server-based DGD algorithm simulated with
// OM(f) Byzantine broadcast, f < n/3.
//
// Every agent broadcasts its gradient to all peers each iteration; the
// broadcast's agreement property keeps all honest agents' filter inputs —
// and therefore their local estimates — in lockstep, even when Byzantine
// agents equivocate (send different values to different peers).
#include <iostream>

#include "attacks/registry.h"
#include "data/regression.h"
#include "dgd/trainer.h"
#include "filters/registry.h"
#include "net/p2p.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace redopt;
  using linalg::Vector;

  const util::Cli cli(argc, argv, {"seed", "iterations"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 8));
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations", 150));

  // n = 7 agents, f = 2 Byzantine: satisfies the broadcast bound n > 3f.
  const std::size_t n = 7, f = 2, d = 2;
  rng::Rng rng(seed);
  const auto instance =
      data::make_orthonormal_regression(n, d, f, 0.02, Vector{1.0, 1.0}, rng);
  const std::vector<std::size_t> byzantine = {2, 5};
  const auto honest = dgd::honest_ids(n, byzantine);
  const Vector x_h = data::block_regression_argmin(instance, honest);

  filters::FilterParams fp;
  fp.n = n;
  fp.f = f;
  dgd::TrainerConfig config;
  config.filter = filters::make_filter("cge", fp);
  config.schedule = std::make_shared<dgd::HarmonicSchedule>(0.5);
  config.projection = std::make_shared<dgd::BoxProjection>(dgd::BoxProjection::cube(d, 10.0));
  config.iterations = iterations;
  config.seed = seed;
  config.trace_stride = 0;

  const auto attack = attacks::make_attack("gradient_reverse");

  std::cout << "peer-to-peer DGD, n=" << n << " f=" << f << ", honest minimum x_H = " << x_h
            << "\n\n";
  for (bool equivocate : {false, true}) {
    const auto result = net::run_p2p_protocol(instance.problem, byzantine, attack.get(),
                                              config, x_h, equivocate);
    std::cout << (equivocate ? "with equivocation   " : "consistent adversary")
              << " : estimate " << result.train.estimate
              << ", error " << result.train.final_distance
              << ", honest agreement " << (result.honest_agreement ? "yes" : "NO")
              << ", OM(f) messages " << result.messages << "\n";
    if (!result.honest_agreement) return 1;
  }
  std::cout << "\nAgreement held in both runs: Byzantine broadcast makes the\n"
               "peer-to-peer system equivalent to the trusted-server system.\n";
  return 0;
}
